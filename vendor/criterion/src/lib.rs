//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be resolved from crates.io. This crate provides the API subset the
//! workspace's benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, [`BenchmarkId`], and
//! [`Throughput`] — so `cargo test` compiles every bench target and
//! `cargo bench` still produces useful wall-clock numbers.
//!
//! Measurement is intentionally simple: one warm-up call, then a fixed
//! number of timed iterations with median-of-runs reporting. There is no
//! statistical analysis, outlier rejection, or HTML report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timed iterations per benchmark (after one warm-up call).
const TIMED_RUNS: usize = 5;

/// The top-level harness handle passed to every bench target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, &mut f);
        self
    }
}

/// A named group of benchmarks (stand-in for criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.elapsed / b.iters as u32;
        eprintln!("  {label}: {per_iter:?}/iter ({} iters)", b.iters);
    } else {
        eprintln!("  {label}: no iterations recorded");
    }
}

/// Passed to the benchmark closure; call [`iter`](Self::iter) with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then a fixed number of timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..TIMED_RUNS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += TIMED_RUNS as u64;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self(format!("{}/{param}", name.into()))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        Self(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Units for criterion's throughput reporting (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group-runner function from a list of bench target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from a list of [`criterion_group!`] names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7));
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runner_executes() {
        benches();
    }
}
