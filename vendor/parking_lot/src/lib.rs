//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no network access and an
//! empty crates.io cache, so the real `parking_lot` cannot be resolved. This
//! crate re-implements the small API subset the workspace actually uses —
//! [`Mutex`]/[`RwLock`] with panic-free, non-poisoning guards — on top of
//! `std::sync`. Semantics match `parking_lot` for every call site in this
//! repository: `lock()` returns the guard directly (no `Result`), and a
//! panicked holder does not poison the lock for later users.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, poisoning is ignored: if a previous holder panicked the
    /// lock is still handed out (matching `parking_lot` semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed:
    /// `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
