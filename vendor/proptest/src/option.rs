//! `Option` strategies (subset of `proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Probability that [`of`] generates `Some` (real proptest's default).
const P_SOME: f64 = 0.75;

/// Generates `Some(x)` with `x` from `inner` about 75% of the time, `None`
/// otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.unit_f64() < P_SOME {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
