//! The [`Arbitrary`] trait and [`any`] (subset of `proptest::arbitrary`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value uniformly from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}
