//! The per-test configuration and RNG.

/// Per-test configuration (subset of real proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The deterministic per-test generator (SplitMix64).
///
/// Seeded from the FNV-1a hash of the fully qualified test name so each test
/// gets an unrelated but reproducible stream. `PROPTEST_SEED=<u64>` in the
/// environment perturbs every stream at once (for re-rolling CI).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for the test named `name` (use the fully qualified
    /// path for independence across modules).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        Self {
            state: h ^ env_seed.rotate_left(32),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}
