//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be resolved from crates.io. This crate implements the API subset
//! the workspace's property tests use: the [`proptest!`] macro, strategy
//! combinators ([`Strategy::prop_map`], [`Strategy::prop_flat_map`],
//! [`collection::vec`], [`collection::hash_set`], [`option::of`],
//! [`arbitrary::any`], ranges and tuples as strategies), the assertion
//! macros, and [`test_runner::ProptestConfig`].
//!
//! # Differences from real proptest
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (via `Debug`) instead of a minimized counterexample.
//! * **Deterministic seeding.** Each test derives its seed from its fully
//!   qualified name, so runs are reproducible without a persistence file.
//!   Set `PROPTEST_SEED=<u64>` to perturb every test's stream at once.
//! * Strategies generate values directly; there is no intermediate
//!   `ValueTree`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    // Macros exported with #[macro_export] live at the crate root; re-export
    // them here so the prelude glob brings them in under edition-2018 paths.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// Supported grammar (the subset real proptest accepts that this workspace
/// uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<u64>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test function at a
/// time, threading the config expression through.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ([$cfg:expr]) => {};
    (
        [$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Render the inputs *before* the body can move them, so a
                // failure can report them (there is no shrinking).
                let mut rendered = String::new();
                $(
                    {
                        use std::fmt::Write as _;
                        let _ = writeln!(
                            rendered, "    {} = {:?}", stringify!($arg), &$arg
                        );
                    }
                )+
                let outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(move || { $body })
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs:\n{}",
                        stringify!($name), case + 1, config.cases, rendered
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// inputs. (In this stand-in it panics like `assert!`; the surrounding
/// runner attaches the generated inputs.)
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Real proptest rejects the case and draws a replacement (up to a global
/// rejection budget); this stand-in simply returns from the case body, so
/// heavy use of `prop_assume!` reduces the effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1u64..100, pair in (0u8..4, 10i32..=20)) {
            let (a, b) = pair;
            prop_assert!((1..100).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((10..=20).contains(&b));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u16..5, 3..=6),
            s in prop::collection::hash_set(any::<u64>(), 0..8),
            o in prop::option::of(1usize..3),
        ) {
            prop_assert!((3..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!(s.len() < 8);
            if let Some(x) = o {
                prop_assert!(x == 1 || x == 2);
            }
        }

        #[test]
        fn maps_compose(len in (1usize..5).prop_map(|n| n * 2),
                        v in (1usize..4).prop_flat_map(|n| prop::collection::vec(Just(7u8), n))) {
            prop_assert!(len % 2 == 0);
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x == 7));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("same::name");
        let mut b = crate::test_runner::TestRng::for_test("same::name");
        let s = 0u64..1000;
        let xs: Vec<u64> = (0..20).map(|_| Strategy::generate(&s, &mut a)).collect();
        let ys: Vec<u64> = (0..20).map(|_| Strategy::generate(&s, &mut b)).collect();
        assert_eq!(xs, ys);
    }
}
