//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A heap-allocated, type-erased strategy (returned by [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }
}

/// Strategies may be used by shared reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.next_u64() as u128 % width) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as u128).wrapping_sub(start as u128) + 1;
                (start as u128).wrapping_add(rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_signed_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_signed_ranges!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
