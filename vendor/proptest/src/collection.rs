//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;

/// An inclusive length range for collection strategies.
///
/// Converts from `usize` (exact), `Range<usize>` (half-open) and
/// `RangeInclusive<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `HashSet` with a target size drawn from `size`.
///
/// If the element domain is too small to reach the target size, the set is
/// returned smaller after a bounded number of attempts (mirroring real
/// proptest's rejection cap).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 10 + 16 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
