//! Self-tests: the explorer must find known races, pass correct code, and
//! terminate on yield-based spin loops.

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::Arc;

#[test]
fn finds_lost_update_between_two_threads() {
    // Classic lost update: both threads load, then both store load+1.
    // Under some interleaving the final value is 1, not 2 — the explorer
    // must find that schedule and fail the assertion.
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::clone(&a);
            let t = loom::thread::spawn(move || {
                let v = b.load(Ordering::SeqCst);
                b.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        });
    });
    assert!(result.is_err(), "explorer failed to find the lost update");
}

#[test]
fn passes_atomic_rmw_increments() {
    loom::model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::clone(&a);
        let t = loom::thread::spawn(move || {
            b.fetch_add(1, Ordering::SeqCst);
        });
        a.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
    assert!(
        loom::explored_interleavings() >= 2,
        "expected at least two schedules, got {}",
        loom::explored_interleavings()
    );
}

#[test]
fn finds_unsynchronized_flag_publication() {
    // Writer sets data then flag; reader checks flag then reads data, but
    // the *reader checks in the wrong order*, so there is a schedule where
    // it sees the flag yet stale data. (Under the stand-in's SC memory this
    // is an interleaving bug, not a reordering bug.)
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = loom::thread::spawn(move || {
                f2.store(true, Ordering::SeqCst); // bug: flag before data
                d2.store(42, Ordering::SeqCst);
            });
            if flag.load(Ordering::SeqCst) {
                assert_eq!(data.load(Ordering::SeqCst), 42, "stale read");
            }
            t.join().unwrap();
        });
    });
    assert!(result.is_err(), "explorer missed the bad publication order");
}

#[test]
fn yielding_spin_loop_terminates() {
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = loom::thread::spawn(move || {
            f2.store(true, Ordering::SeqCst);
        });
        while !flag.load(Ordering::SeqCst) {
            loom::thread::yield_now();
        }
        t.join().unwrap();
    });
}

#[test]
fn threads_values_round_trip_through_join() {
    loom::model(|| {
        let t = loom::thread::spawn(|| 7u64);
        assert_eq!(t.join().unwrap(), 7);
    });
}

#[test]
fn works_outside_model_too() {
    // The shimmed API degrades to std behavior outside model() so feature-
    // unified builds keep working.
    let a = AtomicUsize::new(1);
    a.fetch_add(1, Ordering::Relaxed);
    assert_eq!(a.load(Ordering::Relaxed), 2);
    let t = loom::thread::spawn(|| 3u32);
    assert_eq!(t.join().unwrap(), 3);
}
