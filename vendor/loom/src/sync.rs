//! Model-aware synchronization types (subset of `loom::sync`).

pub use std::sync::Arc;

pub mod atomic {
    //! Atomics whose every access is a scheduling point.
    //!
    //! All orderings execute as `SeqCst` (see the crate docs for what that
    //! means for coverage); the `Ordering` parameter is accepted so shimmed
    //! code compiles unchanged.

    use crate::rt;
    use core::sync::atomic as std_atomic;
    pub use core::sync::atomic::Ordering;

    macro_rules! modeled_atomic {
        ($(#[$doc:meta] $name:ident, $std:ident, $ty:ty;)*) => {$(
            #[$doc]
            #[derive(Debug, Default)]
            pub struct $name(std_atomic::$std);

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub fn new(v: $ty) -> Self {
                    Self(std_atomic::$std::new(v))
                }

                /// Loads the value (scheduling point; executes as `SeqCst`).
                pub fn load(&self, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.0.load(Ordering::SeqCst)
                }

                /// Stores a value (scheduling point; executes as `SeqCst`).
                pub fn store(&self, v: $ty, _order: Ordering) {
                    rt::yield_point();
                    self.0.store(v, Ordering::SeqCst)
                }

                /// Swaps the value (scheduling point).
                pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.0.swap(v, Ordering::SeqCst)
                }

                /// Compare-and-exchange (scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::yield_point();
                    self.0
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Exclusive access needs no scheduling point.
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.0.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.0.into_inner()
                }
            }
        )*};
    }

    modeled_atomic! {
        /// Model-aware `AtomicBool`.
        AtomicBool, AtomicBool, bool;
    }

    macro_rules! modeled_atomic_int {
        ($(#[$doc:meta] $name:ident, $std:ident, $ty:ty;)*) => {$(
            modeled_atomic! {
                #[$doc]
                $name, $std, $ty;
            }

            impl $name {
                /// Wrapping add, returning the previous value (scheduling point).
                pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.0.fetch_add(v, Ordering::SeqCst)
                }

                /// Wrapping subtract, returning the previous value
                /// (scheduling point).
                pub fn fetch_sub(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.0.fetch_sub(v, Ordering::SeqCst)
                }

                /// Bitwise or, returning the previous value (scheduling point).
                pub fn fetch_or(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.0.fetch_or(v, Ordering::SeqCst)
                }
            }
        )*};
    }

    modeled_atomic_int! {
        /// Model-aware `AtomicUsize`.
        AtomicUsize, AtomicUsize, usize;
        /// Model-aware `AtomicU64`.
        AtomicU64, AtomicU64, u64;
        /// Model-aware `AtomicU32`.
        AtomicU32, AtomicU32, u32;
    }

    /// Model-aware `AtomicPtr`.
    #[derive(Debug)]
    pub struct AtomicPtr<T>(std_atomic::AtomicPtr<T>);

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic pointer.
        pub fn new(p: *mut T) -> Self {
            Self(std_atomic::AtomicPtr::new(p))
        }

        /// Loads the pointer (scheduling point; executes as `SeqCst`).
        pub fn load(&self, _order: Ordering) -> *mut T {
            rt::yield_point();
            self.0.load(Ordering::SeqCst)
        }

        /// Stores a pointer (scheduling point; executes as `SeqCst`).
        pub fn store(&self, p: *mut T, _order: Ordering) {
            rt::yield_point();
            self.0.store(p, Ordering::SeqCst)
        }

        /// Swaps the pointer (scheduling point).
        pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
            rt::yield_point();
            self.0.swap(p, Ordering::SeqCst)
        }

        /// Exclusive access needs no scheduling point.
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.0.get_mut()
        }
    }
}
