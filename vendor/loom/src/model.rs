//! Entry points: [`model`] and the configurable [`Builder`].

use crate::rt::Explorer;

/// Default CHESS-style preemption bound (see crate docs).
const DEFAULT_PREEMPTION_BOUND: usize = 2;
/// Default livelock guard: scheduling points allowed per execution.
const DEFAULT_MAX_STEPS: usize = 100_000;
/// Default cap on explored executions (safety valve, not a target).
const DEFAULT_MAX_ITERATIONS: usize = 200_000;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Configures and runs an exploration (mirrors `loom::model::Builder`).
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum involuntary context switches per execution; `None` explores
    /// the full interleaving space (exponential — only for tiny models).
    /// Overridable with `LOOM_MAX_PREEMPTIONS`.
    pub preemption_bound: Option<usize>,
    /// Livelock guard: maximum scheduling points in one execution.
    pub max_steps: usize,
    /// Safety valve: maximum executions before giving up with a warning.
    /// Overridable with `LOOM_MAX_ITERATIONS`.
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(
                env_usize("LOOM_MAX_PREEMPTIONS").unwrap_or(DEFAULT_PREEMPTION_BOUND),
            ),
            max_steps: DEFAULT_MAX_STEPS,
            max_iterations: env_usize("LOOM_MAX_ITERATIONS").unwrap_or(DEFAULT_MAX_ITERATIONS),
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` under every schedule within the configured bounds, panicking
    /// (with the failing schedule printed to stderr) on the first failure.
    pub fn check<F: Fn()>(&self, f: F) {
        let mut explorer = Explorer::new(self.preemption_bound, self.max_steps, self.max_iterations);
        explorer.check(&f);
    }
}

/// Explores `f` with the default [`Builder`]. The workhorse entry point:
///
/// ```
/// loom::model(|| {
///     // concurrent code using loom::thread + loom::sync
/// });
/// ```
pub fn model<F: Fn()>(f: F) {
    Builder::new().check(f)
}
