//! The serialized-execution scheduler and the DFS schedule explorer.
//!
//! One execution = one schedule. Threads run as real OS threads but are
//! serialized by a baton (`State::active`): only the active thread makes
//! progress, everyone else blocks on the condvar. At every scheduling point
//! the runtime either replays a recorded decision (the DFS prefix) or
//! records a new choice point with the full set of runnable alternatives.
//! After the execution finishes, the explorer advances the deepest choice
//! point that still has an untried alternative and re-runs.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic;
use std::sync::{Arc, Condvar, Mutex};

/// Sentinel for "no active thread".
const NONE: usize = usize::MAX;

/// Panic payload used to unwind threads of an execution that has already
/// failed or been cancelled; filtered everywhere so only the *first* real
/// panic surfaces.
pub(crate) struct AbortToken;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Can be scheduled.
    Runnable,
    /// Blocked joining the given thread id.
    Joining(usize),
    /// Done (or unwound after an abort).
    Finished,
}

/// One recorded scheduler decision.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    /// Runnable thread ids at this point, in exploration order (the
    /// previously active thread first, so the depth-first walk tries the
    /// preemption-free schedule before any switch).
    options: Vec<usize>,
    /// Index into `options` of the branch taken in the current execution.
    next: usize,
}

struct State {
    threads: Vec<Status>,
    active: usize,
    /// Decision list: replay prefix (from the explorer) plus decisions
    /// appended by the current execution.
    schedule: Vec<Choice>,
    /// Position of the next decision in `schedule`.
    cursor: usize,
    /// Involuntary context switches taken so far in this execution.
    preemptions: usize,
    /// Scheduling points so far in this execution (livelock guard).
    steps: usize,
    abort: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
    panic_schedule: Option<String>,
}

/// The per-execution runtime shared by all participating threads.
pub(crate) struct Rt {
    state: Mutex<State>,
    cv: Condvar,
    preemption_bound: Option<usize>,
    max_steps: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
    static LAST_EXPLORED: Cell<usize> = const { Cell::new(0) };
}

/// Number of interleavings the most recent `model()` call on this thread
/// explored. Lets tests assert that exploration actually branched.
pub fn explored_interleavings() -> usize {
    LAST_EXPLORED.with(|c| c.get())
}

pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Rt>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Scheduling point before a shared-memory access. No-op outside `model()`,
/// so shimmed types still work in ordinary code when the feature is enabled.
pub(crate) fn yield_point() {
    if let Some((rt, tid)) = current() {
        rt.schedule_point(tid, false);
    }
}

/// Voluntary yield: deterministically rotates to another runnable thread
/// without recording a branch point (keeps spin loops from exploding the
/// state space) and without charging the preemption budget.
pub(crate) fn yield_now_point() {
    if let Some((rt, tid)) = current() {
        rt.schedule_point(tid, true);
    } else {
        std::thread::yield_now();
    }
}

fn abort_unwind() -> ! {
    panic::panic_any(AbortToken)
}

impl Rt {
    fn new(replay: Vec<Choice>, preemption_bound: Option<usize>, max_steps: usize) -> Self {
        Rt {
            state: Mutex::new(State {
                threads: vec![Status::Runnable],
                active: 0,
                schedule: replay,
                cursor: 0,
                preemptions: 0,
                steps: 0,
                abort: false,
                panic_payload: None,
                panic_schedule: None,
            }),
            cv: Condvar::new(),
            preemption_bound,
            max_steps,
        }
    }

    /// Registers a newly spawned thread; it becomes schedulable immediately.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.threads.push(Status::Runnable);
        st.threads.len() - 1
    }

    /// Blocks a fresh thread until the scheduler hands it the baton.
    pub(crate) fn wait_until_scheduled(&self, tid: usize) {
        let mut st = self.state.lock().unwrap();
        while st.active != tid {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn schedule_point(&self, tid: usize, voluntary: bool) {
        let mut st = self.state.lock().unwrap();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        debug_assert_eq!(st.active, tid, "scheduling point from a paused thread");
        st.steps += 1;
        if st.steps > self.max_steps {
            let msg = format!(
                "loom(stand-in): livelock suspected — {} scheduling points in one \
                 execution (are all spin loops routed through loom::thread::yield_now?)",
                self.max_steps
            );
            self.fail(&mut st, Box::new(msg));
            drop(st);
            abort_unwind();
        }
        if voluntary {
            // Deterministic rotation: next runnable thread after us, if any.
            let n = st.threads.len();
            for off in 1..n {
                let cand = (tid + off) % n;
                if st.threads[cand] == Status::Runnable {
                    st.active = cand;
                    break;
                }
            }
        } else {
            self.choose_next(&mut st);
        }
        self.cv.notify_all();
        while st.active != tid {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Picks the next active thread, replaying the DFS prefix or recording a
    /// fresh choice point. Also detects deadlock and normal completion.
    fn choose_next(&self, st: &mut State) {
        let cur = st.active;
        let cur_runnable = cur != NONE && st.threads[cur] == Status::Runnable;
        let mut options = Vec::new();
        if cur_runnable {
            options.push(cur);
        }
        let budget_left = self
            .preemption_bound
            .is_none_or(|b| st.preemptions < b);
        if !cur_runnable || budget_left {
            options.extend(
                (0..st.threads.len())
                    .filter(|&t| t != cur && st.threads[t] == Status::Runnable),
            );
        }
        if options.is_empty() {
            if st.threads.iter().all(|&s| s == Status::Finished) {
                st.active = NONE;
                self.cv.notify_all();
                return;
            }
            let blocked: Vec<usize> = (0..st.threads.len())
                .filter(|&t| matches!(st.threads[t], Status::Joining(_)))
                .collect();
            let msg = format!("loom(stand-in): deadlock — threads {blocked:?} blocked in join");
            self.fail(st, Box::new(msg));
            return;
        }
        let chosen = if st.cursor < st.schedule.len() {
            let c = &st.schedule[st.cursor];
            debug_assert_eq!(
                c.options, options,
                "nondeterministic execution: replay diverged at step {}",
                st.cursor
            );
            c.options[c.next]
        } else {
            let first = options[0];
            st.schedule.push(Choice { options, next: 0 });
            first
        };
        st.cursor += 1;
        if cur_runnable && chosen != cur {
            st.preemptions += 1;
        }
        st.active = chosen;
    }

    /// Records the first real panic and cancels the execution.
    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        if payload.downcast_ref::<AbortToken>().is_some() {
            return;
        }
        let mut st = self.state.lock().unwrap();
        self.fail(&mut st, payload);
    }

    fn fail(&self, st: &mut State, payload: Box<dyn Any + Send>) {
        if st.panic_payload.is_none() {
            let taken: Vec<usize> = st.schedule[..st.cursor.min(st.schedule.len())]
                .iter()
                .map(|c| c.options[c.next])
                .collect();
            st.panic_schedule = Some(format!("{taken:?}"));
            st.panic_payload = Some(payload);
        }
        st.abort = true;
        st.active = NONE;
        self.cv.notify_all();
    }

    /// Marks `tid` finished, wakes its joiners, and passes the baton on.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut st = self.state.lock().unwrap();
        st.threads[tid] = Status::Finished;
        for i in 0..st.threads.len() {
            if st.threads[i] == Status::Joining(tid) {
                st.threads[i] = Status::Runnable;
            }
        }
        if !st.abort && st.active == tid {
            self.choose_next(&mut st);
        }
        self.cv.notify_all();
    }

    /// Blocks thread `me` until `target` finishes (a scheduling point).
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        let mut st = self.state.lock().unwrap();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        if st.threads[target] == Status::Finished {
            return;
        }
        st.threads[me] = Status::Joining(target);
        self.choose_next(&mut st);
        self.cv.notify_all();
        while st.active != me {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Waits until every registered thread has finished or unwound.
    fn wait_all_done(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.threads.iter().all(|&s| s == Status::Finished) {
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// Installs (once per process) a panic hook that silences [`AbortToken`]
/// unwinds so cancelled threads do not spam stderr.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortToken>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Depth-first explorer over schedules; drives repeated executions.
pub(crate) struct Explorer {
    schedule: Vec<Choice>,
    pub(crate) preemption_bound: Option<usize>,
    pub(crate) max_steps: usize,
    pub(crate) max_iterations: usize,
}

impl Explorer {
    pub(crate) fn new(
        preemption_bound: Option<usize>,
        max_steps: usize,
        max_iterations: usize,
    ) -> Self {
        Explorer {
            schedule: Vec::new(),
            preemption_bound,
            max_steps,
            max_iterations,
        }
    }

    /// Runs `f` under every explored schedule; panics with the original
    /// payload (after printing the schedule) if any execution fails.
    pub(crate) fn check(&mut self, f: &dyn Fn()) {
        install_quiet_hook();
        let mut executions = 0usize;
        loop {
            executions += 1;
            let rt = Arc::new(Rt::new(
                self.schedule.clone(),
                self.preemption_bound,
                self.max_steps,
            ));
            set_current(Some((Arc::clone(&rt), 0)));
            let outcome = panic::catch_unwind(panic::AssertUnwindSafe(f));
            if let Err(payload) = outcome {
                rt.record_panic(payload);
            }
            rt.finish_thread(0);
            rt.wait_all_done();
            set_current(None);

            let mut st = rt.state.lock().unwrap();
            if let Some(payload) = st.panic_payload.take() {
                let sched = st.panic_schedule.take().unwrap_or_default();
                LAST_EXPLORED.with(|c| c.set(executions));
                eprintln!(
                    "loom(stand-in): execution {executions} failed; thread schedule {sched}"
                );
                panic::resume_unwind(payload);
            }
            self.schedule = std::mem::take(&mut st.schedule);
            drop(st);

            if executions >= self.max_iterations {
                eprintln!(
                    "loom(stand-in): stopping after {executions} executions \
                     (LOOM_MAX_ITERATIONS budget); coverage is partial"
                );
                break;
            }
            if !self.advance() {
                break;
            }
        }
        LAST_EXPLORED.with(|c| c.set(executions));
    }

    /// Advances the deepest choice point with an untried alternative.
    /// Returns `false` when the whole (bounded) space has been explored.
    fn advance(&mut self) -> bool {
        while let Some(mut last) = self.schedule.pop() {
            if last.next + 1 < last.options.len() {
                last.next += 1;
                self.schedule.push(last);
                return true;
            }
        }
        false
    }
}
