//! Offline stand-in for the `loom` model checker.
//!
//! The build environment has no network access, so the real `loom` cannot be
//! resolved from crates.io. This crate implements the same *shape* of tool —
//! run a closure under every schedule of its threads' shared-memory accesses
//! — with a smaller state space model:
//!
//! * **What is explored.** Every atomic load/store/RMW is a scheduling
//!   point. The runtime serializes threads (exactly one runs at a time) and
//!   performs a depth-first search over all scheduler choices at those
//!   points, bounded by a configurable *preemption bound* (CHESS-style: at
//!   most `k` involuntary context switches per execution; forced switches —
//!   blocking, termination, `yield_now` — are free). With bound `k`, every
//!   concurrency bug reachable with ≤ `k` preemptions is found; published
//!   empirical results (Musuvathi & Qadeer, PLDI 2007) show almost all real
//!   schedule-dependent bugs need ≤ 2.
//! * **What is NOT modeled.** Memory is sequentially consistent: relaxed /
//!   acquire / release orderings are all executed as `SeqCst`. This explores
//!   all *interleavings* but not *weak-memory reorderings*, so a missing
//!   release/acquire pair that is only observable through store buffering
//!   will not be caught here — that is what the ThreadSanitizer CI job and
//!   the `DESIGN.md` happens-before audit are for. Real loom (a C11-model
//!   explorer) subsumes this checker; swap it back in when the build
//!   environment can resolve crates.io dependencies.
//!
//! Deadlocks (all live threads blocked) and livelocks (step budget
//! exhaustion) are detected and reported with the failing schedule.
//!
//! # Example
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! loom::model(|| {
//!     let a = Arc::new(AtomicUsize::new(0));
//!     let b = Arc::clone(&a);
//!     let t = loom::thread::spawn(move || b.fetch_add(1, Ordering::SeqCst));
//!     a.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(a.load(Ordering::SeqCst), 2);
//! });
//! assert!(loom::explored_interleavings() >= 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hint;
pub mod model;
pub mod sync;
pub mod thread;

mod rt;

pub use model::{model, Builder};
pub use rt::explored_interleavings;
