//! Model-aware spin hints (subset of `loom::hint`).

/// In a model execution, spinning burns the serialized scheduler's only
/// baton, so the spin hint is a voluntary yield instead of a CPU pause.
pub fn spin_loop() {
    crate::rt::yield_now_point();
}
