//! Model-aware threads (subset of `loom::thread`).

use crate::rt;
use std::panic::{self, AssertUnwindSafe};

/// Handle to a spawned model thread (mirrors `std::thread::JoinHandle`).
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    tid: usize,
    modeled: bool,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Joining is a scheduling point. If the target thread panicked, this
    /// unwinds the whole execution so the explorer can report the original
    /// panic with its schedule.
    pub fn join(self) -> std::thread::Result<T> {
        if self.modeled {
            let (rt, me) = rt::current().expect("join() outside the spawning model execution");
            rt.join_wait(me, self.tid);
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            // The child recorded its panic with the runtime; propagate the
            // cancellation and let the explorer surface the real payload.
            Ok(None) => panic::panic_any(rt::AbortToken),
            Err(e) => Err(e),
        }
    }
}

/// Spawns a thread participating in the current model execution.
///
/// Outside `loom::model` this degrades to a plain `std::thread::spawn`, so
/// code shimmed onto loom types keeps working in ordinary tests.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        Some((rt, _parent)) => {
            let tid = rt.register_thread();
            let rt2 = std::sync::Arc::clone(&rt);
            let inner = std::thread::spawn(move || {
                rt::set_current(Some((std::sync::Arc::clone(&rt2), tid)));
                let out = panic::catch_unwind(AssertUnwindSafe(|| {
                    rt2.wait_until_scheduled(tid);
                    f()
                }));
                let value = match out {
                    Ok(v) => Some(v),
                    Err(payload) => {
                        rt2.record_panic(payload);
                        None
                    }
                };
                rt2.finish_thread(tid);
                value
            });
            JoinHandle {
                inner,
                tid,
                modeled: true,
            }
        }
        None => {
            let inner = std::thread::spawn(move || Some(f()));
            JoinHandle {
                inner,
                tid: 0,
                modeled: false,
            }
        }
    }
}

/// Voluntarily cedes the processor to another runnable model thread.
///
/// Spin loops **must** call this (directly or via `loom::hint::spin_loop`);
/// a busy-wait without it spins forever under the serialized scheduler and
/// trips the livelock guard.
pub fn yield_now() {
    rt::yield_now_point();
}
