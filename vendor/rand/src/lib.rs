//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access, so the real `rand` cannot be
//! resolved from crates.io. This crate implements exactly the surface the
//! workspace uses — [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `random`, `random_range`, and `random_bool`
//! — with a deterministic SplitMix64 generator. Every generator in this
//! repository is seeded explicitly, so determinism (not cryptographic or
//! statistical perfection) is the property that matters; SplitMix64 passes
//! BigCrush-scale equidistribution for the scales used here.
//!
//! `random_range` uses modulo reduction. The bias is `width / 2^64`, far
//! below anything the tests or data generators can observe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// The golden-ratio increment of SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalizer of SplitMix64 (same avalanche structure as MurmurHash3's).
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of 64-bit random words (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (stand-in for
/// sampling with the `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `bits >> 11` construction).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the whole-type uniform distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A SplitMix64 state, shared by the concrete generator types in [`rngs`].
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        // Pre-mix the seed so that small consecutive seeds give unrelated
        // streams (rand's `seed_from_u64` does the same).
        Self {
            state: splitmix64_mix(seed ^ GOLDEN_GAMMA),
        }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        splitmix64_mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u16 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(0..=4);
            assert!(y <= 4);
            let z: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut trues = 0u32;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            if rng.random_bool(0.25) {
                trues += 1;
            }
        }
        // Loose two-sided bound: 25% ± 5%.
        assert!((2000..3000).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn range_values_cover_small_domains() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
