//! Concrete generator types (subset of `rand::rngs`).

use crate::{RngCore, SeedableRng, SplitMix64};

/// A small, fast, deterministic generator (stand-in for `rand`'s
/// `SmallRng`). Backed by SplitMix64.
#[derive(Debug, Clone)]
pub struct SmallRng(SplitMix64);

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        Self(SplitMix64::new(state))
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}

/// The "standard" generator. The real crate uses ChaCha12; this stand-in
/// shares the SplitMix64 core — deterministic seeding is the only property
/// the workspace relies on.
#[derive(Debug, Clone)]
pub struct StdRng(SplitMix64);

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        Self(SplitMix64::new(state ^ 0x5bf0_3635))
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}
