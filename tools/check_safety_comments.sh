#!/usr/bin/env bash
# Requires every `unsafe` block, fn, or impl under crates/ to carry an
# adjacent `// SAFETY:` comment. Since PR 5 this is a thin wrapper over the
# analyzer's token-level pass (`wfbn-analyze`, gate `safety`), which
# replaced the old 6-line-lookback grep: that heuristic falsely accepted an
# undocumented item whenever an unrelated SAFETY comment sat within the
# window (see crates/analyze/fixtures/undoc_unsafe for the exact shape).
# The analyzer instead requires a contiguous comment/attribute run directly
# above the item — any code or blank line breaks adjacency.
#
# Usage: tools/check_safety_comments.sh   (exits non-zero on violations)
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p wfbn-analyze -- check --gate safety
