#!/usr/bin/env bash
# Requires every `unsafe` block, fn, or impl under crates/ to carry an
# adjacent `// SAFETY:` comment (on the same line or within the preceding
# 6 lines). The workspace forbids `unsafe_op_in_unsafe_fn` and clippy warns
# on `undocumented_unsafe_blocks`; this script is the belt to those braces —
# it also covers `unsafe impl`, which the clippy lint historically missed,
# and runs without compiling anything.
#
# Usage: tools/check_safety_comments.sh   (exits non-zero on violations)
set -euo pipefail
cd "$(dirname "$0")/.."

LOOKBACK=6
fail=0

# Lines whose code (not comment/string) mentions `unsafe`:
#  - drop pure comment lines (// ... unsafe ...) and doc comments,
#  - drop lint-name mentions (unsafe_op_in_unsafe_fn, unsafe_code),
#  - keep real `unsafe` keywords even mid-line.
while IFS=: read -r file line content; do
    case "$content" in
        *'//'*unsafe*)
            # Keep only if `unsafe` appears before the comment marker.
            before_comment=${content%%//*}
            [[ $before_comment == *unsafe* ]] || continue
            ;;
    esac
    [[ $content =~ unsafe_op_in_unsafe_fn|unsafe_code ]] && continue

    start=$((line > LOOKBACK ? line - LOOKBACK : 1))
    if ! sed -n "${start},${line}p" "$file" | grep -q 'SAFETY:'; then
        echo "missing // SAFETY: comment before $file:$line"
        echo "    $content"
        fail=1
    fi
done < <(grep -rn --include='*.rs' -E '(^|[^_[:alnum:]"])unsafe([^_[:alnum:]]|$)' crates/)

if [[ $fail -ne 0 ]]; then
    echo
    echo "Every unsafe block must explain its proof obligation with a"
    echo "// SAFETY: comment immediately above it."
    exit 1
fi
echo "check_safety_comments: OK"
