#!/usr/bin/env bash
# Guards the simulated benchmark series against cost regressions: re-runs
# the committed snapshot's workload and fails if any gated cycle count
# exceeds the committed baseline by more than 10%. Simulated cycles are
# deterministic (dataset seed + cost model ⇒ exact number), so on an
# unchanged tree this check reproduces the baseline bit-for-bit; any drift
# is a real algorithm/cost-model change, and >10% slower is a regression
# someone must either fix or re-baseline consciously (by re-running
# tools/bench_snapshot.sh and committing the new snapshot). Wall-clock
# numbers in a snapshot are ignored — they depend on the host.
#
# Dependency-free (grep/awk) so CI can run it without a JSON parser.
#
# Baseline layouts are dispatched from the SCHEMA_HANDLERS table below,
# keyed by the snapshot's "schema" tag:
#   wfbn-bench-pr7 — the workload scenario matrix: per-scenario stream
#                    fingerprints (compared exactly — the streams are byte
#                    deterministic) and per-scenario sim cycles/query
#                    (compared within 10%)
#   wfbn-bench-pr9 — the cluster shard-scaling series: per-shard-count sim
#                    cycles/query (within 10%) plus the cluster_s8_scaling
#                    acceptance floor (>= 3x, baseline and current)
#   wfbn-bench-pr4 — the fig. 3/4/5 + serve sweep (single scenario)
#   wfbn-bench-pr3 — same layout minus the serve section (skipped there)
#
# Usage: tools/check_bench_regression.sh [BASELINE]  (default BENCH_pr4.json)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=${1:-BENCH_pr4.json}
if [[ ! -f $baseline ]]; then
    # A fresh clone (or a branch that never committed a snapshot) has no
    # baseline — that is not a regression, there is simply nothing to
    # compare against. Note it and succeed; a *malformed* baseline below
    # still fails loudly.
    echo "check_bench_regression: no baseline ($baseline not found); skipping"
    echo "check_bench_regression: generate one with tools/bench_snapshot.sh"
    exit 0
fi

# Extract `"key": 123` integers from the baseline (first match, empty if
# absent) — shared by every handler's parse stage. `|| true`: a missing key
# must fall through to the handler's explicit malformed-baseline message,
# not die silently under `set -euo pipefail`.
extract_int() {
    grep -o "\"$1\": [0-9]*" "$baseline" | head -1 | awk '{print $2}' || true
}

# ---------------------------------------------------------------- pr7 mode
check_pr7() {
    # Every parse happens before any cargo invocation, so a malformed
    # baseline fails fast and cheap (the malformed-input test relies on it).
    rows=$(extract_int rows)
    batches=$(extract_int batches)
    queries=$(extract_int queries)
    readers=$(extract_int readers)
    seed=$(extract_int seed)
    names=$(grep -o '"name": "[a-z-]*"' "$baseline" \
            | sed 's/.*: "//; s/"//' || true)
    fps=$(grep -o '"fingerprint": "[0-9a-f]*"' "$baseline" \
            | sed 's/.*: "//; s/"//' || true)
    cycles=$(grep -o '"sim_cycles_per_query": [0-9.eE+-]*' "$baseline" \
            | awk '{print $2}' || true)
    n_names=$(echo "$names" | grep -c . || true)
    n_fps=$(echo "$fps" | grep -c . || true)
    n_cycles=$(echo "$cycles" | grep -c . || true)
    if [[ -z $rows || -z $batches || -z $queries || -z $readers || -z $seed \
          || $n_names -eq 0 || $n_names -ne $n_fps || $n_names -ne $n_cycles ]]; then
        echo "check_bench_regression: $baseline is malformed — could not parse" >&2
        echo "  the pr7 workload (rows/batches/queries/readers/seed) and a" >&2
        echo "  consistent per-scenario name/fingerprint/cycles triple from it" >&2
        echo "  (names=$n_names fingerprints=$n_fps cycles=$n_cycles)" >&2
        echo "  re-generate with: BENCH_OUT=$baseline tools/bench_snapshot.sh" >&2
        exit 1
    fi

    # Regenerate deterministically: --sim-only replays nothing, so the
    # comparison never depends on host scheduling.
    current_json=$(cargo run --release -q -p wfbn-bench --bin scenario_matrix -- \
        --sim-only --rows "$rows" --batches "$batches" --queries "$queries" \
        --readers "$readers" --seed "$seed" 2>/dev/null)
    cur_fps=$(echo "$current_json" | grep -o '"fingerprint": "[0-9a-f]*"' \
            | sed 's/.*: "//; s/"//')
    cur_cycles=$(echo "$current_json" | grep -o '"sim_cycles_per_query": [0-9.eE+-]*' \
            | awk '{print $2}')

    echo "workload: rows=$rows batches=$batches queries=$queries readers=$readers seed=$seed"
    paste -d ' ' <(echo "$names") <(echo "$fps") <(echo "$cur_fps") \
                 <(echo "$cycles") <(echo "$cur_cycles") | awk '
        {
            name = $1; bfp = $2; cfp = $3; bcyc = $4 + 0; ccyc = $5 + 0
            if (cfp == "") {
                printf "check_bench_regression: scenario %s missing from regenerated matrix\n", name
                fail = 1; next
            }
            if (bfp != cfp) {
                printf "  %-22s fingerprint %s -> %s  STREAM CHANGED\n", name, bfp, cfp
                printf "check_bench_regression: %s workload stream drifted — generation is\n", name
                printf "  no longer byte-deterministic, or the generator changed without a\n"
                printf "  conscious re-baseline (tools/bench_snapshot.sh)\n"
                fail = 1; next
            }
            if (bcyc <= 0) {
                printf "check_bench_regression: malformed cycles for %s (baseline=%s)\n", name, $4
                fail = 1; next
            }
            ratio = ccyc / bcyc
            printf "  %-22s fingerprint ok, %12.0f -> %12.0f cycles/query (%.3fx)\n", \
                   name, bcyc, ccyc, ratio
            if (ratio > 1.10) {
                printf "check_bench_regression: %s sim cycles regressed %.1f%% (>10%%)\n", \
                       name, (ratio - 1) * 100
                fail = 1
            }
        }
        END { exit fail }
    '
}

# ---------------------------------------------------------------- pr9 mode
check_pr9() {
    # Parse everything before spending a cargo build: a malformed cluster
    # baseline must fail in milliseconds, exactly like the pr7 layout.
    n=$(extract_int n)
    m=$(extract_int m)
    seed=$(extract_int seed)
    cps=$(extract_int cores_per_shard)
    shards=$(grep -o '"shards": \[[0-9, ]*\]' "$baseline" | head -1 \
            | sed 's/.*\[//; s/\]//; s/ //g' || true)
    committed=$(grep -o '"sim_cycles_per_query": \[[0-9.,eE+-]*\]' "$baseline" | head -1 \
            | sed 's/.*\[//; s/\]//; s/ //g' || true)
    s8=$(grep -o '"cluster_s8_scaling": [0-9.eE+-]*' "$baseline" | head -1 \
            | awk '{print $2}' || true)
    n_shards=$(echo "$shards" | awk -F, '{print NF}')
    n_cycles=$(echo "$committed" | awk -F, '{print NF}')
    if [[ -z $n || -z $m || -z $seed || -z $cps || -z $shards \
          || -z $committed || -z $s8 || $n_shards -ne $n_cycles ]]; then
        echo "check_bench_regression: $baseline is malformed — could not parse" >&2
        echo "  the pr9 workload (n/m/seed/cores_per_shard), a shards list with" >&2
        echo "  a matching sim_cycles_per_query series, and cluster_s8_scaling" >&2
        echo "  (shards=${n_shards:-0} cycles=${n_cycles:-0})" >&2
        echo "  re-generate with: BENCH_PR9_OUT=$baseline tools/bench_snapshot.sh" >&2
        exit 1
    fi

    current_json=$(cargo run --release -q -p wfbn-bench --bin cluster_bench -- \
        --sim-only --samples "$m" --vars "$n" --seed "$seed" \
        --shards "$shards" --cores-per-shard "$cps" 2>/dev/null)
    current=$(echo "$current_json" \
            | grep -o '"sim_cycles_per_query": \[[0-9.,eE+-]*\]' | head -1 \
            | sed 's/.*\[//; s/\]//; s/ //g')
    cur_s8=$(echo "$current_json" | grep -o '"cluster_s8_scaling": [0-9.eE+-]*' \
            | head -1 | awk '{print $2}')
    if [[ -z $current || -z $cur_s8 ]]; then
        echo "check_bench_regression: cluster_bench produced no sim series" >&2
        exit 1
    fi

    echo "workload: n=$n m=$m seed=$seed shards=[$shards] cores_per_shard=$cps"
    echo "baseline: $committed"
    echo "current:  $current"
    awk -v base="$committed" -v cur="$current" -v shards="$shards" \
        -v bs8="$s8" -v cs8="$cur_s8" '
        BEGIN {
            nb = split(base, b, ",")
            nc = split(cur, c, ",")
            split(shards, s, ",")
            if (nb != nc) {
                printf "check_bench_regression: series length mismatch (%d vs %d)\n", nb, nc
                exit 1
            }
            fail = 0
            for (i = 1; i <= nb; i++) {
                if (b[i] !~ /^[0-9.eE+-]+$/ || c[i] !~ /^[0-9.eE+-]+$/ || b[i] + 0 <= 0) {
                    printf "check_bench_regression: malformed series entry %d (baseline=%s, current=%s)\n", \
                           i, b[i], c[i]
                    exit 1
                }
                ratio = c[i] / b[i]
                printf "  S=%-3s %14.0f -> %14.0f cycles/query (%.3fx)\n", s[i], b[i], c[i], ratio
                if (ratio > 1.10) {
                    printf "check_bench_regression: S=%s cluster cycles regressed %.1f%% (>10%%)\n", \
                           s[i], (ratio - 1) * 100
                    fail = 1
                }
            }
            printf "cluster:  S=8 scaling baseline=%.3f current=%.3f (gate >= 3.0)\n", bs8, cs8
            if (bs8 + 0 < 3.0) {
                printf "check_bench_regression: baseline cluster_s8_scaling %.3f < 3.0\n", bs8
                fail = 1
            }
            if (cs8 + 0 < 3.0) {
                printf "check_bench_regression: current cluster_s8_scaling %.3f < 3.0\n", cs8
                fail = 1
            }
            exit fail
        }
    '
}

# --------------------------------------------------------- pr3/pr4 mode
check_pr4() {
    # Pull the workload and the committed batched series out of the baseline.
    n=$(extract_int n)
    m=$(extract_int m)
    seed=$(extract_int seed)
    cores=$(grep -o '"cores": \[[0-9, ]*\]' "$baseline" | head -1 \
            | sed 's/.*\[//; s/\]//; s/ //g' || true)
    committed=$(grep -o '"sim_batched_cycles": \[[0-9.,eE+-]*\]' "$baseline" | head -1 \
            | sed 's/.*\[//; s/\]//; s/ //g' || true)
    if [[ -z $n || -z $m || -z $seed || -z $cores || -z $committed ]]; then
        echo "check_bench_regression: $baseline is malformed — could not parse" >&2
        echo "  workload (n/m/seed/cores) and sim_batched_cycles series from it" >&2
        echo "  re-generate with: tools/bench_snapshot.sh" >&2
        exit 1
    fi

    # Re-run the simulated sweep only (reps=1: wall numbers are discarded).
    current_json=$(cargo run --release -q -p wfbn-bench --bin bench_snapshot -- \
        --samples "$m" --vars "$n" --seed "$seed" --cores "$cores" --reps 1)
    current=$(echo "$current_json" \
            | grep -o '"sim_batched_cycles": \[[0-9.,eE+-]*\]' | head -1 \
            | sed 's/.*\[//; s/\]//; s/ //g')
    if [[ -z $current ]]; then
        echo "check_bench_regression: bench_snapshot produced no batched series" >&2
        exit 1
    fi

    echo "workload: n=$n m=$m seed=$seed cores=[$cores]"
    echo "baseline: $committed"
    echo "current:  $current"

    awk -v base="$committed" -v cur="$current" -v cores="$cores" '
        BEGIN {
            nb = split(base, b, ",")
            nc = split(cur, c, ",")
            split(cores, p, ",")
            if (nb != nc) {
                printf "check_bench_regression: series length mismatch (%d vs %d)\n", nb, nc
                exit 1
            }
            fail = 0
            for (i = 1; i <= nb; i++) {
                # Guard against a malformed series: a non-numeric entry coerces
                # to 0 in awk, and a zero baseline would divide by zero below —
                # both mean the snapshot is corrupt, not that the code regressed.
                if (b[i] !~ /^[0-9.eE+-]+$/ || c[i] !~ /^[0-9.eE+-]+$/ || b[i] + 0 <= 0) {
                    printf "check_bench_regression: malformed series entry %d (baseline=%s, current=%s)\n", \
                           i, b[i], c[i]
                    exit 1
                }
                ratio = c[i] / b[i]
                printf "  P=%-3s %14.0f -> %14.0f cycles (%.3fx)\n", p[i], b[i], c[i], ratio
                if (ratio > 1.10) {
                    printf "check_bench_regression: P=%s batched cycles regressed %.1f%% (>10%%)\n", \
                           p[i], (ratio - 1) * 100
                    fail = 1
                }
            }
            exit fail
        }
    '

    # pr4 snapshots also carry the serve-throughput series: check that the
    # deterministic scaling series is present and that the gated acceptance
    # value (P=8 throughput relative to P=1) meets the >= 3x floor. Older pr3
    # baselines lack the section — skip the check rather than fail, so the
    # script still validates historical snapshots.
    if grep -q '"serve"' "$baseline"; then
        serve_scaling=$(grep -o '"serve_p8_scaling": [0-9.eE+-]*' "$baseline" | head -1 \
                | awk '{print $2}')
        if [[ -z $serve_scaling ]]; then
            echo "check_bench_regression: serve section present but no serve_p8_scaling" >&2
            exit 1
        fi
        current_serve=$(echo "$current_json" \
                | grep -o '"serve_p8_scaling": [0-9.eE+-]*' | head -1 | awk '{print $2}')
        echo "serve:    P=8 scaling baseline=$serve_scaling current=${current_serve:-<missing>}"
        awk -v base="$serve_scaling" -v cur="${current_serve:-0}" '
            BEGIN {
                if (base + 0 < 3.0) {
                    printf "check_bench_regression: baseline serve_p8_scaling %.3f < 3.0\n", base
                    exit 1
                }
                if (cur + 0 < 3.0) {
                    printf "check_bench_regression: current serve_p8_scaling %.3f < 3.0\n", cur
                    exit 1
                }
            }
        '
    fi
}

# ------------------------------------------------------------ dispatch
# One row per baseline layout: "<schema tag> <handler>". A new snapshot
# schema adds a row here and a handler function above — nothing else.
SCHEMA_HANDLERS="\
wfbn-bench-pr7 check_pr7
wfbn-bench-pr9 check_pr9
wfbn-bench-pr4 check_pr4
wfbn-bench-pr3 check_pr4"

handler=""
while read -r schema fn; do
    if grep -q "\"schema\": \"$schema\"" "$baseline"; then
        handler=$fn
        break
    fi
done <<<"$SCHEMA_HANDLERS"
if [[ -z $handler ]]; then
    # Pre-schema-tag snapshots used the pr3/pr4 layout; keep validating
    # them rather than failing on the missing tag.
    handler=check_pr4
fi

"$handler"
echo "check_bench_regression: OK ($baseline)"
