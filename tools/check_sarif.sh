#!/usr/bin/env bash
# Validates a SARIF 2.1.0 log produced by `wfbn-analyze -- check --format
# sarif`: well-formed JSON (when python3 is available) plus the structural
# anchors CI annotators rely on — schema/version, the driver name, the
# exact eight-rule set (seven gates plus the safety pass), and a results
# array. Dependency-light by design: the grep fallback keeps it working on
# runners without python3.
#
# Usage: tools/check_sarif.sh FILE.sarif
set -euo pipefail

file=${1:?usage: tools/check_sarif.sh FILE.sarif}
if [[ ! -s $file ]]; then
    echo "check_sarif: $file missing or empty" >&2
    exit 1
fi

if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$file" >/dev/null || {
        echo "check_sarif: $file is not well-formed JSON" >&2
        exit 1
    }
else
    echo "check_sarif: python3 unavailable; structural greps only"
fi

require() {
    grep -qF "$1" "$file" || {
        echo "check_sarif: $file lacks required anchor: $1" >&2
        exit 1
    }
}
require '"$schema": "https://json.schemastore.org/sarif-2.1.0.json"'
require '"version": "2.1.0"'
require '"name": "wfbn-analyze"'
require '"rules": ['
require '"results": ['
for rule in safety waitfree hb ratchet waitloop noblock layout modelcov; do
    require "\"id\": \"$rule\""
done
# The rule set is exact, not a lower bound: a gate added to the analyzer
# without updating this script (or retired without pruning it) fails here.
count=$(grep -c '"id": "' "$file")
if [[ $count -ne 8 ]]; then
    echo "check_sarif: expected exactly 8 rules, found $count" >&2
    exit 1
fi
echo "check_sarif: OK ($file)"
