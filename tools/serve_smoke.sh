#!/usr/bin/env bash
# End-to-end smoke test for the serving subsystem: the MI values a live
# `wfbn serve` session answers must match the offline `wfbn mi` screening on
# the same CSV. Both paths reduce the same integer count tables, so at a
# synced epoch the printed values agree to the last printed digit; the
# comparison still allows a tiny numeric tolerance so the check pins
# semantics, not formatting.
#
# Usage: tools/serve_smoke.sh [--top K]   (default K=5)
set -euo pipefail
cd "$(dirname "$0")/.."

top=5
if [[ ${1:-} == --top ]]; then
    top=${2:?--top expects a value}
fi

cargo build --release -p wfbn-cli
wfbn=./target/release/wfbn

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
csv=$workdir/chain.csv

"$wfbn" gen --chain 6,0.8 --samples 20000 --seed 7 --out "$csv" >/dev/null

# Offline screening: rank, "Xi -- Xj", value, unit.
"$wfbn" mi --in "$csv" --top "$top" > "$workdir/offline.txt"
if [[ ! -s $workdir/offline.txt ]]; then
    echo "serve_smoke: offline mi produced no output" >&2
    exit 1
fi

# Turn the offline top-K edges into serve-protocol MI queries.
script=$workdir/queries.txt
awk '{ printf "MI %s %s\n", substr($2, 2), substr($4, 2) }' \
    "$workdir/offline.txt" > "$script"
{ echo "SYNC"; cat "$script"; echo "QUIT"; } > "$workdir/session.txt"

"$wfbn" serve --in "$csv" --script "$workdir/session.txt" > "$workdir/served.txt"

echo "--- offline (wfbn mi) ---"
cat "$workdir/offline.txt"
echo "--- served (wfbn serve) ---"
grep '^OK MI' "$workdir/served.txt"

# Column 5 of the offline line is the MI value; column 6 of the served
# "OK MI e=E Xi -- Xj V unit" line is the same value. Compare pairwise.
paste <(awk '{print $2, $4, $5}' "$workdir/offline.txt") \
      <(grep '^OK MI' "$workdir/served.txt" | awk '{print $4, $6, $7}') \
| awk '
    {
        if ($1 != $4 || $2 != $5) {
            printf "serve_smoke: edge mismatch: offline %s--%s vs served %s--%s\n", \
                   $1, $2, $4, $5
            fail = 1
        }
        diff = $3 - $6; if (diff < 0) diff = -diff
        if (diff > 1e-6) {
            printf "serve_smoke: MI mismatch on %s--%s: offline %s served %s\n", \
                   $1, $2, $3, $6
            fail = 1
        }
        count++
    }
    END {
        if (count == 0) { print "serve_smoke: nothing compared"; exit 1 }
        if (fail) exit 1
        printf "serve_smoke: OK (%d edges matched)\n", count
    }
'
