#!/usr/bin/env bash
# Regenerates the benchmark snapshot (BENCH_pr4.json by default): the
# scalar-vs-batched build sweep over the fig. 3/4/5 workload shapes plus the
# serve-throughput-vs-readers series (simulated cycles + wall time). The
# simulated series are deterministic — same dataset, same cost model, same
# numbers on any host — which is what lets tools/check_bench_regression.sh
# gate on them. Wall numbers are host-dependent context, never gated on.
#
# Also regenerates the workload scenario matrix (BENCH_pr7.json): every
# wfbn-workload scenario replayed with the fairness/latency SLO gates
# enforced, plus the deterministic stream fingerprints and sim cycles the
# regression checker pins. Skip it with BENCH_PR7_OUT=skip.
#
# Usage: tools/bench_snapshot.sh [extra bench_snapshot flags...]
#   e.g. tools/bench_snapshot.sh --samples 200000 --reps 9
#   BENCH_OUT=BENCH_custom.json tools/bench_snapshot.sh   # override target
#   BENCH_PR7_OUT=BENCH_custom7.json / BENCH_PR7_OUT=skip # matrix target
set -euo pipefail
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_pr4.json}
pr7_out=${BENCH_PR7_OUT:-BENCH_pr7.json}
pr9_out=${BENCH_PR9_OUT:-BENCH_pr9.json}
cargo build --release -p wfbn-bench --bin bench_snapshot --bin scenario_matrix \
    --bin cluster_bench
./target/release/bench_snapshot --out "$out" "$@"
echo "bench_snapshot: wrote $out"
if [[ $pr7_out != skip ]]; then
    # Full replay (not --sim-only): the committed snapshot carries the
    # wall percentiles for EXPERIMENTS.md, and a gate failure fails the
    # re-baseline — a snapshot that violates its own SLOs must not land.
    ./target/release/scenario_matrix --out "$pr7_out"
    echo "bench_snapshot: wrote $pr7_out"
fi
if [[ $pr9_out != skip ]]; then
    # Full run (not --sim-only): the committed snapshot carries the wall
    # qps series for EXPERIMENTS.md, and the binary itself fails the
    # re-baseline if cluster_s8_scaling drops below the 3x acceptance floor.
    ./target/release/cluster_bench --out "$pr9_out"
    echo "bench_snapshot: wrote $pr9_out"
fi
