#!/usr/bin/env bash
# Regenerates BENCH_pr3.json: the scalar-vs-batched benchmark snapshot over
# the fig. 3/4/5 workload shapes (simulated cycles + wall time). The
# simulated series are deterministic — same dataset, same cost model, same
# numbers on any host — which is what lets tools/check_bench_regression.sh
# gate on them. Wall numbers are host-dependent context, never gated on.
#
# Usage: tools/bench_snapshot.sh [extra bench_snapshot flags...]
#   e.g. tools/bench_snapshot.sh --samples 200000 --reps 9
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_pr3.json
cargo build --release -p wfbn-bench --bin bench_snapshot
./target/release/bench_snapshot --out "$out" "$@"
echo "bench_snapshot: wrote $out"
