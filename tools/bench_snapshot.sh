#!/usr/bin/env bash
# Regenerates the benchmark snapshot (BENCH_pr4.json by default): the
# scalar-vs-batched build sweep over the fig. 3/4/5 workload shapes plus the
# serve-throughput-vs-readers series (simulated cycles + wall time). The
# simulated series are deterministic — same dataset, same cost model, same
# numbers on any host — which is what lets tools/check_bench_regression.sh
# gate on them. Wall numbers are host-dependent context, never gated on.
#
# Usage: tools/bench_snapshot.sh [extra bench_snapshot flags...]
#   e.g. tools/bench_snapshot.sh --samples 200000 --reps 9
#   BENCH_OUT=BENCH_custom.json tools/bench_snapshot.sh   # override target
set -euo pipefail
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_pr4.json}
cargo build --release -p wfbn-bench --bin bench_snapshot
./target/release/bench_snapshot --out "$out" "$@"
echo "bench_snapshot: wrote $out"
