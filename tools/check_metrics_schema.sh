#!/usr/bin/env bash
# Validates a `wfbn-metrics-v5` JSON report — the file `repro --metrics`
# writes to results/metrics.json (the same document the figure binaries and
# `wfbn build/mi --metrics` print). Checks the schema tag, every top-level
# section, every stage key, every counter key, and one conservation law the
# paper guarantees: the per-core `rows_encoded` entries must sum to the
# totals' value (each of the m rows is encoded by exactly one core).
# Dependency-free (grep/awk) so CI can run it against a fresh artifact
# without a JSON parser.
#
# Usage: tools/check_metrics_schema.sh [FILE]   (default results/metrics.json)
set -euo pipefail
cd "$(dirname "$0")/.."

file=${1:-results/metrics.json}
if [[ ! -f $file ]]; then
    echo "check_metrics_schema: $file not found" >&2
    echo "generate it with: cargo run -p wfbn-bench --release --bin repro -- --metrics" >&2
    exit 1
fi

fail=0
need() {
    if ! grep -qF "$1" "$file"; then
        echo "check_metrics_schema: missing $2 '$1' in $file"
        fail=1
    fi
}

need '"schema": "wfbn-metrics-v5"' "schema tag"
for section in '"cores":' '"totals":' '"stage_ns_total":' '"stage_ns_max":' \
               '"queue_hwm_max":' '"probe_hist":' '"latency_hist":' \
               '"latency_percentiles":' '"fairness":' '"per_core":'; do
    need "$section" "section"
done
# v4 summary keys inside the percentile and fairness blocks.
for key in p50_le_ns p99_le_ns p999_le_ns serving_cores served_min served_max \
           max_min_ratio; do
    need "\"$key\":" "v4 summary key"
done
for stage in stage1_encode_route barrier_wait stage2_drain marginalize query_serve; do
    need "\"$stage\":" "stage key"
done
for counter in rows_encoded local_updates forwarded drained probes table_grows \
               segments_linked pairs_scanned entries_scanned rebalance_moves \
               blocks_flushed keys_coalesced queries_served cache_hits \
               cache_misses epochs_published epochs_pinned batches_routed \
               shard_batches_routed query_fan_outs partial_merges \
               cluster_epochs_published; do
    need "\"$counter\":" "counter key"
done

# Conservation spot-check without a JSON parser: the first `rows_encoded`
# in the document is the totals section, the rest are the per-core array.
awk '
    /"rows_encoded":/ {
        value = $2
        gsub(/[^0-9]/, "", value)
        if (total == "") { total = value + 0 } else { sum += value; cores++ }
    }
    END {
        if (cores == 0) {
            print "check_metrics_schema: no per-core rows_encoded entries"
            exit 1
        }
        if (sum != total) {
            printf "check_metrics_schema: per-core rows_encoded sum %d != total %d\n", sum, total
            exit 1
        }
    }
' "$file" || fail=1

if [[ $fail -ne 0 ]]; then
    exit 1
fi
echo "check_metrics_schema: OK ($file)"
