//! End-to-end integration: ground-truth network → sampled data → wait-free
//! potential table → three-phase learner → structure metrics, crossing
//! every crate in the workspace.

use wfbn_bn::cheng::ChengLearner;
use wfbn_bn::dsep::d_separated;
use wfbn_bn::metrics::{cpdag_shd, dag_to_cpdag, skeleton_report};
use wfbn_bn::repository;
use wfbn_core::allpairs::all_pairs_mi;
use wfbn_core::construct::waitfree_build;
use wfbn_core::entropy::nats_to_bits;
use wfbn_data::csv::{read_csv, write_csv};

#[test]
fn sprinkler_pipeline_recovers_structure_and_orients_the_collider() {
    let net = repository::sprinkler();
    let data = net.sample(60_000, 11);
    let result = ChengLearner::default()
        .learn(&data)
        .expect("learning succeeds");

    let truth = net.dag().skeleton();
    let report = skeleton_report(&truth, &result.skeleton);
    assert_eq!(report.shd(), 0, "learned {:?}", result.skeleton.edges());

    // Sprinkler's only v-structure: Sprinkler → WetGrass ← Rain.
    assert!(
        result.cpdag.is_directed(1, 3),
        "Sprinkler → WetGrass missing"
    );
    assert!(result.cpdag.is_directed(2, 3), "Rain → WetGrass missing");
    // Pattern distance to the true CPDAG is small.
    assert!(cpdag_shd(&dag_to_cpdag(net.dag()), &result.cpdag) <= 1);
}

#[test]
fn learned_independencies_match_d_separation_oracle() {
    // Graphical independence statements of the true network should show up
    // as near-zero MI in the learned matrix, and dependences as larger MI.
    let net = repository::cancer();
    let data = net.sample(60_000, 3);
    let table = waitfree_build(&data, 4).expect("non-empty").table;
    let mi = all_pairs_mi(&table, 4);
    let g = net.dag();
    for i in 0..5 {
        for j in (i + 1)..5 {
            let independent = d_separated(g, i, j, &[]);
            let bits = nats_to_bits(mi.get(i, j));
            if independent {
                assert!(bits < 0.005, "({i},{j}) d-separated but MI = {bits}");
            }
        }
    }
    // Cancer–X-ray is a direct edge; with P(cancer) ≈ 1.2% its mutual
    // information is small in absolute terms (≈ 0.018 bits analytically)
    // but far above the sampling-noise floor of the independent pairs.
    assert!(nats_to_bits(mi.get(2, 3)) > 0.01);
}

#[test]
fn csv_round_trip_preserves_learning_outcome() {
    let net = repository::sprinkler();
    let data = net.sample(30_000, 21);
    let mut buf = Vec::new();
    write_csv(&data, &mut buf).expect("write CSV");
    let restored = read_csv(data.schema().clone(), buf.as_slice()).expect("read CSV");
    assert_eq!(data, restored);

    let a = ChengLearner::default()
        .learn(&data)
        .expect("learn original");
    let b = ChengLearner::default()
        .learn(&restored)
        .expect("learn restored");
    assert_eq!(a.skeleton.edges(), b.skeleton.edges());
}

#[test]
fn thread_count_does_not_change_the_learned_structure() {
    let net = repository::cancer();
    let data = net.sample(40_000, 9);
    let reference = ChengLearner {
        threads: 1,
        ..ChengLearner::default()
    }
    .learn(&data)
    .expect("single-thread learn");
    for threads in [2usize, 4, 8] {
        let result = ChengLearner {
            threads,
            ..ChengLearner::default()
        }
        .learn(&data)
        .expect("multi-thread learn");
        assert_eq!(
            result.skeleton.edges(),
            reference.skeleton.edges(),
            "threads={threads}"
        );
        assert_eq!(result.cpdag, reference.cpdag, "threads={threads}");
    }
}

#[test]
fn alarm_scale_network_runs_through_the_whole_stack() {
    // 37 nodes / mixed arities: a smoke test at repository scale.
    let net = repository::alarm_like();
    let data = net.sample(20_000, 5);
    let table = waitfree_build(&data, 4).expect("non-empty").table;
    assert_eq!(table.total_count(), 20_000);
    let mi = all_pairs_mi(&table, 4);
    // Every true edge should carry more MI than the median non-edge.
    let mut edge_mi: Vec<f64> = Vec::new();
    let mut non_edge_mi: Vec<f64> = Vec::new();
    let skel = net.dag().skeleton();
    for (i, j, v) in mi.iter_pairs() {
        if skel.has_edge(i, j) {
            edge_mi.push(v);
        } else {
            non_edge_mi.push(v);
        }
    }
    non_edge_mi.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_non_edge = non_edge_mi[non_edge_mi.len() / 2];
    let strong_edges = edge_mi.iter().filter(|&&v| v > median_non_edge).count();
    assert!(
        strong_edges * 10 >= edge_mi.len() * 8,
        "only {strong_edges}/{} true edges beat the median non-edge MI",
        edge_mi.len()
    );
}
