//! Batched-vs-scalar equivalence: the block-granular hot paths (write-
//! combining routing, `push_block`/`pop_block` transfer, combiner
//! pre-aggregation, batched table application) are pure performance
//! transformations — on every input, at every thread count, they must
//! produce *byte-identical* tables and MI surfaces indistinguishable to
//! 1e-12 from the scalar builders.
//!
//! Deterministic cases pin the seams the property tests may miss: block
//! sizes straddling the SPSC segment capacity (`SEG_CAP − 1`, `SEG_CAP`,
//! `SEG_CAP + 1`), where `push_block` must link and publish fresh segments
//! mid-block.

use proptest::prelude::*;
use wfbn_concurrent::spsc::{channel, SEG_CAP};
use wfbn_core::allpairs::all_pairs_mi;
use wfbn_core::construct::{
    sequential_build, sequential_build_batched, waitfree_build, waitfree_build_batched,
};
use wfbn_core::pipeline::pipelined_build_batched;
use wfbn_core::stream::StreamingBuilder;
use wfbn_core::wide::{waitfree_build_wide, waitfree_build_wide_batched};
use wfbn_core::CountTable;
use wfbn_data::{Dataset, Generator, Schema, UniformIndependent, ZipfIndependent};

/// The acceptance grid from the issue: every batched path must agree with
/// its scalar twin at each of these thread counts.
const CORES: [usize; 4] = [1, 2, 4, 8];

/// A random schema of 1–6 variables with arities 2–5.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(2u16..=5, 1..=6).prop_map(|arities| Schema::new(arities).unwrap())
}

/// A random dataset of 1–400 rows conforming to a random schema.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    schema_strategy().prop_flat_map(|schema| {
        let n = schema.num_vars();
        let arities: Vec<u16> = schema.arities().to_vec();
        prop::collection::vec(
            prop::collection::vec(0u16..5, n).prop_map(move |mut row| {
                for (s, &r) in row.iter_mut().zip(&arities) {
                    *s %= r;
                }
                row
            }),
            1..=400,
        )
        .prop_map(move |rows| {
            let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
            Dataset::from_rows(schema.clone(), &refs).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_builders_are_byte_identical_to_scalar(
        data in dataset_strategy(),
        pi in 0usize..CORES.len(),
    ) {
        let p = CORES[pi];
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        prop_assert_eq!(
            sequential_build_batched(&data).unwrap().table.to_sorted_vec(),
            reference.clone(),
            "sequential batched"
        );
        prop_assert_eq!(
            waitfree_build_batched(&data, p).unwrap().table.to_sorted_vec(),
            reference.clone(),
            "two-stage batched at p={}", p
        );
        prop_assert_eq!(
            pipelined_build_batched(&data, p).unwrap().table.to_sorted_vec(),
            reference.clone(),
            "pipelined batched at p={}", p
        );
        let mut stream = StreamingBuilder::new(data.schema(), p).unwrap();
        stream.absorb_batched(&data).unwrap();
        prop_assert_eq!(
            stream.finish().unwrap().table.to_sorted_vec(),
            reference,
            "streaming batched at p={}", p
        );
    }

    #[test]
    fn batched_tables_yield_mi_within_1e_12(
        data in dataset_strategy(),
        pi in 0usize..CORES.len(),
    ) {
        let p = CORES[pi];
        let scalar = waitfree_build(&data, p).unwrap().table;
        let batched = waitfree_build_batched(&data, p).unwrap().table;
        let mi_scalar = all_pairs_mi(&scalar, 1);
        let mi_batched = all_pairs_mi(&batched, 1);
        prop_assert!(
            mi_scalar.max_abs_diff(&mi_batched) < 1e-12,
            "MI drifted at p={}", p
        );
    }
}

/// `push_block` sized exactly around `SEG_CAP` — one slot short of the
/// boundary, landing on it, and one slot past it — plus a multi-segment
/// block. Every element must come back, in order, via `pop_block`.
#[test]
fn push_block_straddles_segment_boundaries_losslessly() {
    for len in [SEG_CAP - 1, SEG_CAP, SEG_CAP + 1, 3 * SEG_CAP + 1] {
        let (mut tx, mut rx) = channel::<u64>();
        let block: Vec<u64> = (0..len as u64).collect();
        tx.push_block(&block);
        drop(tx); // close: everything already published
        let mut got = Vec::new();
        while rx.pop_block(&mut got) > 0 {}
        assert_eq!(got, block, "len={len}");
    }
}

/// Block producer with scalar consumer and vice versa: the two granularities
/// share one publication protocol, so they must interoperate across the
/// same boundary-straddling sizes.
#[test]
fn block_and_scalar_endpoints_interoperate() {
    for len in [SEG_CAP - 1, SEG_CAP, SEG_CAP + 1] {
        // push_block → try_pop
        let (mut tx, mut rx) = channel::<u64>();
        let block: Vec<u64> = (0..len as u64).collect();
        tx.push_block(&block);
        drop(tx);
        let mut got = Vec::new();
        while let Some(v) = rx.try_pop() {
            got.push(v);
        }
        assert_eq!(got, block, "push_block→try_pop len={len}");

        // push → pop_block
        let (mut tx, mut rx) = channel::<u64>();
        for v in 0..len as u64 {
            tx.push(v);
        }
        drop(tx);
        let mut got = Vec::new();
        while rx.pop_block(&mut got) > 0 {}
        assert_eq!(got, block, "push→pop_block len={len}");
    }
}

/// `CountTable::increment_block` (prefetch + pre-hash tiles) must count
/// exactly like a loop of scalar increments at block sizes around the
/// segment capacity and around its internal tile width.
#[test]
fn count_table_block_application_matches_scalar_increments() {
    for len in [1, 15, 16, 17, SEG_CAP - 1, SEG_CAP, SEG_CAP + 1] {
        let pairs: Vec<(u64, u64)> = (0..len as u64)
            .map(|i| (i % 97, 1 + (i % 3)))
            .collect();
        let mut blocked = CountTable::new();
        blocked.increment_block(&pairs);
        let mut scalar = CountTable::new();
        for &(k, c) in &pairs {
            scalar.increment(k, c);
        }
        assert_eq!(
            blocked.to_sorted_vec(),
            scalar.to_sorted_vec(),
            "len={len}"
        );
    }
}

/// Full builds whose per-queue traffic lands around the segment boundary:
/// with two threads and distinct keys, each foreign queue carries ≈ m/2
/// un-coalescible elements, so m near 2·SEG_CAP exercises flushes that
/// split across fresh segments inside the real pipeline.
#[test]
fn builds_agree_at_row_counts_straddling_seg_cap() {
    let schema = Schema::uniform(16, 2).unwrap();
    for m in [
        SEG_CAP - 1,
        SEG_CAP,
        SEG_CAP + 1,
        2 * SEG_CAP,
        2 * SEG_CAP + 1,
    ] {
        let data = UniformIndependent::new(schema.clone()).generate(m, 7);
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        for p in CORES {
            assert_eq!(
                waitfree_build_batched(&data, p).unwrap().table.to_sorted_vec(),
                reference,
                "two-stage m={m} p={p}"
            );
            assert_eq!(
                pipelined_build_batched(&data, p).unwrap().table.to_sorted_vec(),
                reference,
                "pipelined m={m} p={p}"
            );
        }
    }
}

/// Skew is the combiner's best case (long duplicate runs coalesce into few
/// weighted pairs) and therefore the most likely place to lose or double
/// count mass.
#[test]
fn batched_builds_survive_heavy_skew() {
    let schema = Schema::uniform(14, 2).unwrap();
    let data = ZipfIndependent::new(schema, 2.2)
        .unwrap()
        .generate(30_000, 13);
    let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
    for p in CORES {
        assert_eq!(
            waitfree_build_batched(&data, p).unwrap().table.to_sorted_vec(),
            reference,
            "p={p}"
        );
    }
}

/// The 128-bit wide build's batched twin must agree with the scalar wide
/// build across the same thread grid, beyond the u64 key space.
#[test]
fn wide_batched_matches_wide_scalar() {
    let n = 80;
    let m = 4_000;
    let mut states = Vec::with_capacity(n * m);
    let mut x = 11u64;
    for _ in 0..(n * m) {
        x = wfbn_concurrent::mix64(x);
        states.push((x & 1) as u16);
    }
    let arities = vec![2u16; n];
    let reference = waitfree_build_wide(&states, &arities, 1)
        .unwrap()
        .to_sorted_vec();
    for p in CORES {
        let batched = waitfree_build_wide_batched(&states, &arities, p).unwrap();
        assert_eq!(batched.to_sorted_vec(), reference, "p={p}");
        assert_eq!(batched.total_count(), m as u64);
    }
}
