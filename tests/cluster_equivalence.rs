//! Cluster-epoch equivalence: a merged cross-shard answer at cluster epoch
//! `e` must be *byte-identical* to an offline single-node build over the
//! same ingest prefix (the first `e` cluster batches) — for every epoch,
//! every shard count, every intra-shard partition count, and with a racing
//! reader pinning epochs mid-publication.
//!
//! This is the cluster tier's version of the paper's determinism claim:
//! shard ownership (the consistent-hash ring) and intra-shard partitioning
//! (`key % P`) decide only *who counts which row*, never the counts
//! themselves. The merged partial marginals are elementwise count sums over
//! `S` disjoint observation sets, so they must reproduce the offline
//! [`waitfree_build`] + [`marginalize`] of the identical prefix exactly —
//! integer counts with no tolerance, MI within 1e-12 (the one float in the
//! pipeline, computed by the same `mutual_information` on both sides).
//!
//! The racing reader is the part a sequential test would miss: it pins
//! whatever cluster epoch is current *while* the router is mid-stream, and
//! every answer it gets must match the offline build of the prefix for the
//! epoch it actually pinned — there is no moment at which a client can
//! observe a cut that mixes two prefixes.

use std::sync::atomic::{AtomicBool, Ordering};
use wfbn_cluster::{Cluster, ClusterConfig};
use wfbn_core::entropy::mutual_information;
use wfbn_core::{marginalize, waitfree_build, MarginalTable};
use wfbn_data::{Dataset, Schema};
use wfbn_serve::EngineConfig;

const VARS: usize = 5;
const ARITY: u16 = 3;
const BATCHES: usize = 8;
const ROWS_PER_BATCH: usize = 24;
/// The scopes every epoch is checked on (strictly increasing, mixed arity).
const SCOPES: [&[usize]; 3] = [&[0], &[1, 3], &[0, 2, 4]];
const MI_PAIR: (usize, usize) = (0, 4);

/// Deterministic row stream (splitmix-style LCG) shared by the cluster
/// ingest and the offline reference builds.
fn rows(seed: u64) -> Vec<Vec<u16>> {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u16
    };
    (0..BATCHES * ROWS_PER_BATCH)
        .map(|_| (0..VARS).map(|_| next() % ARITY).collect())
        .collect()
}

fn counts(m: &MarginalTable) -> Vec<u64> {
    (0..m.num_cells()).map(|i| m.count_at(i)).collect()
}

/// Offline single-node reference for the prefix ending at cluster epoch
/// `e`: a from-scratch wait-free build over the first `e` batches, then
/// plain [`marginalize`] — no engine, no epochs, no sharding.
struct Reference {
    marginals: Vec<Vec<u64>>,
    mi: f64,
}

fn offline_prefixes(schema: &Schema, all_rows: &[Vec<u16>]) -> Vec<Reference> {
    (1..=BATCHES)
        .map(|e| {
            let prefix: Vec<&[u16]> = all_rows[..e * ROWS_PER_BATCH]
                .iter()
                .map(Vec::as_slice)
                .collect();
            let data = Dataset::from_rows(schema.clone(), &prefix).unwrap();
            let built = waitfree_build(&data, 1).unwrap();
            let marginals = SCOPES
                .iter()
                .map(|scope| counts(&marginalize(&built.table, scope, 1).unwrap()))
                .collect();
            let pair = marginalize(&built.table, &[MI_PAIR.0, MI_PAIR.1], 1).unwrap();
            Reference {
                marginals,
                mi: mutual_information(&pair),
            }
        })
        .collect()
}

/// One full S × P cell: every cluster epoch checked synchronously from one
/// client while a second client races the router, re-checking whatever
/// epoch it happens to pin.
fn check_cell(shards: usize, partitions: usize) {
    let schema = Schema::uniform(VARS, ARITY).unwrap();
    let all_rows = rows(0x9e37 + (shards * 16 + partitions) as u64);
    let refs = offline_prefixes(&schema, &all_rows);

    let cfg = ClusterConfig {
        shards,
        clients: 2,
        engine: EngineConfig {
            builder_threads: partitions,
            ..EngineConfig::default()
        },
        ..ClusterConfig::default()
    };
    let (mut cluster, mut clients) = Cluster::start(&schema, &cfg).unwrap();
    let mut racer = clients.pop().unwrap();
    let mut checker = clients.pop().unwrap();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // The racing reader: pin whatever is current, answer, and demand
        // the answer match the offline build of the epoch it pinned.
        let racing = scope.spawn(|| {
            let mut checked = 0usize;
            while !done.load(Ordering::Acquire) {
                for (s, scope_vars) in SCOPES.iter().enumerate() {
                    let Ok((epoch, mut answers)) = racer.answer_batch(&[scope_vars]) else {
                        continue; // nothing published yet
                    };
                    assert!(
                        (1..=BATCHES as u64).contains(&epoch),
                        "pinned impossible cluster epoch {epoch}"
                    );
                    let got = counts(&answers.pop().unwrap());
                    assert_eq!(
                        got,
                        refs[epoch as usize - 1].marginals[s],
                        "racing reader: scope {scope_vars:?} at epoch {epoch} \
                         (S={shards}, P={partitions})"
                    );
                    checked += 1;
                }
                std::thread::yield_now();
            }
            checked
        });

        for e in 1..=BATCHES {
            let batch = &all_rows[(e - 1) * ROWS_PER_BATCH..e * ROWS_PER_BATCH];
            cluster.submit_rows(batch).unwrap();
            let published = cluster.sync().unwrap();
            assert_eq!(published, e as u64, "one cluster epoch per batch");

            for (s, scope_vars) in SCOPES.iter().enumerate() {
                let (epoch, merged) = checker.marginal(scope_vars).unwrap();
                assert_eq!(epoch, e as u64);
                assert_eq!(
                    counts(&merged),
                    refs[e - 1].marginals[s],
                    "scope {scope_vars:?} at epoch {e} (S={shards}, P={partitions})"
                );
            }
            let (_, mi) = checker.mi(MI_PAIR.0, MI_PAIR.1).unwrap();
            assert!(
                (mi - refs[e - 1].mi).abs() < 1e-12,
                "MI at epoch {e}: cluster {mi} vs offline {} (S={shards}, P={partitions})",
                refs[e - 1].mi
            );
        }
        done.store(true, Ordering::Release);
        let checked = racing.join().unwrap();
        // The racer must have participated; everything it checked was
        // asserted inside the thread.
        assert!(checked > 0, "racing reader never pinned an epoch");
    });
    cluster.finish().unwrap();
}

#[test]
fn every_cluster_epoch_matches_the_offline_prefix_build() {
    for shards in [1usize, 2, 4] {
        for partitions in [1usize, 2, 4] {
            check_cell(shards, partitions);
        }
    }
}
