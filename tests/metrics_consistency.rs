//! End-to-end consistency of the observability layer: every counter the
//! instrumented hot paths emit must balance against ground truth the
//! algorithms already guarantee — per-core row counts partition `m`, routed
//! keys are conserved across the stage-2 barrier, single-core runs never
//! touch a queue, and the no-op recorder changes nothing about the output.
//!
//! Built with `--features wfbn-core/metrics`, every `snapshot()` call in
//! here additionally re-validates the same invariants inside the library
//! (and panics on violation), so this suite doubles as the strict-mode CI
//! gate.

use wfbn_core::construct::{
    sequential_build_recorded, waitfree_build, waitfree_build_batched_recorded,
    waitfree_build_recorded,
};
use wfbn_core::marginal::marginalize_recorded;
use wfbn_core::obs::{Counter, Stage, PROBE_BUCKETS};
use wfbn_core::pipeline::{pipelined_build_batched_recorded, pipelined_build_recorded};
use wfbn_core::rebalance::rebalance_recorded;
use wfbn_core::stream::StreamingBuilder;
use wfbn_core::wide::waitfree_build_wide_recorded;
use wfbn_core::{CoreMetrics, MetricsReport, NoopRecorder};
use wfbn_data::{Dataset, Generator, Schema, UniformIndependent, ZipfIndependent};

fn workload(n: usize, m: usize, seed: u64) -> Dataset {
    UniformIndependent::new(Schema::uniform(n, 2).unwrap()).generate(m, seed)
}

/// The conservation laws every build-shaped report must satisfy.
fn assert_build_conservation(report: &MetricsReport, m: u64, label: &str) {
    let rows: u64 = report
        .cores
        .iter()
        .map(|c| c.counter(Counter::RowsEncoded))
        .sum();
    assert_eq!(rows, m, "{label}: per-core row counts must sum to m");
    assert_eq!(
        report.total(Counter::LocalUpdates) + report.total(Counter::Forwarded),
        m,
        "{label}: every encoded key is either applied locally or forwarded"
    );
    assert_eq!(
        report.total(Counter::Forwarded),
        report.total(Counter::Drained),
        "{label}: every forwarded key must be drained exactly once"
    );
    // Each core's own ledger must balance too, not just the totals.
    for (i, core) in report.cores.iter().enumerate() {
        assert_eq!(
            core.counter(Counter::RowsEncoded),
            core.counter(Counter::LocalUpdates) + core.counter(Counter::Forwarded),
            "{label}: core {i} ledger"
        );
    }
    report.validate().expect("report passes its own validator");
}

#[test]
fn waitfree_row_counts_partition_m_at_every_thread_count() {
    let m = 6_000;
    let data = workload(14, m, 11);
    for p in [1usize, 2, 3, 4, 7] {
        let rec = CoreMetrics::new(p);
        let built = waitfree_build_recorded(&data, p, &rec).unwrap();
        assert_eq!(built.table.total_count(), m as u64);
        let report = rec.snapshot();
        assert_eq!(report.cores.len(), p);
        assert_build_conservation(&report, m as u64, &format!("waitfree p={p}"));
    }
}

#[test]
fn routed_plus_local_equals_table_inserts() {
    let m = 5_000;
    let data = workload(12, m, 17);
    let rec = CoreMetrics::new(4);
    let built = waitfree_build_recorded(&data, 4, &rec).unwrap();
    let report = rec.snapshot();
    // local + drained is exactly the number of table increments, which must
    // equal both the total count and the paper's m.
    assert_eq!(
        report.total(Counter::LocalUpdates) + report.total(Counter::Drained),
        built.table.total_count()
    );
    // The probe histogram records one sample per increment.
    assert_eq!(
        report.probe_hist_mass(),
        report.total(Counter::LocalUpdates) + report.total(Counter::Drained)
    );
}

#[test]
fn single_core_runs_never_touch_a_queue() {
    let data = workload(10, 2_000, 5);
    let rec = CoreMetrics::new(1);
    waitfree_build_recorded(&data, 1, &rec).unwrap();
    let report = rec.snapshot();
    assert_eq!(report.total(Counter::Forwarded), 0);
    assert_eq!(report.total(Counter::Drained), 0);
    assert_eq!(report.total(Counter::SegmentsLinked), 0);
    assert_eq!(report.queue_hwm_max(), 0, "P=1 must see an empty queue HWM");
    assert_eq!(report.stage_total_ns(Stage::Barrier), 0);
}

#[test]
fn noop_recorder_build_is_identical_to_the_uninstrumented_path() {
    let data = workload(16, 8_000, 23);
    for p in [1usize, 2, 4] {
        let plain = waitfree_build(&data, p).unwrap();
        let noop = waitfree_build_recorded(&data, p, &NoopRecorder).unwrap();
        let metered = {
            let rec = CoreMetrics::new(p);
            waitfree_build_recorded(&data, p, &rec).unwrap()
        };
        assert_eq!(plain.table.to_sorted_vec(), noop.table.to_sorted_vec());
        assert_eq!(plain.table.to_sorted_vec(), metered.table.to_sorted_vec());
        assert_eq!(plain.stats.total_rows(), noop.stats.total_rows());
        assert_eq!(plain.stats.total_forwarded(), noop.stats.total_forwarded());
    }
}

#[test]
fn sequential_and_pipelined_builders_balance_too() {
    let m = 4_000;
    let data = workload(12, m, 31);
    let rec = CoreMetrics::new(1);
    sequential_build_recorded(&data, &rec).unwrap();
    let report = rec.snapshot();
    assert_build_conservation(&report, m as u64, "sequential");
    assert_eq!(report.total(Counter::LocalUpdates), m as u64);

    for p in [2usize, 4] {
        let rec = CoreMetrics::new(p);
        pipelined_build_recorded(&data, p, &rec).unwrap();
        assert_build_conservation(&rec.snapshot(), m as u64, &format!("pipelined p={p}"));
    }
}

#[test]
fn streaming_batches_accumulate_into_one_balanced_report() {
    let schema = Schema::uniform(12, 2).unwrap();
    let batches: Vec<Dataset> = (0..3)
        .map(|seed| UniformIndependent::new(schema.clone()).generate(1_500, seed))
        .collect();
    let rec = CoreMetrics::new(3);
    let mut builder = StreamingBuilder::new(&schema, 3).unwrap();
    for batch in &batches {
        builder.absorb_recorded(batch, &rec).unwrap();
    }
    assert_eq!(builder.rows_absorbed(), 4_500);
    assert_build_conservation(&rec.snapshot(), 4_500, "streaming");
}

#[test]
fn wide_build_reports_match_the_narrow_invariants() {
    let n = 80;
    let m = 2_000;
    let mut states = Vec::with_capacity(n * m);
    let mut x = 0x5851_f42du64;
    for _ in 0..(n * m) {
        x = wfbn_concurrent::mix64(x);
        states.push((x & 1) as u16);
    }
    let arities = vec![2u16; n];
    for p in [1usize, 4] {
        let rec = CoreMetrics::new(p);
        let table = waitfree_build_wide_recorded(&states, &arities, p, &rec).unwrap();
        assert_eq!(table.total_count(), m as u64);
        assert_build_conservation(&rec.snapshot(), m as u64, &format!("wide p={p}"));
    }
}

#[test]
fn marginalization_scans_every_entry_exactly_once() {
    let data = workload(12, 5_000, 41);
    let table = waitfree_build(&data, 4).unwrap().table;
    let entries = table.num_entries() as u64;
    for threads in [1usize, 2, 4] {
        let rec = CoreMetrics::new(threads.max(1));
        marginalize_recorded(&table, &[0, 5], threads, &rec).unwrap();
        let report = rec.snapshot();
        assert_eq!(
            report.total(Counter::EntriesScanned),
            entries,
            "threads={threads}"
        );
        assert!(report.stage_total_ns(Stage::Marginal) > 0);
    }
}

#[test]
fn rebalance_moves_are_counted_and_disable_the_probe_balance_rule() {
    // Range partitioning of Zipf keys piles everything onto core 0; the
    // rebalance pass must report how many entries it relocated.
    let schema = Schema::uniform(12, 2).unwrap();
    let data = ZipfIndependent::new(schema.clone(), 2.0)
        .unwrap()
        .generate(4_000, 7);
    let part = wfbn_core::partition::KeyPartitioner::range(4, schema.state_space_size());
    let rec = CoreMetrics::new(4);
    let built = wfbn_core::construct::waitfree_build_with_recorded(&data, part, &rec).unwrap();
    let before = built.table.to_sorted_vec();
    let balanced = rebalance_recorded(built.table, &rec);
    assert_eq!(balanced.to_sorted_vec(), before);
    let report = rec.snapshot();
    assert!(
        report.total(Counter::RebalanceMoves) > 0,
        "skewed build must move entries"
    );
    report.validate().expect("still valid with moves recorded");
}

#[test]
fn probe_histogram_buckets_cover_all_mass() {
    let data = workload(16, 10_000, 3);
    let rec = CoreMetrics::new(4);
    waitfree_build_recorded(&data, 4, &rec).unwrap();
    let report = rec.snapshot();
    let hist = report.probe_hist_total();
    assert_eq!(hist.len(), PROBE_BUCKETS);
    assert_eq!(hist.iter().sum::<u64>(), report.probe_hist_mass());
    assert!(hist[0] > 0, "some increments must hit on the first probe");
    // Probes counter dominates the mass: every increment needs ≥ 1 probe.
    assert!(report.total(Counter::Probes) >= report.probe_hist_mass());
}

/// The extra laws the batched (write-combining) paths must satisfy on top
/// of [`assert_build_conservation`].
fn assert_batch_accounting(report: &MetricsReport, label: &str) {
    let forwarded = report.total(Counter::Forwarded);
    let coalesced = report.total(Counter::KeysCoalesced);
    let blocks = report.total(Counter::BlocksFlushed);
    assert!(
        coalesced <= forwarded,
        "{label}: coalesced occurrences are a subset of forwarded ones"
    );
    if forwarded > 0 {
        assert!(
            blocks > 0,
            "{label}: routed keys can only cross inside a flushed block"
        );
        assert!(
            blocks <= forwarded - coalesced,
            "{label}: every flush ships ≥ 1 element ({blocks} blocks, \
             {} elements)",
            forwarded - coalesced
        );
    }
    // Per-core ledgers, not just totals: flushes and coalesces happen on the
    // producing core.
    for (i, core) in report.cores.iter().enumerate() {
        let fwd = core.counter(Counter::Forwarded);
        let coal = core.counter(Counter::KeysCoalesced);
        let blk = core.counter(Counter::BlocksFlushed);
        assert!(coal <= fwd, "{label}: core {i} coalesced ≤ forwarded");
        assert!(
            blk <= fwd.saturating_sub(coal),
            "{label}: core {i} blocks ≤ shipped elements"
        );
    }
    // The probe histogram saw one sample per *table increment*: locals plus
    // drained elements (a coalesced pair is one increment of weight > 1).
    assert_eq!(
        report.probe_hist_mass(),
        report.total(Counter::LocalUpdates) + report.total(Counter::Drained) - coalesced,
        "{label}: probe mass = local + drained − coalesced"
    );
    report.validate().expect("batched report passes the validator");
}

#[test]
fn batched_builders_balance_with_block_accounting() {
    let m = 6_000;
    let data = workload(14, m, 11);
    for p in [2usize, 3, 4, 8] {
        let rec = CoreMetrics::new(p);
        let built = waitfree_build_batched_recorded(&data, p, &rec).unwrap();
        assert_eq!(built.table.total_count(), m as u64);
        let report = rec.snapshot();
        assert_build_conservation(&report, m as u64, &format!("batched waitfree p={p}"));
        assert_batch_accounting(&report, &format!("batched waitfree p={p}"));

        let rec = CoreMetrics::new(p);
        pipelined_build_batched_recorded(&data, p, &rec).unwrap();
        let report = rec.snapshot();
        assert_build_conservation(&report, m as u64, &format!("batched pipelined p={p}"));
        assert_batch_accounting(&report, &format!("batched pipelined p={p}"));
    }
}

#[test]
fn batched_coalescing_on_skew_preserves_count_mass() {
    // Zipf(1.8) over a small state space produces long duplicate runs: the
    // combiner must coalesce aggressively, yet drained *mass* (Σ counts)
    // still equals forwarded occurrences exactly.
    let schema = Schema::new(vec![3, 3, 3, 3]).unwrap();
    let data = ZipfIndependent::new(schema, 1.8).unwrap().generate(8_000, 29);
    let rec = CoreMetrics::new(4);
    let built = waitfree_build_batched_recorded(&data, 4, &rec).unwrap();
    assert_eq!(built.table.total_count(), 8_000);
    let report = rec.snapshot();
    assert!(
        report.total(Counter::KeysCoalesced) > 0,
        "skewed keys must coalesce"
    );
    assert_eq!(
        report.total(Counter::Forwarded),
        report.total(Counter::Drained),
        "coalescing must not create or destroy occurrence mass"
    );
    assert_batch_accounting(&report, "zipf batched");
}

#[test]
fn scalar_paths_report_zero_batch_counters() {
    let data = workload(12, 3_000, 19);
    let rec = CoreMetrics::new(4);
    waitfree_build_recorded(&data, 4, &rec).unwrap();
    let report = rec.snapshot();
    assert_eq!(report.total(Counter::BlocksFlushed), 0);
    assert_eq!(report.total(Counter::KeysCoalesced), 0);
}

#[test]
fn batched_streaming_absorbs_accumulate_into_one_balanced_report() {
    let schema = Schema::uniform(12, 2).unwrap();
    let batches: Vec<Dataset> = (0..3)
        .map(|seed| UniformIndependent::new(schema.clone()).generate(1_500, seed))
        .collect();
    let rec = CoreMetrics::new(3);
    let mut builder = StreamingBuilder::with_capacity_hint(&schema, 3, 4_500).unwrap();
    for batch in &batches {
        builder.absorb_batched_recorded(batch, &rec).unwrap();
    }
    assert_eq!(builder.rows_absorbed(), 4_500);
    let report = rec.snapshot();
    assert_build_conservation(&report, 4_500, "batched streaming");
    assert_batch_accounting(&report, "batched streaming");
}

#[test]
fn merged_reports_add_up() {
    let data = workload(12, 3_000, 13);
    let rec_a = CoreMetrics::new(2);
    let rec_b = CoreMetrics::new(2);
    waitfree_build_recorded(&data, 2, &rec_a).unwrap();
    waitfree_build_recorded(&data, 2, &rec_b).unwrap();
    let a = rec_a.snapshot();
    let mut merged = a.clone();
    merged.merge(&rec_b.snapshot());
    assert_eq!(merged.total(Counter::RowsEncoded), 6_000);
    assert_build_conservation(&merged, 6_000, "merged");
}

// ---------------------------------------------------------------------------
// Satellite 5 — wfbn-metrics-v5 serve laws, driven through a real engine.
// ---------------------------------------------------------------------------

use std::sync::Arc;
use wfbn_obs::{LAT_BUCKETS, LAT_BUCKET_UPPER_NS};
use wfbn_serve::{Engine, EngineConfig};

/// Runs a recorded engine with two readers issuing *different* query
/// counts, so the per-reader laws are tested on asymmetric traffic.
fn serve_replay(queries: [usize; 2]) -> (EngineConfig, MetricsReport) {
    let schema = Schema::uniform(8, 2).unwrap();
    let data = UniformIndependent::new(schema.clone()).generate(2_000, 77);
    let cfg = EngineConfig {
        builder_threads: 2,
        readers: 2,
        ..EngineConfig::default()
    };
    let rec = Arc::new(CoreMetrics::new(cfg.cores()));
    let (mut engine, readers) = Engine::start_recorded(&schema, &cfg, Arc::clone(&rec)).unwrap();
    engine.submit(data).unwrap();
    engine.sync().unwrap();
    std::thread::scope(|scope| {
        for (t, mut reader) in readers.into_iter().enumerate() {
            let budget = queries[t];
            scope.spawn(move || {
                for q in 0..budget {
                    let i = q % 7;
                    let (_, mi) = reader.mi(i, i + 1).unwrap();
                    std::hint::black_box(mi);
                }
            });
        }
    });
    engine.finish().unwrap();
    (cfg, rec.snapshot())
}

#[test]
fn v4_latency_histogram_mass_equals_queries_served_per_core() {
    let (cfg, report) = serve_replay([30, 18]);
    // Law 1 (per-core): each reader's latency-histogram mass is exactly its
    // queries_served — one histogram sample per answered query, recorded on
    // the answering core, never smeared across cores.
    for (i, &expect) in [30u64, 18].iter().enumerate() {
        let core = &report.cores[cfg.reader_core(i)];
        let mass: u64 = core.lat_hist.iter().sum();
        assert_eq!(core.counter(Counter::QueriesServed), expect, "reader {i}");
        assert_eq!(mass, expect, "reader {i}: histogram mass != served");
    }
    // Builder cores serve nothing and record no latency samples.
    for core_id in 0..cfg.builder_threads {
        let core = &report.cores[core_id];
        assert_eq!(core.counter(Counter::QueriesServed), 0);
        assert_eq!(core.lat_hist.iter().sum::<u64>(), 0);
    }
    // Law 2 (global): per-reader counters sum to the global totals.
    assert_eq!(report.total(Counter::QueriesServed), 48);
    assert_eq!(report.lat_hist_total().iter().sum::<u64>(), 48);
    report.validate().expect("v4 laws hold on a real replay");
}

#[test]
fn v4_fairness_helpers_read_the_reader_cores() {
    let (cfg, report) = serve_replay([30, 18]);
    let serving = report.serving_cores();
    assert_eq!(
        serving,
        vec![cfg.reader_core(0), cfg.reader_core(1)],
        "exactly the reader cores served queries"
    );
    assert_eq!(report.served_by(&serving), vec![30, 18]);
    let ratio = report.fairness_ratio(&serving).expect("two serving cores");
    assert!((ratio - 30.0 / 18.0).abs() < 1e-12, "ratio {ratio}");
}

#[test]
fn v4_percentile_estimates_are_bucket_upper_edges_and_ordered() {
    let (_, report) = serve_replay([40, 20]);
    let p50 = report.lat_percentile_le(0.50).expect("mass > 0");
    let p99 = report.lat_percentile_le(0.99).expect("mass > 0");
    let p999 = report.lat_percentile_le(0.999).expect("mass > 0");
    assert!(p50 <= p99 && p99 <= p999, "percentiles must be monotone");
    for p in [p50, p99, p999] {
        assert!(
            LAT_BUCKET_UPPER_NS.contains(&p),
            "estimate {p} must be one of the {LAT_BUCKETS} bucket edges"
        );
    }
}

#[test]
fn v4_json_report_carries_the_new_sections() {
    let (_, report) = serve_replay([12, 8]);
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"wfbn-metrics-v5\""), "{json}");
    for key in [
        "\"latency_percentiles\":",
        "\"fairness\":",
        "\"p50_le_ns\":",
        "\"p99_le_ns\":",
        "\"p999_le_ns\":",
        "\"serving_cores\":",
        "\"served_min\":",
        "\"served_max\":",
        "\"max_min_ratio\":",
    ] {
        assert!(json.contains(key), "missing {key} in: {json}");
    }
}

// ---------------------------------------------------------------------------
// PR 9 — cluster conservation laws, driven through a real sharded cluster.
// ---------------------------------------------------------------------------

use wfbn_cluster::{Cluster, ClusterConfig};

/// A recorded 2-shard cluster: the merged cluster + shard report must obey
/// the cluster laws exactly (router batches fan to a whole multiple of
/// shard sub-batches, cluster epochs never outrun routed batches, every
/// fan-out merges at least one partial per shard), on top of every
/// single-node law already asserted above.
#[test]
fn cluster_counters_obey_the_cluster_conservation_laws() {
    let schema = Schema::uniform(6, 2).unwrap();
    let data = UniformIndependent::new(schema.clone()).generate(600, 21);
    let rows: Vec<Vec<u16>> = data.rows().map(<[u16]>::to_vec).collect();
    let ecfg = EngineConfig {
        builder_threads: 2,
        readers: 1,
        ..EngineConfig::default()
    };
    let ccfg = ClusterConfig {
        shards: 2,
        clients: 2,
        engine: ecfg.clone(),
        ..ClusterConfig::default()
    };
    let cluster_rec = Arc::new(CoreMetrics::new(ccfg.cluster_cores()));
    let shard_recs: Vec<Arc<CoreMetrics>> =
        (0..2).map(|_| Arc::new(CoreMetrics::new(ecfg.cores()))).collect();
    let (mut cluster, mut clients) =
        Cluster::start_recorded(&schema, &ccfg, Arc::clone(&cluster_rec), shard_recs.clone())
            .unwrap();
    for chunk in rows.chunks(150) {
        cluster.submit_rows(chunk).unwrap();
    }
    cluster.sync().unwrap();
    // Asymmetric fan-out traffic, as in the serve replay above.
    for (t, budget) in [(0usize, 9usize), (1, 5)] {
        for q in 0..budget {
            let (_, mi) = clients[t].mi(q % 5, 5).unwrap();
            std::hint::black_box(mi);
        }
    }
    cluster.finish().unwrap();

    let mut merged = cluster_rec.snapshot();
    for shard in &shard_recs {
        merged.merge(&shard.snapshot());
    }
    // The exact ledger before the validator's inequalities: 4 cluster
    // batches each fan to 2 shard sub-batches, 4 cluster epochs, and each
    // client's merges count one partial per shard per fan-out.
    assert_eq!(merged.total(Counter::BatchesRouted), 4);
    assert_eq!(merged.total(Counter::ShardBatchesRouted), 8);
    assert_eq!(merged.total(Counter::ClusterEpochsPublished), 4);
    for (i, served) in [(0usize, 9u64), (1, 5)] {
        let core = &merged.cores[ccfg.client_core(i)];
        assert_eq!(core.counter(Counter::QueriesServed), served, "client {i}");
        assert_eq!(
            core.counter(Counter::PartialMerges),
            2 * core.counter(Counter::QueryFanOuts),
            "client {i}: one partial per shard per fan-out"
        );
    }
    merged.validate().expect("cluster laws hold on the merged report");
}
