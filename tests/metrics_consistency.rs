//! End-to-end consistency of the observability layer: every counter the
//! instrumented hot paths emit must balance against ground truth the
//! algorithms already guarantee — per-core row counts partition `m`, routed
//! keys are conserved across the stage-2 barrier, single-core runs never
//! touch a queue, and the no-op recorder changes nothing about the output.
//!
//! Built with `--features wfbn-core/metrics`, every `snapshot()` call in
//! here additionally re-validates the same invariants inside the library
//! (and panics on violation), so this suite doubles as the strict-mode CI
//! gate.

use wfbn_core::construct::{
    sequential_build_recorded, waitfree_build, waitfree_build_batched_recorded,
    waitfree_build_recorded,
};
use wfbn_core::marginal::marginalize_recorded;
use wfbn_core::obs::{Counter, Stage, PROBE_BUCKETS};
use wfbn_core::pipeline::{pipelined_build_batched_recorded, pipelined_build_recorded};
use wfbn_core::rebalance::rebalance_recorded;
use wfbn_core::stream::StreamingBuilder;
use wfbn_core::wide::waitfree_build_wide_recorded;
use wfbn_core::{CoreMetrics, MetricsReport, NoopRecorder};
use wfbn_data::{Dataset, Generator, Schema, UniformIndependent, ZipfIndependent};

fn workload(n: usize, m: usize, seed: u64) -> Dataset {
    UniformIndependent::new(Schema::uniform(n, 2).unwrap()).generate(m, seed)
}

/// The conservation laws every build-shaped report must satisfy.
fn assert_build_conservation(report: &MetricsReport, m: u64, label: &str) {
    let rows: u64 = report
        .cores
        .iter()
        .map(|c| c.counter(Counter::RowsEncoded))
        .sum();
    assert_eq!(rows, m, "{label}: per-core row counts must sum to m");
    assert_eq!(
        report.total(Counter::LocalUpdates) + report.total(Counter::Forwarded),
        m,
        "{label}: every encoded key is either applied locally or forwarded"
    );
    assert_eq!(
        report.total(Counter::Forwarded),
        report.total(Counter::Drained),
        "{label}: every forwarded key must be drained exactly once"
    );
    // Each core's own ledger must balance too, not just the totals.
    for (i, core) in report.cores.iter().enumerate() {
        assert_eq!(
            core.counter(Counter::RowsEncoded),
            core.counter(Counter::LocalUpdates) + core.counter(Counter::Forwarded),
            "{label}: core {i} ledger"
        );
    }
    report.validate().expect("report passes its own validator");
}

#[test]
fn waitfree_row_counts_partition_m_at_every_thread_count() {
    let m = 6_000;
    let data = workload(14, m, 11);
    for p in [1usize, 2, 3, 4, 7] {
        let rec = CoreMetrics::new(p);
        let built = waitfree_build_recorded(&data, p, &rec).unwrap();
        assert_eq!(built.table.total_count(), m as u64);
        let report = rec.snapshot();
        assert_eq!(report.cores.len(), p);
        assert_build_conservation(&report, m as u64, &format!("waitfree p={p}"));
    }
}

#[test]
fn routed_plus_local_equals_table_inserts() {
    let m = 5_000;
    let data = workload(12, m, 17);
    let rec = CoreMetrics::new(4);
    let built = waitfree_build_recorded(&data, 4, &rec).unwrap();
    let report = rec.snapshot();
    // local + drained is exactly the number of table increments, which must
    // equal both the total count and the paper's m.
    assert_eq!(
        report.total(Counter::LocalUpdates) + report.total(Counter::Drained),
        built.table.total_count()
    );
    // The probe histogram records one sample per increment.
    assert_eq!(
        report.probe_hist_mass(),
        report.total(Counter::LocalUpdates) + report.total(Counter::Drained)
    );
}

#[test]
fn single_core_runs_never_touch_a_queue() {
    let data = workload(10, 2_000, 5);
    let rec = CoreMetrics::new(1);
    waitfree_build_recorded(&data, 1, &rec).unwrap();
    let report = rec.snapshot();
    assert_eq!(report.total(Counter::Forwarded), 0);
    assert_eq!(report.total(Counter::Drained), 0);
    assert_eq!(report.total(Counter::SegmentsLinked), 0);
    assert_eq!(report.queue_hwm_max(), 0, "P=1 must see an empty queue HWM");
    assert_eq!(report.stage_total_ns(Stage::Barrier), 0);
}

#[test]
fn noop_recorder_build_is_identical_to_the_uninstrumented_path() {
    let data = workload(16, 8_000, 23);
    for p in [1usize, 2, 4] {
        let plain = waitfree_build(&data, p).unwrap();
        let noop = waitfree_build_recorded(&data, p, &NoopRecorder).unwrap();
        let metered = {
            let rec = CoreMetrics::new(p);
            waitfree_build_recorded(&data, p, &rec).unwrap()
        };
        assert_eq!(plain.table.to_sorted_vec(), noop.table.to_sorted_vec());
        assert_eq!(plain.table.to_sorted_vec(), metered.table.to_sorted_vec());
        assert_eq!(plain.stats.total_rows(), noop.stats.total_rows());
        assert_eq!(plain.stats.total_forwarded(), noop.stats.total_forwarded());
    }
}

#[test]
fn sequential_and_pipelined_builders_balance_too() {
    let m = 4_000;
    let data = workload(12, m, 31);
    let rec = CoreMetrics::new(1);
    sequential_build_recorded(&data, &rec).unwrap();
    let report = rec.snapshot();
    assert_build_conservation(&report, m as u64, "sequential");
    assert_eq!(report.total(Counter::LocalUpdates), m as u64);

    for p in [2usize, 4] {
        let rec = CoreMetrics::new(p);
        pipelined_build_recorded(&data, p, &rec).unwrap();
        assert_build_conservation(&rec.snapshot(), m as u64, &format!("pipelined p={p}"));
    }
}

#[test]
fn streaming_batches_accumulate_into_one_balanced_report() {
    let schema = Schema::uniform(12, 2).unwrap();
    let batches: Vec<Dataset> = (0..3)
        .map(|seed| UniformIndependent::new(schema.clone()).generate(1_500, seed))
        .collect();
    let rec = CoreMetrics::new(3);
    let mut builder = StreamingBuilder::new(&schema, 3).unwrap();
    for batch in &batches {
        builder.absorb_recorded(batch, &rec).unwrap();
    }
    assert_eq!(builder.rows_absorbed(), 4_500);
    assert_build_conservation(&rec.snapshot(), 4_500, "streaming");
}

#[test]
fn wide_build_reports_match_the_narrow_invariants() {
    let n = 80;
    let m = 2_000;
    let mut states = Vec::with_capacity(n * m);
    let mut x = 0x5851_f42du64;
    for _ in 0..(n * m) {
        x = wfbn_concurrent::mix64(x);
        states.push((x & 1) as u16);
    }
    let arities = vec![2u16; n];
    for p in [1usize, 4] {
        let rec = CoreMetrics::new(p);
        let table = waitfree_build_wide_recorded(&states, &arities, p, &rec).unwrap();
        assert_eq!(table.total_count(), m as u64);
        assert_build_conservation(&rec.snapshot(), m as u64, &format!("wide p={p}"));
    }
}

#[test]
fn marginalization_scans_every_entry_exactly_once() {
    let data = workload(12, 5_000, 41);
    let table = waitfree_build(&data, 4).unwrap().table;
    let entries = table.num_entries() as u64;
    for threads in [1usize, 2, 4] {
        let rec = CoreMetrics::new(threads.max(1));
        marginalize_recorded(&table, &[0, 5], threads, &rec).unwrap();
        let report = rec.snapshot();
        assert_eq!(
            report.total(Counter::EntriesScanned),
            entries,
            "threads={threads}"
        );
        assert!(report.stage_total_ns(Stage::Marginal) > 0);
    }
}

#[test]
fn rebalance_moves_are_counted_and_disable_the_probe_balance_rule() {
    // Range partitioning of Zipf keys piles everything onto core 0; the
    // rebalance pass must report how many entries it relocated.
    let schema = Schema::uniform(12, 2).unwrap();
    let data = ZipfIndependent::new(schema.clone(), 2.0)
        .unwrap()
        .generate(4_000, 7);
    let part = wfbn_core::partition::KeyPartitioner::range(4, schema.state_space_size());
    let rec = CoreMetrics::new(4);
    let built = wfbn_core::construct::waitfree_build_with_recorded(&data, part, &rec).unwrap();
    let before = built.table.to_sorted_vec();
    let balanced = rebalance_recorded(built.table, &rec);
    assert_eq!(balanced.to_sorted_vec(), before);
    let report = rec.snapshot();
    assert!(
        report.total(Counter::RebalanceMoves) > 0,
        "skewed build must move entries"
    );
    report.validate().expect("still valid with moves recorded");
}

#[test]
fn probe_histogram_buckets_cover_all_mass() {
    let data = workload(16, 10_000, 3);
    let rec = CoreMetrics::new(4);
    waitfree_build_recorded(&data, 4, &rec).unwrap();
    let report = rec.snapshot();
    let hist = report.probe_hist_total();
    assert_eq!(hist.len(), PROBE_BUCKETS);
    assert_eq!(hist.iter().sum::<u64>(), report.probe_hist_mass());
    assert!(hist[0] > 0, "some increments must hit on the first probe");
    // Probes counter dominates the mass: every increment needs ≥ 1 probe.
    assert!(report.total(Counter::Probes) >= report.probe_hist_mass());
}

/// The extra laws the batched (write-combining) paths must satisfy on top
/// of [`assert_build_conservation`].
fn assert_batch_accounting(report: &MetricsReport, label: &str) {
    let forwarded = report.total(Counter::Forwarded);
    let coalesced = report.total(Counter::KeysCoalesced);
    let blocks = report.total(Counter::BlocksFlushed);
    assert!(
        coalesced <= forwarded,
        "{label}: coalesced occurrences are a subset of forwarded ones"
    );
    if forwarded > 0 {
        assert!(
            blocks > 0,
            "{label}: routed keys can only cross inside a flushed block"
        );
        assert!(
            blocks <= forwarded - coalesced,
            "{label}: every flush ships ≥ 1 element ({blocks} blocks, \
             {} elements)",
            forwarded - coalesced
        );
    }
    // Per-core ledgers, not just totals: flushes and coalesces happen on the
    // producing core.
    for (i, core) in report.cores.iter().enumerate() {
        let fwd = core.counter(Counter::Forwarded);
        let coal = core.counter(Counter::KeysCoalesced);
        let blk = core.counter(Counter::BlocksFlushed);
        assert!(coal <= fwd, "{label}: core {i} coalesced ≤ forwarded");
        assert!(
            blk <= fwd.saturating_sub(coal),
            "{label}: core {i} blocks ≤ shipped elements"
        );
    }
    // The probe histogram saw one sample per *table increment*: locals plus
    // drained elements (a coalesced pair is one increment of weight > 1).
    assert_eq!(
        report.probe_hist_mass(),
        report.total(Counter::LocalUpdates) + report.total(Counter::Drained) - coalesced,
        "{label}: probe mass = local + drained − coalesced"
    );
    report.validate().expect("batched report passes the validator");
}

#[test]
fn batched_builders_balance_with_block_accounting() {
    let m = 6_000;
    let data = workload(14, m, 11);
    for p in [2usize, 3, 4, 8] {
        let rec = CoreMetrics::new(p);
        let built = waitfree_build_batched_recorded(&data, p, &rec).unwrap();
        assert_eq!(built.table.total_count(), m as u64);
        let report = rec.snapshot();
        assert_build_conservation(&report, m as u64, &format!("batched waitfree p={p}"));
        assert_batch_accounting(&report, &format!("batched waitfree p={p}"));

        let rec = CoreMetrics::new(p);
        pipelined_build_batched_recorded(&data, p, &rec).unwrap();
        let report = rec.snapshot();
        assert_build_conservation(&report, m as u64, &format!("batched pipelined p={p}"));
        assert_batch_accounting(&report, &format!("batched pipelined p={p}"));
    }
}

#[test]
fn batched_coalescing_on_skew_preserves_count_mass() {
    // Zipf(1.8) over a small state space produces long duplicate runs: the
    // combiner must coalesce aggressively, yet drained *mass* (Σ counts)
    // still equals forwarded occurrences exactly.
    let schema = Schema::new(vec![3, 3, 3, 3]).unwrap();
    let data = ZipfIndependent::new(schema, 1.8).unwrap().generate(8_000, 29);
    let rec = CoreMetrics::new(4);
    let built = waitfree_build_batched_recorded(&data, 4, &rec).unwrap();
    assert_eq!(built.table.total_count(), 8_000);
    let report = rec.snapshot();
    assert!(
        report.total(Counter::KeysCoalesced) > 0,
        "skewed keys must coalesce"
    );
    assert_eq!(
        report.total(Counter::Forwarded),
        report.total(Counter::Drained),
        "coalescing must not create or destroy occurrence mass"
    );
    assert_batch_accounting(&report, "zipf batched");
}

#[test]
fn scalar_paths_report_zero_batch_counters() {
    let data = workload(12, 3_000, 19);
    let rec = CoreMetrics::new(4);
    waitfree_build_recorded(&data, 4, &rec).unwrap();
    let report = rec.snapshot();
    assert_eq!(report.total(Counter::BlocksFlushed), 0);
    assert_eq!(report.total(Counter::KeysCoalesced), 0);
}

#[test]
fn batched_streaming_absorbs_accumulate_into_one_balanced_report() {
    let schema = Schema::uniform(12, 2).unwrap();
    let batches: Vec<Dataset> = (0..3)
        .map(|seed| UniformIndependent::new(schema.clone()).generate(1_500, seed))
        .collect();
    let rec = CoreMetrics::new(3);
    let mut builder = StreamingBuilder::with_capacity_hint(&schema, 3, 4_500).unwrap();
    for batch in &batches {
        builder.absorb_batched_recorded(batch, &rec).unwrap();
    }
    assert_eq!(builder.rows_absorbed(), 4_500);
    let report = rec.snapshot();
    assert_build_conservation(&report, 4_500, "batched streaming");
    assert_batch_accounting(&report, "batched streaming");
}

#[test]
fn merged_reports_add_up() {
    let data = workload(12, 3_000, 13);
    let rec_a = CoreMetrics::new(2);
    let rec_b = CoreMetrics::new(2);
    waitfree_build_recorded(&data, 2, &rec_a).unwrap();
    waitfree_build_recorded(&data, 2, &rec_b).unwrap();
    let a = rec_a.snapshot();
    let mut merged = a.clone();
    merged.merge(&rec_b.snapshot());
    assert_eq!(merged.total(Counter::RowsEncoded), 6_000);
    assert_build_conservation(&merged, 6_000, "merged");
}
