//! The PRAM simulator must stay faithful to the real implementations:
//! identical tables, conserved operation counts, and scaling shapes that
//! match both the paper's figures and the real code's structure.

use wfbn_core::allpairs::all_pairs_mi;
use wfbn_core::construct::{sequential_build, waitfree_build};
use wfbn_core::marginal::marginalize;
use wfbn_data::{Dataset, Generator, Schema, UniformIndependent, ZipfIndependent};
use wfbn_pram::sim_locked::DEFAULT_STRIPES;
use wfbn_pram::{
    simulate_all_pairs_mi, simulate_marginalization, simulate_sequential_build,
    simulate_striped_build, simulate_waitfree_build, CostModel,
};

fn uniform(n: usize, m: usize, seed: u64) -> Dataset {
    UniformIndependent::new(Schema::uniform(n, 2).unwrap()).generate(m, seed)
}

#[test]
fn simulated_builds_produce_the_real_tables() {
    let model = CostModel::default();
    for data in [
        uniform(12, 4_000, 1),
        ZipfIndependent::new(Schema::uniform(12, 2).unwrap(), 1.5)
            .unwrap()
            .generate(4_000, 2),
    ] {
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        let (_, seq_table) = simulate_sequential_build(&data, &model);
        assert_eq!(seq_table.to_sorted_vec(), reference);
        for p in [2usize, 4, 16] {
            let (_, table) = simulate_waitfree_build(&data, p, &model);
            assert_eq!(table.to_sorted_vec(), reference, "p={p}");
            // The simulated table must match the real parallel build too.
            let real = waitfree_build(&data, p).unwrap().table;
            assert_eq!(table.to_sorted_vec(), real.to_sorted_vec(), "p={p}");
        }
    }
}

#[test]
fn simulated_marginalization_uses_real_entry_counts() {
    let model = CostModel::default();
    let data = uniform(14, 10_000, 3);
    let (_, table) = simulate_waitfree_build(&data, 4, &model);
    // Cross-check against real marginalization output (correctness) and
    // against entry counts (cost accounting).
    let marg = marginalize(&table, &[0, 7], 4).unwrap();
    assert_eq!(marg.sum(), 10_000);
    let pt = simulate_marginalization(&table, &[0, 7], 4, &model);
    let per_entry = 2.0 * model.decode_var + model.marginal_update + model.row_overhead;
    let expected_busy: f64 = table.num_entries() as f64 * per_entry;
    let busy: f64 = pt.per_core_cycles.iter().sum();
    assert!(
        (busy - expected_busy).abs() < 1e-6,
        "busy {busy} vs expected {expected_busy}"
    );
}

#[test]
fn headline_shapes_match_the_paper() {
    // Paper §V: wait-free hits 23.5× at 32 cores; TBB flattens by 4–16 and
    // degrades past 16; marginalization and all-pairs MI scale.
    let model = CostModel::default();
    let data = uniform(30, 30_000, 7);
    let (base, table) = simulate_sequential_build(&data, &model);

    // Wait-free headline.
    let (wf32, _) = simulate_waitfree_build(&data, 32, &model);
    let wf_speedup = base.elapsed_cycles / wf32.elapsed_cycles;
    assert!(
        (18.0..=30.0).contains(&wf_speedup),
        "wait-free 32-core speedup {wf_speedup} (paper: 23.5)"
    );

    // TBB-analog rollover.
    let tbb = |p: usize| simulate_striped_build(&data, p, DEFAULT_STRIPES, &model).elapsed_cycles;
    let t1 = tbb(1);
    let s16 = t1 / tbb(16);
    let s32 = t1 / tbb(32);
    assert!(s16 > s32, "TBB speedup must degrade 16→32: {s16} vs {s32}");
    assert!(s16 < 10.0, "TBB speedup must be clearly sub-linear: {s16}");

    // Wait-free dominance and widening gap (Fig. 3).
    let mut prev_gap = 1.0;
    for p in [4usize, 16, 32] {
        let (wf, _) = simulate_waitfree_build(&data, p, &model);
        let gap = tbb(p) / wf.elapsed_cycles;
        assert!(gap > prev_gap, "gap must widen at p={p}");
        prev_gap = gap;
    }

    // All-pairs MI scales near-linearly (Fig. 5).
    let ap1 = simulate_all_pairs_mi(&table, 1, &model).elapsed_cycles;
    let ap32 = simulate_all_pairs_mi(&table, 32, &model).elapsed_cycles;
    let ap_speedup = ap1 / ap32;
    assert!(ap_speedup > 20.0, "all-pairs 32-core speedup {ap_speedup}");
}

#[test]
fn simulator_is_deterministic_across_runs() {
    let model = CostModel::default();
    let data = uniform(16, 5_000, 9);
    let (a, _) = simulate_waitfree_build(&data, 8, &model);
    let (b, _) = simulate_waitfree_build(&data, 8, &model);
    assert_eq!(a, b);
    let s1 = simulate_striped_build(&data, 8, DEFAULT_STRIPES, &model);
    let s2 = simulate_striped_build(&data, 8, DEFAULT_STRIPES, &model);
    assert_eq!(s1, s2);
}

#[test]
fn real_all_pairs_on_simulated_table_matches_real_build() {
    // Interchangeability: the simulator's table is a first-class
    // PotentialTable usable by the real primitives.
    let data = uniform(10, 6_000, 4);
    let model = CostModel::default();
    let (_, sim_table) = simulate_waitfree_build(&data, 4, &model);
    let real_table = waitfree_build(&data, 4).unwrap().table;
    let a = all_pairs_mi(&sim_table, 2);
    let b = all_pairs_mi(&real_table, 2);
    assert!(a.max_abs_diff(&b) < 1e-15);
}
