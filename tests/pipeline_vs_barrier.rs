//! The pipelined (barrier-free) builder must be observationally identical
//! to the paper's two-stage builder under every partitioner, workload and
//! thread count — the only difference is the schedule.

use wfbn_core::construct::{waitfree_build, waitfree_build_with};
use wfbn_core::partition::KeyPartitioner;
use wfbn_core::pipeline::{pipelined_build, pipelined_build_with};
use wfbn_data::{CorrelatedChain, Dataset, Generator, Schema, UniformIndependent, ZipfIndependent};

fn workloads() -> Vec<Dataset> {
    let schema = Schema::new(vec![2, 4, 3, 2, 2]).unwrap();
    vec![
        UniformIndependent::new(schema.clone()).generate(6_000, 5),
        ZipfIndependent::new(schema.clone(), 1.8)
            .unwrap()
            .generate(6_000, 6),
        CorrelatedChain::new(schema, 0.9)
            .unwrap()
            .generate(6_000, 7),
    ]
}

#[test]
fn identical_tables_across_partitioners() {
    for data in workloads() {
        let space = data.schema().state_space_size();
        for p in [2usize, 3, 5, 8] {
            for part in [
                KeyPartitioner::modulo(p),
                KeyPartitioner::range(p, space),
                KeyPartitioner::hashed(p),
            ] {
                let a = waitfree_build_with(&data, part).unwrap();
                let b = pipelined_build_with(&data, part).unwrap();
                assert_eq!(
                    a.table.to_sorted_vec(),
                    b.table.to_sorted_vec(),
                    "p={p} partitioner={}",
                    part.name()
                );
            }
        }
    }
}

#[test]
fn identical_stats_conservation_laws() {
    for data in workloads() {
        for p in [2usize, 4] {
            let a = waitfree_build(&data, p).unwrap().stats;
            let b = pipelined_build(&data, p).unwrap().stats;
            // Row assignment is identical (same chunks), so per-thread
            // encode/forward counts must match exactly; only the drain
            // schedule differs.
            for (ta, tb) in a.per_thread.iter().zip(&b.per_thread) {
                assert_eq!(ta.rows_encoded, tb.rows_encoded);
                assert_eq!(ta.local_updates, tb.local_updates);
                assert_eq!(ta.forwarded, tb.forwarded);
                assert_eq!(ta.drained, tb.drained);
            }
        }
    }
}

#[test]
fn stress_many_small_runs_for_schedule_races() {
    // Small inputs + many repetitions maximize schedule diversity around
    // the termination protocol (producer close vs consumer drain).
    let schema = Schema::uniform(6, 2).unwrap();
    for seed in 0..30u64 {
        let data = UniformIndependent::new(schema.clone()).generate(64, seed);
        let reference = waitfree_build(&data, 4).unwrap().table.to_sorted_vec();
        for _ in 0..5 {
            let piped = pipelined_build(&data, 4).unwrap();
            assert_eq!(piped.table.to_sorted_vec(), reference, "seed={seed}");
        }
    }
}

#[test]
fn oversubscription_is_correct() {
    // More threads than hardware (and than rows in some chunks).
    let schema = Schema::uniform(8, 2).unwrap();
    let data = UniformIndependent::new(schema).generate(300, 9);
    let reference = waitfree_build(&data, 1).unwrap().table.to_sorted_vec();
    for p in [16usize, 32] {
        assert_eq!(
            pipelined_build(&data, p).unwrap().table.to_sorted_vec(),
            reference,
            "p={p}"
        );
        assert_eq!(
            waitfree_build(&data, p).unwrap().table.to_sorted_vec(),
            reference,
            "p={p}"
        );
    }
}
