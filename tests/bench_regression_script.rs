//! Satellite 4 — `tools/check_bench_regression.sh` input validation.
//!
//! The pr7 (scenario-matrix) and pr9 (cluster shard-scaling) baseline
//! layouts are parsed with grep/sed/awk, so CI runs them without a JSON
//! parser; the price is that the script must reject malformed inputs
//! *itself*, loudly and before it spends a cargo build. These tests feed
//! broken baselines to each dispatch-table branch and check the contract:
//! parse errors exit non-zero with a "malformed" diagnostic, a missing
//! baseline is a clean skip (exit zero), and both happen fast because no
//! regeneration is attempted.

use std::path::Path;
use std::process::{Command, Output};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/integration sits two levels below the repo root")
}

fn run_checker(baseline: &Path) -> Output {
    Command::new("bash")
        .arg(repo_root().join("tools/check_bench_regression.sh"))
        .arg(baseline)
        .current_dir(repo_root())
        .output()
        .expect("bash is available")
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, contents).expect("writing temp baseline");
    path
}

#[test]
fn pr7_baseline_missing_scenarios_is_rejected_as_malformed() {
    let path = write_temp(
        "wfbn_pr7_no_scenarios.json",
        "{\n  \"schema\": \"wfbn-bench-pr7\",\n  \"workload\": {\"rows\": 2000, \"batches\": 20, \"queries\": 400, \"readers\": 4, \"seed\": 42},\n  \"scenarios\": []\n}\n",
    );
    let out = run_checker(&path);
    assert!(!out.status.success(), "empty scenario list must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed"), "stderr: {stderr}");
}

#[test]
fn pr7_baseline_with_mismatched_series_is_rejected_as_malformed() {
    // Five names but four fingerprints: the per-scenario triple is torn.
    let mut doc = String::from(
        "{\n  \"schema\": \"wfbn-bench-pr7\",\n  \"workload\": {\"rows\": 100, \"batches\": 4, \"queries\": 40, \"readers\": 2, \"seed\": 1},\n  \"scenarios\": [\n",
    );
    for (i, name) in ["uniform", "zipf", "burst", "wide-sparse", "hot-query"]
        .iter()
        .enumerate()
    {
        doc.push_str(&format!("    {{\"name\": \"{name}\""));
        if i != 2 {
            doc.push_str(&format!(", \"fingerprint\": \"{i:016x}\""));
        }
        doc.push_str(&format!(", \"sim_cycles_per_query\": {}.0}},\n", 100 + i));
    }
    doc.push_str("  ]\n}\n");
    let path = write_temp("wfbn_pr7_torn_series.json", &doc);
    let out = run_checker(&path);
    assert!(!out.status.success(), "torn series must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed"), "stderr: {stderr}");
    assert!(
        stderr.contains("names=5 fingerprints=4"),
        "diagnostic should count the torn series: {stderr}"
    );
}

#[test]
fn pr7_baseline_without_workload_params_is_rejected_before_regenerating() {
    let path = write_temp(
        "wfbn_pr7_no_workload.json",
        "{\n  \"schema\": \"wfbn-bench-pr7\",\n  \"scenarios\": [\n    {\"name\": \"uniform\", \"fingerprint\": \"00000000deadbeef\", \"sim_cycles_per_query\": 123.0}\n  ]\n}\n",
    );
    let start = std::time::Instant::now();
    let out = run_checker(&path);
    assert!(!out.status.success(), "missing workload params must fail");
    // The contract that keeps this suite cheap: malformed baselines are
    // rejected by the parse stage, never by a cargo run. A full
    // regeneration takes tens of seconds; the parse stage, milliseconds.
    assert!(
        start.elapsed().as_secs() < 10,
        "malformed baseline should fail fast, took {:?}",
        start.elapsed()
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed"), "stderr: {stderr}");
}

#[test]
fn pr9_baseline_with_torn_shard_series_is_rejected_as_malformed() {
    // Four shard counts but three cycle entries: the series is torn.
    let path = write_temp(
        "wfbn_pr9_torn_series.json",
        "{\n  \"schema\": \"wfbn-bench-pr9\",\n  \"workload\": {\"n\": 20, \"m\": 30000, \"seed\": 42, \"cores_per_shard\": 2},\n  \"shards\": [1,2,4,8],\n  \"sim_cycles_per_query\": [900000.0,460000.0,230000.0],\n  \"acceptance\": {\"cluster_s8_scaling\": 7.5}\n}\n",
    );
    let out = run_checker(&path);
    assert!(!out.status.success(), "torn shard series must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed"), "stderr: {stderr}");
    assert!(
        stderr.contains("shards=4 cycles=3"),
        "diagnostic should count the torn series: {stderr}"
    );
}

#[test]
fn pr9_baseline_without_workload_params_is_rejected_before_regenerating() {
    // No cores_per_shard: the workload cannot be regenerated faithfully, so
    // the parse stage must refuse before any cargo build is spent.
    let path = write_temp(
        "wfbn_pr9_no_workload.json",
        "{\n  \"schema\": \"wfbn-bench-pr9\",\n  \"workload\": {\"n\": 20, \"m\": 30000, \"seed\": 42},\n  \"shards\": [1,2,4,8],\n  \"sim_cycles_per_query\": [900000.0,460000.0,230000.0,120000.0],\n  \"acceptance\": {\"cluster_s8_scaling\": 7.5}\n}\n",
    );
    let start = std::time::Instant::now();
    let out = run_checker(&path);
    assert!(!out.status.success(), "missing cores_per_shard must fail");
    assert!(
        start.elapsed().as_secs() < 10,
        "malformed pr9 baseline should fail fast, took {:?}",
        start.elapsed()
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed"), "stderr: {stderr}");
    assert!(
        stderr.contains("BENCH_PR9_OUT"),
        "diagnostic should name the re-baseline recipe: {stderr}"
    );
}

#[test]
fn pr9_baseline_without_acceptance_value_is_rejected_as_malformed() {
    let path = write_temp(
        "wfbn_pr9_no_acceptance.json",
        "{\n  \"schema\": \"wfbn-bench-pr9\",\n  \"workload\": {\"n\": 20, \"m\": 30000, \"seed\": 42, \"cores_per_shard\": 2},\n  \"shards\": [1,2],\n  \"sim_cycles_per_query\": [900000.0,460000.0]\n}\n",
    );
    let out = run_checker(&path);
    assert!(!out.status.success(), "missing cluster_s8_scaling must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed"), "stderr: {stderr}");
}

#[test]
fn missing_baseline_is_a_clean_skip() {
    let path = std::env::temp_dir().join("wfbn_pr7_does_not_exist.json");
    let _ = std::fs::remove_file(&path);
    let out = run_checker(&path);
    assert!(out.status.success(), "missing baseline must skip, not fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("skipping"), "stdout: {stdout}");
}
