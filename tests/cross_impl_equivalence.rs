//! Cross-implementation equivalence: every table builder in the workspace —
//! sequential, wait-free, pipelined, striped-lock, global-mutex, dense
//! atomic — must produce the identical `(key, count)` multiset on identical
//! input, across workloads and thread counts.

use wfbn_baselines::{all_builders, AtomicArrayBuilder, TableBuilder};
use wfbn_core::allpairs::{all_pairs_mi, all_pairs_mi_fused_recorded, all_pairs_mi_recorded};
use wfbn_core::construct::{sequential_build, sequential_build_recorded, waitfree_build_recorded};
use wfbn_core::CoreMetrics;
use wfbn_data::{CorrelatedChain, Dataset, Generator, Schema, UniformIndependent, ZipfIndependent};

fn workloads() -> Vec<(&'static str, Dataset)> {
    // Keep key spaces ≤ 2^22 so the dense atomic-array builder participates.
    let binary = Schema::uniform(18, 2).unwrap();
    let mixed = Schema::new(vec![2, 3, 4, 2, 3, 4, 2, 3]).unwrap();
    vec![
        (
            "uniform-binary",
            UniformIndependent::new(binary.clone()).generate(8_000, 1),
        ),
        (
            "zipf-skewed",
            ZipfIndependent::new(binary, 2.0)
                .unwrap()
                .generate(8_000, 2),
        ),
        (
            "correlated-mixed-arity",
            CorrelatedChain::new(mixed, 0.85)
                .unwrap()
                .generate(8_000, 3),
        ),
    ]
}

#[test]
fn all_builders_agree_on_all_workloads_and_thread_counts() {
    for (name, data) in workloads() {
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        for builder in all_builders() {
            for threads in [1usize, 2, 3, 4, 7] {
                let out = builder
                    .build(&data, threads)
                    .unwrap_or_else(|e| panic!("{} failed on {name}: {e}", builder.name()));
                assert_eq!(
                    out.to_sorted_vec(),
                    reference,
                    "{} disagrees on {name} with {threads} threads",
                    builder.name()
                );
                assert_eq!(out.total_count() as usize, data.num_samples());
            }
        }
    }
}

#[test]
fn builders_agree_on_single_row_and_single_key_inputs() {
    let schema = Schema::uniform(10, 2).unwrap();
    let one_row = Dataset::from_rows(schema.clone(), &[&[1, 0, 1, 0, 1, 0, 1, 0, 1, 0]]).unwrap();
    let same_rows: Vec<&[u16]> = (0..500)
        .map(|_| &[1u16, 1, 1, 1, 1, 1, 1, 1, 1, 1] as &[u16])
        .collect();
    let one_key = Dataset::from_rows(schema, &same_rows).unwrap();
    for data in [&one_row, &one_key] {
        let reference = sequential_build(data).unwrap().table.to_sorted_vec();
        for builder in all_builders() {
            let out = builder.build(data, 4).expect("small key space");
            assert_eq!(out.to_sorted_vec(), reference, "{}", builder.name());
        }
    }
}

#[test]
fn dense_atomic_counts_match_hash_counts_exactly_under_contention() {
    // Zipf(2.5) concentrates nearly all rows on a handful of keys: maximal
    // fetch_add contention vs maximal hash-bucket contention.
    let schema = Schema::uniform(12, 2).unwrap();
    let data = ZipfIndependent::new(schema, 2.5)
        .unwrap()
        .generate(50_000, 4);
    let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
    let dense = AtomicArrayBuilder::default().build(&data, 8).unwrap();
    assert_eq!(dense.to_sorted_vec(), reference);
}

#[test]
fn instrumented_builders_agree_with_the_uninstrumented_reference() {
    // Recording metrics must never change what gets built: the wait-free,
    // striped, and sequential construction paths produce the identical
    // (key, count) multiset whether they run bare or under `CoreMetrics`.
    for (name, data) in workloads() {
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        let seq_rec = CoreMetrics::new(1);
        let seq = sequential_build_recorded(&data, &seq_rec).unwrap();
        assert_eq!(seq.table.to_sorted_vec(), reference, "sequential on {name}");
        for threads in [1usize, 2, 4, 7] {
            let rec = CoreMetrics::new(threads);
            let wf = waitfree_build_recorded(&data, threads, &rec).unwrap();
            assert_eq!(
                wf.table.to_sorted_vec(),
                reference,
                "instrumented wait-free disagrees on {name} with {threads} threads"
            );
            // The striped baseline has no recorder hooks; pin it against the
            // instrumented build so all three implementations stay in lock
            // step under the same workloads.
            let striped = wfbn_baselines::striped::StripedLockBuilder::default()
                .build(&data, threads)
                .unwrap();
            assert_eq!(
                striped.to_sorted_vec(),
                wf.table.to_sorted_vec(),
                "striped vs instrumented wait-free on {name}"
            );
        }
    }
}

#[test]
fn instrumented_mi_schedules_agree_within_1e_12() {
    let schema = Schema::new(vec![2, 3, 2, 4, 2, 3]).unwrap();
    let data = CorrelatedChain::new(schema, 0.6).unwrap().generate(8_000, 21);
    let table = wfbn_core::construct::waitfree_build(&data, 3).unwrap().table;
    let bare = all_pairs_mi(&table, 1);
    for threads in [1usize, 2, 4] {
        let rec = CoreMetrics::new(threads);
        let pairwise = all_pairs_mi_recorded(&table, threads, &rec);
        let fused = all_pairs_mi_fused_recorded(&table, threads, &rec);
        assert!(
            bare.max_abs_diff(&pairwise) < 1e-12,
            "pair-parallel drifted under CoreMetrics at {threads} threads"
        );
        assert!(
            bare.max_abs_diff(&fused) < 1e-12,
            "fused drifted under CoreMetrics at {threads} threads"
        );
    }
}

#[test]
fn repeated_parallel_builds_are_stable() {
    // Schedule nondeterminism must never leak into results.
    let schema = Schema::new(vec![3, 2, 4, 2]).unwrap();
    let data = CorrelatedChain::new(schema, 0.5)
        .unwrap()
        .generate(5_000, 8);
    let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
    for _ in 0..5 {
        for builder in all_builders() {
            assert_eq!(
                builder.build(&data, 4).unwrap().to_sorted_vec(),
                reference,
                "{}",
                builder.name()
            );
        }
    }
}
