//! Cross-implementation equivalence: every table builder in the workspace —
//! sequential, wait-free, pipelined, striped-lock, global-mutex, dense
//! atomic — must produce the identical `(key, count)` multiset on identical
//! input, across workloads and thread counts.

use wfbn_baselines::{all_builders, AtomicArrayBuilder, TableBuilder};
use wfbn_core::construct::sequential_build;
use wfbn_data::{CorrelatedChain, Dataset, Generator, Schema, UniformIndependent, ZipfIndependent};

fn workloads() -> Vec<(&'static str, Dataset)> {
    // Keep key spaces ≤ 2^22 so the dense atomic-array builder participates.
    let binary = Schema::uniform(18, 2).unwrap();
    let mixed = Schema::new(vec![2, 3, 4, 2, 3, 4, 2, 3]).unwrap();
    vec![
        (
            "uniform-binary",
            UniformIndependent::new(binary.clone()).generate(8_000, 1),
        ),
        (
            "zipf-skewed",
            ZipfIndependent::new(binary, 2.0)
                .unwrap()
                .generate(8_000, 2),
        ),
        (
            "correlated-mixed-arity",
            CorrelatedChain::new(mixed, 0.85)
                .unwrap()
                .generate(8_000, 3),
        ),
    ]
}

#[test]
fn all_builders_agree_on_all_workloads_and_thread_counts() {
    for (name, data) in workloads() {
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        for builder in all_builders() {
            for threads in [1usize, 2, 3, 4, 7] {
                let out = builder
                    .build(&data, threads)
                    .unwrap_or_else(|e| panic!("{} failed on {name}: {e}", builder.name()));
                assert_eq!(
                    out.to_sorted_vec(),
                    reference,
                    "{} disagrees on {name} with {threads} threads",
                    builder.name()
                );
                assert_eq!(out.total_count() as usize, data.num_samples());
            }
        }
    }
}

#[test]
fn builders_agree_on_single_row_and_single_key_inputs() {
    let schema = Schema::uniform(10, 2).unwrap();
    let one_row = Dataset::from_rows(schema.clone(), &[&[1, 0, 1, 0, 1, 0, 1, 0, 1, 0]]).unwrap();
    let same_rows: Vec<&[u16]> = (0..500)
        .map(|_| &[1u16, 1, 1, 1, 1, 1, 1, 1, 1, 1] as &[u16])
        .collect();
    let one_key = Dataset::from_rows(schema, &same_rows).unwrap();
    for data in [&one_row, &one_key] {
        let reference = sequential_build(data).unwrap().table.to_sorted_vec();
        for builder in all_builders() {
            let out = builder.build(data, 4).expect("small key space");
            assert_eq!(out.to_sorted_vec(), reference, "{}", builder.name());
        }
    }
}

#[test]
fn dense_atomic_counts_match_hash_counts_exactly_under_contention() {
    // Zipf(2.5) concentrates nearly all rows on a handful of keys: maximal
    // fetch_add contention vs maximal hash-bucket contention.
    let schema = Schema::uniform(12, 2).unwrap();
    let data = ZipfIndependent::new(schema, 2.5)
        .unwrap()
        .generate(50_000, 4);
    let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
    let dense = AtomicArrayBuilder::default().build(&data, 8).unwrap();
    assert_eq!(dense.to_sorted_vec(), reference);
}

#[test]
fn repeated_parallel_builds_are_stable() {
    // Schedule nondeterminism must never leak into results.
    let schema = Schema::new(vec![3, 2, 4, 2]).unwrap();
    let data = CorrelatedChain::new(schema, 0.5)
        .unwrap()
        .generate(5_000, 8);
    let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
    for _ in 0..5 {
        for builder in all_builders() {
            assert_eq!(
                builder.build(&data, 4).unwrap().to_sorted_vec(),
                reference,
                "{}",
                builder.name()
            );
        }
    }
}
