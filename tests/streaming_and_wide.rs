//! Integration coverage for the two capacity extensions: streaming batch
//! ingestion and 128-bit wide keys, exercised together with the learner and
//! the simulator.

use wfbn_bn::cheng::ChengLearner;
use wfbn_bn::repository;
use wfbn_core::allpairs::all_pairs_mi;
use wfbn_core::construct::waitfree_build;
use wfbn_core::entropy::mutual_information;
use wfbn_core::marginal::marginalize;
use wfbn_core::stream::StreamingBuilder;
use wfbn_core::wide::waitfree_build_wide;
use wfbn_data::{Dataset, Generator, Schema, UniformIndependent};

#[test]
fn streamed_table_feeds_the_learner_identically() {
    // Learn from (a) a one-shot table over all data, (b) a streamed table
    // built from five batches: identical structures.
    let net = repository::sprinkler();
    let batches: Vec<Dataset> = (0..5).map(|i| net.sample(10_000, 100 + i)).collect();
    let mut flat = Vec::new();
    for b in &batches {
        flat.extend_from_slice(b.flat());
    }
    let all = Dataset::from_flat_unchecked(net.schema().clone(), flat);

    let one_shot = waitfree_build(&all, 4).unwrap().table;
    let mut builder = StreamingBuilder::new(net.schema(), 4).unwrap();
    for b in &batches {
        builder.absorb(b).unwrap();
    }
    let streamed = builder.finish().unwrap().table;
    assert_eq!(streamed.to_sorted_vec(), one_shot.to_sorted_vec());

    let learner = ChengLearner::default();
    let a = learner.learn_from_table(&one_shot).unwrap();
    let b = learner.learn_from_table(&streamed).unwrap();
    assert_eq!(a.skeleton.edges(), b.skeleton.edges());
    assert_eq!(a.cpdag, b.cpdag);
}

#[test]
fn incremental_snapshots_sharpen_mi_estimates() {
    // As batches accumulate, the MI estimate for an independent pair must
    // shrink toward zero (plug-in MI bias falls like 1/m).
    let schema = Schema::uniform(6, 2).unwrap();
    let gen = UniformIndependent::new(schema.clone());
    let mut builder = StreamingBuilder::new(&schema, 2).unwrap();
    let mut last_mi = f64::INFINITY;
    for round in 0..4 {
        builder.absorb(&gen.generate(20_000, round)).unwrap();
        let snap = builder.snapshot().unwrap();
        let mi = all_pairs_mi(&snap, 2).get(0, 5);
        // The multiplicative check needs an absolute allowance of the
        // plug-in bias scale (≈ (r−1)²/(2m·ln 2) ≈ 4e-5 at m = 20k): near
        // zero the estimate fluctuates by that much in either direction.
        assert!(
            mi < last_mi * 1.5 + 5e-5,
            "round {round}: MI should not blow up ({last_mi} → {mi})"
        );
        last_mi = mi;
    }
    assert!(
        last_mi < 5e-4,
        "80k samples should pin MI near 0: {last_mi}"
    );
}

#[test]
fn wide_pipeline_agrees_with_narrow_on_overlap_and_scales_beyond_it() {
    // Overlap regime (n = 14): wide MI == narrow MI.
    let schema = Schema::uniform(14, 2).unwrap();
    let data = UniformIndependent::new(schema.clone()).generate(6_000, 9);
    let narrow = waitfree_build(&data, 4).unwrap().table;
    let wide = waitfree_build_wide(data.flat(), schema.arities(), 4).unwrap();
    for (i, j) in [(0usize, 1usize), (3, 10), (7, 13)] {
        let narrow_pair = marginalize(&narrow, &[i, j], 2).unwrap();
        let narrow_mi = mutual_information(&narrow_pair);
        // Wide marginal counts → MI by the same formula.
        let counts = wide.marginal_counts(&[i, j], 2).unwrap();
        let wide_pair = narrow_pair; // same arities/layout: reuse shape
        assert_eq!(
            (0..wide_pair.num_cells())
                .map(|c| wide_pair.count_at(c))
                .collect::<Vec<_>>(),
            counts,
            "pair ({i},{j}) marginals differ"
        );
        assert!(narrow_mi >= 0.0);
    }

    // Beyond-u64 regime: 90 variables, smoke the whole path.
    let n = 90;
    let m = 2_000;
    let mut states = Vec::with_capacity(n * m);
    let mut x = 5u64;
    for _ in 0..(n * m) {
        x = wfbn_concurrent::mix64(x);
        states.push((x & 1) as u16);
    }
    let table = waitfree_build_wide(&states, &vec![2u16; n], 8).unwrap();
    assert_eq!(table.total_count(), m as u64);
    assert_eq!(table.codec().state_space(), 1u128 << 90);
    let marg = table.marginal_counts(&[0, 89], 4).unwrap();
    assert_eq!(marg.iter().sum::<u64>(), m as u64);
}
