//! Figure 3 — scalability of wait-free table construction vs the TBB-like
//! concurrent hash table, as the number of samples `m` varies.
//!
//! Paper setting: n = 30 binary variables; m ∈ {0.1M, 1M, 10M}; cores
//! 1–32; panel (a) running time (log y), panel (b) speedup.
//!
//! Default here is a 10×-scaled-down sweep (simulation executes every table
//! operation, so full paper scale is available via `--paper-scale` when you
//! have the minutes to spend).

use wfbn_bench::args::HarnessArgs;
use wfbn_bench::runner::{
    format_stage_breakdown, metrics_waitfree_report, print_host_banner, sim_striped_series,
    sim_waitfree_batched_series, sim_waitfree_series, uniform_workload, wall_striped_series,
    wall_waitfree_batched_series, wall_waitfree_series,
};
use wfbn_bench::series::{format_markdown_table, write_csvs, Series};

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.paper_scale {
        args.samples = vec![100_000, 1_000_000, 10_000_000];
    }
    let n = args.vars.first().copied().unwrap_or(30);
    println!("# Figure 3 — table construction vs samples (n = {n})");
    print_host_banner(args.mode);

    let mut all: Vec<Series> = Vec::new();
    for &m in &args.samples {
        let label = format!("m={m}");
        let data = uniform_workload(n, m, args.seed);
        if args.mode.sim() {
            all.push(sim_waitfree_series(&data, &args.cores, &label));
            all.push(sim_waitfree_batched_series(&data, &args.cores, &label));
            all.push(sim_striped_series(&data, &args.cores, &label));
        }
        if args.mode.wall() {
            all.push(wall_waitfree_series(&data, &args.cores, &label, 3));
            all.push(wall_waitfree_batched_series(&data, &args.cores, &label, 3));
            all.push(wall_striped_series(&data, &args.cores, &label, 3));
        }
    }
    println!("{}", format_markdown_table(&all));
    summarize(&all);
    if args.metrics {
        let p = *args.cores.iter().max().expect("non-empty cores");
        let m = *args.samples.iter().max().expect("non-empty samples");
        let report = metrics_waitfree_report(&uniform_workload(n, m, args.seed), p);
        println!("## Instrumented build (m = {m}, p = {p})\n");
        println!("{}", format_stage_breakdown(&report));
        println!("{}", report.to_json());
    }
    if let Some(dir) = &args.out_dir {
        write_csvs(dir, &all).expect("writing CSV output");
        println!("CSV series written to {dir}/");
    }
}

fn summarize(all: &[Series]) {
    println!("## Shape checks (paper Fig. 3)\n");
    for s in all {
        let speedups = s.speedups();
        if let (Some(&(pmax, _)), Some(&smax)) = (s.points.last(), speedups.last()) {
            println!("- {}: speedup {smax:.2}× at {pmax} cores", s.label);
        }
    }
    println!();
}
