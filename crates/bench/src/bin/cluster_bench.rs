//! One-shot cluster snapshot: fan-out query throughput versus shard count,
//! in simulated cycles *and* wall time, serialized as a JSON document
//! (`BENCH_pr9.json` in CI).
//!
//! The committed snapshot is the regression baseline for
//! `tools/check_bench_regression.sh` (schema `wfbn-bench-pr9`): simulated
//! cycles are deterministic, so any >10% drift is a real model/algorithm
//! change, and the acceptance value `cluster_s8_scaling` (sim throughput at
//! S=8 relative to S=1) is gated at the 3x floor. Wall numbers are recorded
//! for context but never gated on — they depend on the host.
//!
//! Usage: `cluster_bench [--out FILE] [--samples M] [--vars N] [--seed S]
//! [--shards LIST] [--cores-per-shard P] [--queries Q] [--sim-only]`.

use wfbn_bench::cluster_bench::{sim_cluster_scaling, wall_cluster_qps};
use wfbn_bench::runner::uniform_workload;
use wfbn_pram::CostModel;

struct Config {
    out: Option<String>,
    samples: usize,
    vars: usize,
    seed: u64,
    shards: Vec<usize>,
    cores_per_shard: usize,
    queries: usize,
    sim_only: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            out: None,
            // Big enough that the shard scan dominates the hop + merge
            // overhead (the regime the cluster tier exists for), small
            // enough that the wall pass stays cheap on one host.
            samples: 30_000,
            vars: 20,
            seed: 42,
            shards: vec![1, 2, 4, 8],
            cores_per_shard: 2,
            queries: 64,
            sim_only: false,
        }
    }
}

fn parse_args() -> Config {
    let mut cfg = Config::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--out" => cfg.out = Some(value("--out")),
            "--samples" | "-m" => cfg.samples = value("--samples").parse().expect("usize"),
            "--vars" | "-n" => cfg.vars = value("--vars").parse().expect("usize"),
            "--seed" => cfg.seed = value("--seed").parse().expect("u64"),
            "--queries" => cfg.queries = value("--queries").parse().expect("usize"),
            "--cores-per-shard" => {
                cfg.cores_per_shard = value("--cores-per-shard").parse().expect("usize");
            }
            "--shards" | "-s" => {
                cfg.shards = value("--shards")
                    .split(',')
                    .map(|s| s.trim().parse().expect("usize"))
                    .collect();
            }
            "--sim-only" => cfg.sim_only = true,
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn json_f64_array(values: &[f64]) -> String {
    let parts: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    format!("[{}]", parts.join(","))
}

fn json_usize_array(values: &[usize]) -> String {
    let parts: Vec<String> = values.iter().map(usize::to_string).collect();
    format!("[{}]", parts.join(","))
}

fn main() {
    let cfg = parse_args();
    let model = CostModel::default();
    let data = uniform_workload(cfg.vars, cfg.samples, cfg.seed);

    let sim = sim_cluster_scaling(&data, &cfg.shards, cfg.cores_per_shard, &model);
    let wall_qps = if cfg.sim_only {
        vec![0.0; cfg.shards.len()]
    } else {
        wall_cluster_qps(&data, &cfg.shards, cfg.queries)
    };

    let s8 = cfg
        .shards
        .iter()
        .position(|&s| s == 8)
        .map(|i| sim.scaling[i])
        .unwrap_or(0.0);

    let json = format!(
        "{{\n  \"schema\": \"wfbn-bench-pr9\",\n  \"workload\": {{\"n\": {n}, \"m\": {m}, \"seed\": {seed}, \"cores_per_shard\": {cps}}},\n  \"shards\": {shards},\n  \"sim_cycles_per_query\": {cycles},\n  \"sim_scaling\": {scaling},\n  \"wall_qps\": {wall},\n  \"acceptance\": {{\n    \"cluster_s8_scaling\": {s8:.3}\n  }}\n}}",
        n = cfg.vars,
        m = cfg.samples,
        seed = cfg.seed,
        cps = cfg.cores_per_shard,
        shards = json_usize_array(&cfg.shards),
        cycles = json_f64_array(&sim.cycles_per_query),
        scaling = json_f64_array(&sim.scaling),
        wall = json_f64_array(&wall_qps),
    );

    if s8 < 3.0 {
        eprintln!("cluster_bench: FAIL cluster_s8_scaling {s8:.3} < 3.0");
        if cfg.out.is_none() {
            println!("{json}");
        }
        std::process::exit(1);
    }

    match &cfg.out {
        Some(path) => {
            std::fs::write(path, format!("{json}\n")).expect("writing snapshot");
            eprintln!("snapshot written to {path}");
            eprintln!("acceptance: cluster S=8 scaling {s8:.3}x (gate >= 3.0)");
        }
        None => println!("{json}"),
    }
}
