//! Figure 4 — scalability of wait-free table construction vs the TBB-like
//! concurrent hash table, as the number of random variables `n` varies.
//!
//! Paper setting: m = 10M samples; n ∈ {30, 40, 50}; cores 1–32. The paper
//! observes running time linear in n (equal gaps between curves) and a
//! wait-free-vs-TBB gap that widens with cores.

use wfbn_bench::args::HarnessArgs;
use wfbn_bench::runner::{
    format_stage_breakdown, metrics_waitfree_report, print_host_banner, sim_striped_series,
    sim_waitfree_batched_series, sim_waitfree_series, uniform_workload, wall_striped_series,
    wall_waitfree_batched_series, wall_waitfree_series,
};
use wfbn_bench::series::{format_markdown_table, write_csvs, Series};

fn main() {
    let mut args = HarnessArgs::from_env();
    // Figure-4 defaults: sweep n, fixed m.
    if args.vars.is_empty() {
        args.vars = vec![30, 40, 50];
    }
    let m = if args.paper_scale {
        10_000_000
    } else {
        args.samples.iter().copied().min().unwrap_or(100_000)
    };
    println!("# Figure 4 — table construction vs variables (m = {m})");
    print_host_banner(args.mode);

    let mut all: Vec<Series> = Vec::new();
    for &n in &args.vars {
        let label = format!("n={n}");
        let data = uniform_workload(n, m, args.seed);
        if args.mode.sim() {
            all.push(sim_waitfree_series(&data, &args.cores, &label));
            all.push(sim_waitfree_batched_series(&data, &args.cores, &label));
            all.push(sim_striped_series(&data, &args.cores, &label));
        }
        if args.mode.wall() {
            all.push(wall_waitfree_series(&data, &args.cores, &label, 3));
            all.push(wall_waitfree_batched_series(&data, &args.cores, &label, 3));
            all.push(wall_striped_series(&data, &args.cores, &label, 3));
        }
    }
    println!("{}", format_markdown_table(&all));

    println!("## Shape checks (paper Fig. 4)\n");
    for s in &all {
        if let Some(&last) = s.speedups().last() {
            println!("- {}: final speedup {last:.2}×", s.label);
        }
    }
    if args.metrics {
        let p = *args.cores.iter().max().expect("non-empty cores");
        let n = *args.vars.iter().max().expect("non-empty vars");
        let report = metrics_waitfree_report(&uniform_workload(n, m, args.seed), p);
        println!("## Instrumented build (n = {n}, p = {p})\n");
        println!("{}", format_stage_breakdown(&report));
        println!("{}", report.to_json());
    }
    if let Some(dir) = &args.out_dir {
        write_csvs(dir, &all).expect("writing CSV output");
        println!("\nCSV series written to {dir}/");
    }
}
