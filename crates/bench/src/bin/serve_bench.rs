//! Serving throughput — queries per unit time versus the number of reader
//! endpoints on a live `wfbn-serve` engine.
//!
//! The sim series is the gated one: it models each pair-marginal query as a
//! single partition scan and scales linearly with readers (the read path
//! shares no mutable state). The wall series runs real reader threads and is
//! recorded for context only — on a single-core host it flattens.

use wfbn_bench::args::HarnessArgs;
use wfbn_bench::runner::print_host_banner;
use wfbn_bench::serve_bench::{serve_workload, sim_serve_scaling, wall_serve_qps};
use wfbn_pram::CostModel;

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.vars.is_empty() {
        args.vars = vec![12];
    }
    let n = *args.vars.iter().max().expect("non-empty vars");
    let m = args.samples.iter().copied().min().unwrap_or(100_000);
    let readers = args.cores.clone();
    println!("# Serving throughput vs readers (n = {n}, m = {m})");
    print_host_banner(args.mode);

    let data = serve_workload(n, m, args.seed);
    if args.mode.sim() {
        let sim = sim_serve_scaling(&data, &readers, &CostModel::default());
        println!("\n## sim (deterministic capacity model)\n");
        println!("cycles/query: {:.1}", sim.cycles_per_query);
        println!("| readers | qps/Mcycle | scaling |");
        println!("|--------:|-----------:|--------:|");
        for (i, &r) in readers.iter().enumerate() {
            println!(
                "| {r} | {:.2} | {:.2} |",
                sim.qps_per_megacycle[i], sim.scaling[i]
            );
        }
    }
    if args.mode.wall() {
        let qps = wall_serve_qps(&data, &readers, 200);
        println!("\n## wall (host-dependent, not gated)\n");
        println!("| readers | queries/s |");
        println!("|--------:|----------:|");
        for (i, &r) in readers.iter().enumerate() {
            println!("| {r} | {:.0} |", qps[i]);
        }
    }
}
