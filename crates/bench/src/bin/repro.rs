//! One-shot reproduction driver: regenerates every figure of the paper
//! (simulated mode), checks the headline claims programmatically, and
//! writes the series to `results/` as CSV.
//!
//! ```text
//! cargo run -p wfbn-bench --release --bin repro
//! cargo run -p wfbn-bench --release --bin repro -- --mode both   # add wall-clock
//! ```

use wfbn_bench::args::HarnessArgs;
use wfbn_bench::runner::{
    format_stage_breakdown, metrics_allpairs_report, print_host_banner, sim_allpairs_series,
    sim_striped_series, sim_waitfree_series, uniform_workload, wall_allpairs_series,
    wall_striped_series, wall_waitfree_series,
};
use wfbn_bench::series::{format_markdown_table, write_csvs, Series};
use wfbn_core::obs::{Counter, Stage};

struct Check {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.out_dir.is_none() {
        args.out_dir = Some("results".to_string());
    }
    let out_dir = args.out_dir.clone().expect("set above");
    let mut checks: Vec<Check> = Vec::new();
    let mut everything: Vec<Series> = Vec::new();

    println!("# wfbn reproduction run\n");
    print_host_banner(args.mode);

    // ---------- Figure 3: construction vs m (n = 30). ----------
    let fig3_samples: Vec<usize> = if args.paper_scale {
        vec![100_000, 1_000_000, 10_000_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    };
    println!("## Figure 3 — construction vs samples (n = 30)\n");
    let mut fig3: Vec<Series> = Vec::new();
    for &m in &fig3_samples {
        let data = uniform_workload(30, m, args.seed);
        let label = format!("m={m}");
        if args.mode.sim() {
            fig3.push(sim_waitfree_series(&data, &args.cores, &label));
            fig3.push(sim_striped_series(&data, &args.cores, &label));
        }
        if args.mode.wall() {
            fig3.push(wall_waitfree_series(&data, &args.cores, &label, 3));
            fig3.push(wall_striped_series(&data, &args.cores, &label, 3));
        }
    }
    println!("{}", format_markdown_table(&fig3));

    // Shape checks on the simulated series.
    if args.mode.sim() {
        let wf_last = fig3
            .iter()
            .rfind(|s| s.label.contains("wait-free (sim)"))
            .expect("sim series exist");
        let tbb_last = fig3
            .iter()
            .rfind(|s| s.label.contains("TBB-analog (sim)"))
            .expect("sim series exist");
        let wf_speedup = *wf_last.speedups().last().expect("points");
        let tbb_speedups = tbb_last.speedups();
        let tbb_peak = tbb_speedups.iter().cloned().fold(0.0, f64::max);
        let tbb_final = *tbb_speedups.last().expect("points");
        let max_cores = *args.cores.last().expect("cores") as f64;
        checks.push(Check {
            name: "Fig3/headline: wait-free speedup near-linear (paper: 23.5× at 32)",
            pass: wf_speedup > 0.5 * max_cores,
            detail: format!("{wf_speedup:.1}× at {max_cores} cores"),
        });
        checks.push(Check {
            name: "Fig3b: TBB-analog speedup degrades past its peak",
            pass: tbb_final < tbb_peak,
            detail: format!("peak {tbb_peak:.1}×, final {tbb_final:.1}×"),
        });
        checks.push(Check {
            name: "Fig3: wait-free beats TBB-analog at max cores",
            pass: wf_speedup > tbb_final,
            detail: format!("{wf_speedup:.1}× vs {tbb_final:.1}×"),
        });
        // Linear-in-m: time(largest m) / time(smallest m) ≈ m-ratio at
        // fixed cores.
        let sim_time_for = |m: usize| {
            fig3.iter()
                .find(|s| s.label == format!("m={m} wait-free (sim)"))
                .expect("sim series exists")
                .points[0]
                .1
        };
        let t_small = sim_time_for(fig3_samples[0]);
        let t_big = sim_time_for(*fig3_samples.last().expect("non-empty"));
        let ratio = t_big / t_small;
        let expected = fig3_samples[fig3_samples.len() - 1] as f64 / fig3_samples[0] as f64;
        checks.push(Check {
            name: "Fig3a: running time linear in m (equal log-gaps)",
            pass: (0.5 * expected..=1.5 * expected).contains(&ratio),
            detail: format!("time ratio {ratio:.1} for m ratio {expected:.0}"),
        });
    }
    everything.extend(fig3);

    // ---------- Figure 4: construction vs n (fixed m). ----------
    let fig4_m = if args.paper_scale {
        10_000_000
    } else {
        200_000
    };
    println!("## Figure 4 — construction vs variables (m = {fig4_m})\n");
    let mut fig4: Vec<Series> = Vec::new();
    for &n in &[30usize, 40, 50] {
        let data = uniform_workload(n, fig4_m, args.seed);
        let label = format!("n={n}");
        if args.mode.sim() {
            fig4.push(sim_waitfree_series(&data, &args.cores, &label));
            fig4.push(sim_striped_series(&data, &args.cores, &label));
        }
        if args.mode.wall() {
            fig4.push(wall_waitfree_series(&data, &args.cores, &label, 3));
            fig4.push(wall_striped_series(&data, &args.cores, &label, 3));
        }
    }
    println!("{}", format_markdown_table(&fig4));
    if args.mode.sim() {
        // Linear-in-n: single-core times for n = 30/40/50 should be evenly
        // spaced (equal gaps — the paper's stated observation).
        let t: Vec<f64> = fig4
            .iter()
            .filter(|s| s.label.contains("wait-free (sim)"))
            .map(|s| s.points[0].1)
            .collect();
        let gap1 = t[1] - t[0];
        let gap2 = t[2] - t[1];
        checks.push(Check {
            name: "Fig4a: running time linear in n (equal gaps 30→40→50)",
            pass: gap1 > 0.0 && (gap2 / gap1) > 0.7 && (gap2 / gap1) < 1.3,
            detail: format!("gaps {gap1:.2e}s vs {gap2:.2e}s"),
        });
    }
    everything.extend(fig4);

    // ---------- Figure 5: all-pairs MI vs n. ----------
    let fig5_m = if args.paper_scale {
        10_000_000
    } else {
        100_000
    };
    println!("## Figure 5 — all-pairs mutual information (m = {fig5_m})\n");
    let mut fig5: Vec<Series> = Vec::new();
    for &n in &[30usize, 40, 50] {
        let data = uniform_workload(n, fig5_m, args.seed);
        let label = format!("n={n}");
        if args.mode.sim() {
            fig5.push(sim_allpairs_series(&data, &args.cores, &label));
        }
        if args.mode.wall() {
            fig5.push(wall_allpairs_series(&data, &args.cores, &label, 3));
        }
    }
    println!("{}", format_markdown_table(&fig5));
    if args.mode.sim() {
        for s in fig5.iter().filter(|s| s.label.contains("(sim)")) {
            let speedups = s.speedups();
            let monotone = speedups.windows(2).all(|w| w[1] > w[0]);
            checks.push(Check {
                name: "Fig5b: all-pairs MI speedup grows with cores",
                pass: monotone,
                detail: format!("{}: {:?}", s.label, round_all(&speedups)),
            });
        }
    }
    everything.extend(fig5);

    // ---------- Instrumented pass (--metrics). ----------
    if args.metrics {
        let metrics_m = 100_000;
        let metrics_n = 30;
        let p = *args.cores.iter().max().expect("cores");
        println!("## Instrumented pass — build + all-pairs MI (n = {metrics_n}, m = {metrics_m}, p = {p})\n");
        let data = uniform_workload(metrics_n, metrics_m, args.seed);
        let report = metrics_allpairs_report(&data, p);
        println!("{}", format_stage_breakdown(&report));
        println!("{}", report.to_json());

        // Conservation checks on the emitted telemetry.
        let per_core_rows: Vec<u64> = report
            .cores
            .iter()
            .map(|c| c.counter(Counter::RowsEncoded))
            .collect();
        let rows: u64 = per_core_rows.iter().sum();
        checks.push(Check {
            name: "Metrics: per-core row counts sum to m",
            pass: rows == metrics_m as u64,
            detail: format!("{per_core_rows:?} sums to {rows} (m = {metrics_m})"),
        });
        checks.push(Check {
            name: "Metrics: routed keys conserved (local + forwarded = m, forwarded = drained)",
            pass: report.total(Counter::LocalUpdates) + report.total(Counter::Forwarded)
                == metrics_m as u64
                && report.total(Counter::Forwarded) == report.total(Counter::Drained),
            detail: format!(
                "{} local + {} forwarded, {} drained",
                report.total(Counter::LocalUpdates),
                report.total(Counter::Forwarded),
                report.total(Counter::Drained)
            ),
        });
        checks.push(Check {
            name: "Metrics: every stage observed wall time",
            pass: Stage::ALL
                .iter()
                .all(|&s| s == Stage::Barrier || report.stage_total_ns(s) > 0),
            detail: Stage::ALL
                .map(|s| format!("{}={}ns", s.name(), report.stage_total_ns(s)))
                .join(" "),
        });
        let json_path = format!("{out_dir}/metrics.json");
        std::fs::create_dir_all(&out_dir).expect("creating results dir");
        std::fs::write(&json_path, report.to_json()).expect("writing metrics.json");
        println!("metrics report written to {json_path}\n");
    }

    // ---------- Verdicts. ----------
    println!("## Reproduction checks\n");
    let mut failed = 0;
    for c in &checks {
        let mark = if c.pass { "PASS" } else { "FAIL" };
        if !c.pass {
            failed += 1;
        }
        println!("- [{mark}] {} — {}", c.name, c.detail);
    }
    println!();
    write_csvs(&out_dir, &everything).expect("writing CSV output");
    println!(
        "CSV series written to {out_dir}/ ({} files)",
        everything.len()
    );
    if failed > 0 {
        eprintln!("{failed} reproduction check(s) FAILED");
        std::process::exit(1);
    }
}

fn round_all(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 100.0).round() / 100.0).collect()
}
