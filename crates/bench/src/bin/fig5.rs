//! Figure 5 — scalability of all-pairs mutual information (the drafting
//! phase's statistics test) with the number of variables and cores.
//!
//! Paper setting: m = 10M samples; n ∈ {30, 40, 50}; cores 1–32; the
//! marginalization primitive computes the pairwise joint once per pair and
//! derives both singleton marginals from it.

use wfbn_bench::args::HarnessArgs;
use wfbn_bench::runner::{
    format_stage_breakdown, metrics_allpairs_report, print_host_banner, sim_allpairs_series,
    uniform_workload, wall_allpairs_series,
};
use wfbn_bench::series::{format_markdown_table, write_csvs, Series};

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.vars.is_empty() {
        args.vars = vec![30, 40, 50];
    }
    let m = if args.paper_scale {
        10_000_000
    } else {
        args.samples.iter().copied().min().unwrap_or(100_000)
    };
    println!("# Figure 5 — all-pairs mutual information vs variables (m = {m})");
    print_host_banner(args.mode);

    let mut all: Vec<Series> = Vec::new();
    for &n in &args.vars {
        let label = format!("n={n}");
        let data = uniform_workload(n, m, args.seed);
        if args.mode.sim() {
            all.push(sim_allpairs_series(&data, &args.cores, &label));
        }
        if args.mode.wall() {
            all.push(wall_allpairs_series(&data, &args.cores, &label, 3));
        }
    }
    println!("{}", format_markdown_table(&all));

    println!("## Shape checks (paper Fig. 5)\n");
    for s in &all {
        if let Some(&last) = s.speedups().last() {
            println!(
                "- {}: final speedup {last:.2}× (paper: near-linear decrease in runtime)",
                s.label
            );
        }
    }
    if args.metrics {
        let p = *args.cores.iter().max().expect("non-empty cores");
        let n = *args.vars.iter().max().expect("non-empty vars");
        let report = metrics_allpairs_report(&uniform_workload(n, m, args.seed), p);
        println!("\n## Instrumented build + all-pairs MI (n = {n}, p = {p})\n");
        println!("{}", format_stage_breakdown(&report));
        println!("{}", report.to_json());
    }
    if let Some(dir) = &args.out_dir {
        write_csvs(dir, &all).expect("writing CSV output");
        println!("\nCSV series written to {dir}/");
    }
}
