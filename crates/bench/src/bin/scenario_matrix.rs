//! The PR 7 workload scenario matrix: every `wfbn-workload` scenario
//! replayed against a live engine, with the latency/fairness SLO gates
//! enforced and a deterministic regression snapshot emitted
//! (`BENCH_pr7.json` in CI).
//!
//! Two measurement planes per scenario, mirroring the rest of the harness:
//!
//! * **deterministic** — the workload *fingerprint* (FNV-1a over the exact
//!   row/query bytes a deployment replays) and the simulated
//!   cycles-per-query of the scenario's table under the capacity model.
//!   Both are pure functions of the spec, so
//!   `tools/check_bench_regression.sh` pins them exactly (fingerprint) and
//!   within 10% (cycles).
//! * **wall** — real replay through reader threads racing the writer:
//!   nearest-rank p50/p99/p999 per-query latency, per-reader served
//!   counts, and the two SLO gates. Wall numbers are context, but the
//!   *gates* are hard: any failure exits non-zero.
//!
//! `--sim-only` skips the replay (and the gates) — that is the mode the
//! regression checker regenerates under, so its verdicts never depend on
//! host scheduling. `--negative-control` replays the seeded
//! `starve-reader` scenario instead and exits zero only if the fairness
//! gate *fires* — CI's proof that the gate can fail.
//!
//! Usage: `scenario_matrix [--out FILE] [--rows R] [--batches B]
//! [--queries Q] [--readers N] [--threads P] [--seed S] [--sim-only]
//! [--negative-control]`.

use wfbn_data::Dataset;
use wfbn_pram::{simulate_all_pairs_mi, simulate_waitfree_build_batched, CostModel};
use wfbn_workload::{
    check_fairness, check_skew_p99, generate, replay, GeneratedWorkload, IngestEvent,
    ReplayConfig, Scenario, ScenarioReport, WorkloadSpec, FAIRNESS_BOUND, SKEW_P99_MULTIPLE,
};

struct Config {
    out: Option<String>,
    rows: usize,
    batches: usize,
    queries: usize,
    readers: usize,
    threads: usize,
    seed: u64,
    sim_only: bool,
    negative_control: bool,
}

impl Default for Config {
    fn default() -> Self {
        let spec = WorkloadSpec::matrix_default(Scenario::Uniform);
        Self {
            out: None,
            rows: spec.rows,
            batches: spec.batches,
            queries: spec.queries,
            readers: spec.readers,
            threads: 2,
            seed: spec.seed,
            sim_only: false,
            negative_control: false,
        }
    }
}

fn parse_args() -> Config {
    let mut cfg = Config::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--out" => cfg.out = Some(value("--out")),
            "--rows" => cfg.rows = value("--rows").parse().expect("usize"),
            "--batches" => cfg.batches = value("--batches").parse().expect("usize"),
            "--queries" => cfg.queries = value("--queries").parse().expect("usize"),
            "--readers" => cfg.readers = value("--readers").parse().expect("usize"),
            "--threads" | "-p" => cfg.threads = value("--threads").parse().expect("usize"),
            "--seed" => cfg.seed = value("--seed").parse().expect("u64"),
            "--sim-only" => cfg.sim_only = true,
            "--negative-control" => cfg.negative_control = true,
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn spec_for(cfg: &Config, scenario: Scenario) -> WorkloadSpec {
    WorkloadSpec {
        scenario,
        rows: cfg.rows,
        batches: cfg.batches,
        queries: cfg.queries,
        readers: cfg.readers,
        seed: cfg.seed,
    }
}

/// Deterministic modeled cost of one query on this scenario's table: the
/// single-core all-pairs sweep divided by the pairs it answers — the same
/// capacity model `serve_bench` gates on, applied to the scenario's own
/// (skewed, sparse, or wide) data.
fn sim_cycles_per_query(workload: &GeneratedWorkload) -> f64 {
    let rows: Vec<&[u16]> = workload
        .ingest
        .iter()
        .filter_map(|e| match e {
            IngestEvent::Batch(rows) => Some(rows.iter().map(Vec::as_slice)),
            IngestEvent::Idle(_) => None,
        })
        .flatten()
        .collect();
    let data =
        Dataset::from_rows(workload.schema.clone(), &rows).expect("scenario rows fit the schema");
    let model = CostModel::default();
    let (_, table) = simulate_waitfree_build_batched(&data, 1, &model);
    let n = workload.schema.num_vars();
    let pairs = (n * (n - 1) / 2) as f64;
    simulate_all_pairs_mi(&table, 1, &model).elapsed_cycles / pairs
}

struct ScenarioRow {
    name: &'static str,
    fingerprint: u64,
    sim_cycles_per_query: f64,
    replay: Option<ScenarioReport>,
    fairness_verdict: Option<Result<f64, String>>,
    skew_verdict: Option<Result<(), String>>,
}

fn json_u64_array(values: &[u64]) -> String {
    let parts: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", parts.join(","))
}

fn json_gate(result: Option<&Result<f64, String>>) -> String {
    match result {
        None => "\"skipped\"".to_string(),
        Some(Ok(_)) => "\"pass\"".to_string(),
        Some(Err(msg)) => format!("{:?}", msg),
    }
}

fn json_skew_gate(result: Option<&Result<(), String>>) -> String {
    match result {
        None => "\"skipped\"".to_string(),
        Some(Ok(())) => "\"pass\"".to_string(),
        Some(Err(msg)) => format!("{:?}", msg),
    }
}

fn render(cfg: &Config, rows: &[ScenarioRow], all_pass: bool) -> String {
    let scenarios: Vec<String> = rows
        .iter()
        .map(|row| {
            let (p50, p99, p999, ratio, served, refused, epochs) = match &row.replay {
                Some(r) => (
                    r.p50_ns.to_string(),
                    r.p99_ns.to_string(),
                    r.p999_ns.to_string(),
                    if r.fairness_ratio().is_finite() {
                        format!("{:.3}", r.fairness_ratio())
                    } else {
                        "\"inf\"".to_string()
                    },
                    json_u64_array(&r.served_per_reader),
                    r.refused.to_string(),
                    r.epochs_published.to_string(),
                ),
                None => (
                    "null".into(),
                    "null".into(),
                    "null".into(),
                    "null".into(),
                    "null".into(),
                    "null".into(),
                    "null".into(),
                ),
            };
            format!(
                "    {{\n      \"name\": \"{name}\",\n      \"fingerprint\": \"{fp:016x}\",\n      \"sim_cycles_per_query\": {cyc:.3},\n      \"wall_p50_ns\": {p50},\n      \"wall_p99_ns\": {p99},\n      \"wall_p999_ns\": {p999},\n      \"served_per_reader\": {served},\n      \"fairness_ratio\": {ratio},\n      \"refused\": {refused},\n      \"epochs_published\": {epochs},\n      \"gates\": {{\"fairness\": {gf}, \"skew_p99\": {gs}}}\n    }}",
                name = row.name,
                fp = row.fingerprint,
                cyc = row.sim_cycles_per_query,
                gf = json_gate(row.fairness_verdict.as_ref()),
                gs = json_skew_gate(row.skew_verdict.as_ref()),
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"wfbn-bench-pr7\",\n  \"workload\": {{\"rows\": {rows}, \"batches\": {batches}, \"queries\": {queries}, \"readers\": {readers}, \"seed\": {seed}}},\n  \"partitions\": {threads},\n  \"scenarios\": [\n{scenarios}\n  ],\n  \"acceptance\": {{\n    \"fairness_bound\": {fb:.1},\n    \"skew_p99_multiple\": {sm:.1},\n    \"all_gates_pass\": {pass}\n  }}\n}}",
        rows = cfg.rows,
        batches = cfg.batches,
        queries = cfg.queries,
        readers = cfg.readers,
        seed = cfg.seed,
        threads = cfg.threads,
        scenarios = scenarios.join(",\n"),
        fb = FAIRNESS_BOUND,
        sm = SKEW_P99_MULTIPLE,
        pass = all_pass,
    )
}

/// Replays the seeded starvation scenario and exits zero only if the
/// fairness gate fired with the scenario and reader named — the negative
/// control CI runs to prove the gate is live.
fn run_negative_control(cfg: &Config) -> ! {
    let spec = spec_for(cfg, Scenario::StarveReader);
    let workload = generate(&spec).unwrap_or_else(|e| {
        eprintln!("negative control: {e}");
        std::process::exit(2);
    });
    let report = replay(&workload, &replay_config(cfg)).unwrap_or_else(|e| {
        eprintln!("negative control replay failed: {e}");
        std::process::exit(2);
    });
    match check_fairness(Scenario::StarveReader, &report.served_per_reader, FAIRNESS_BOUND) {
        Err(msg) if msg.contains("'starve-reader'") && msg.contains("reader") => {
            println!("negative control OK — fairness gate fired: {msg}");
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("negative control FAILED — gate fired without naming the scenario/reader: {msg}");
            std::process::exit(1);
        }
        Ok(ratio) => {
            eprintln!(
                "negative control FAILED — starve-reader passed the fairness gate (ratio {ratio:.2})"
            );
            std::process::exit(1);
        }
    }
}

fn replay_config(cfg: &Config) -> ReplayConfig {
    ReplayConfig {
        partitions: cfg.threads,
        ..ReplayConfig::default()
    }
}

fn main() {
    let cfg = parse_args();
    if cfg.negative_control {
        run_negative_control(&cfg);
    }

    let mut rows: Vec<ScenarioRow> = Vec::new();
    let mut uniform_p99: u64 = 0;
    let mut all_pass = true;
    for scenario in Scenario::MATRIX {
        let spec = spec_for(&cfg, scenario);
        let workload = generate(&spec).unwrap_or_else(|e| {
            eprintln!("{}: {e}", scenario.name());
            std::process::exit(2);
        });
        let fingerprint = workload.fingerprint();
        let cycles = sim_cycles_per_query(&workload);
        let (report, fairness_verdict, skew_verdict) = if cfg.sim_only {
            (None, None, None)
        } else {
            let report = replay(&workload, &replay_config(&cfg)).unwrap_or_else(|e| {
                eprintln!("{} replay failed: {e}", scenario.name());
                std::process::exit(2);
            });
            if scenario == Scenario::Uniform {
                uniform_p99 = report.p99_ns;
            }
            let fairness =
                check_fairness(scenario, &report.served_per_reader, FAIRNESS_BOUND);
            let skew =
                check_skew_p99(scenario, report.p99_ns, uniform_p99, SKEW_P99_MULTIPLE);
            if let Err(msg) = &fairness {
                eprintln!("GATE FAILURE: {msg}");
                all_pass = false;
            }
            if let Err(msg) = &skew {
                eprintln!("GATE FAILURE: {msg}");
                all_pass = false;
            }
            (Some(report), Some(fairness), Some(skew))
        };
        eprintln!(
            "{name}: fingerprint {fingerprint:016x}, {cycles:.1} sim cycles/query{wall}",
            name = scenario.name(),
            wall = match &report {
                Some(r) => format!(
                    ", p50/p99/p999 = {}/{}/{} ns, fairness {:.2}",
                    r.p50_ns,
                    r.p99_ns,
                    r.p999_ns,
                    r.fairness_ratio()
                ),
                None => String::new(),
            },
        );
        rows.push(ScenarioRow {
            name: scenario.name(),
            fingerprint,
            sim_cycles_per_query: cycles,
            replay: report,
            fairness_verdict,
            skew_verdict,
        });
    }

    let json = render(&cfg, &rows, all_pass);
    match &cfg.out {
        Some(path) => {
            std::fs::write(path, format!("{json}\n")).expect("writing snapshot");
            eprintln!("scenario matrix written to {path}");
        }
        None => println!("{json}"),
    }
    if !all_pass {
        eprintln!("scenario matrix: SLO gate failures (see above)");
        std::process::exit(1);
    }
}
