//! One-shot benchmark snapshot: scalar vs batched builders across the
//! fig. 3/4/5 workload shapes plus the serve-throughput series, in
//! simulated cycles *and* wall time, serialized as a JSON document
//! (`BENCH_pr4.json` in CI).
//!
//! The committed snapshot is the regression baseline for
//! `tools/check_bench_regression.sh`: simulated cycles are deterministic
//! (same dataset + same cost model ⇒ same number), so any >10% drift in the
//! batched series is a real model/algorithm change, not noise. Wall numbers
//! are recorded for context but never gated on — they depend on the host.
//!
//! Usage: `bench_snapshot [--out FILE] [--samples M] [--vars N]
//! [--cores LIST] [--seed S] [--reps K]`.

use std::time::Instant;
use wfbn_bench::runner::uniform_workload;
use wfbn_bench::serve_bench::{serve_workload, sim_serve_scaling, wall_serve_qps};
use wfbn_core::construct::{sequential_build, sequential_build_batched, waitfree_build_batched};
use wfbn_pram::{
    simulate_all_pairs_mi, simulate_waitfree_build, simulate_waitfree_build_batched, CostModel,
};

struct Config {
    out: Option<String>,
    samples: usize,
    vars: usize,
    cores: Vec<usize>,
    seed: u64,
    reps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            out: None,
            // The paper's fig. 3 lower scale (0.1M samples): large enough
            // that the per-core tables outgrow L2 — the regime the batched
            // paths (prefetch + ILP encode) are designed for.
            samples: 100_000,
            vars: 30,
            cores: vec![1, 2, 4, 8],
            seed: 42,
            reps: 5,
        }
    }
}

fn parse_args() -> Config {
    let mut cfg = Config::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--out" => cfg.out = Some(value("--out")),
            "--samples" | "-m" => cfg.samples = value("--samples").parse().expect("usize"),
            "--vars" | "-n" => cfg.vars = value("--vars").parse().expect("usize"),
            "--seed" => cfg.seed = value("--seed").parse().expect("u64"),
            "--reps" => cfg.reps = value("--reps").parse().expect("usize"),
            "--cores" | "-p" => {
                cfg.cores = value("--cores")
                    .split(',')
                    .map(|s| s.trim().parse().expect("usize"))
                    .collect();
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn wall_ns_median<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    let mut times: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn json_f64_array(values: &[f64]) -> String {
    let parts: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    format!("[{}]", parts.join(","))
}

fn json_u128_array(values: &[u128]) -> String {
    let parts: Vec<String> = values.iter().map(u128::to_string).collect();
    format!("[{}]", parts.join(","))
}

fn json_usize_array(values: &[usize]) -> String {
    let parts: Vec<String> = values.iter().map(usize::to_string).collect();
    format!("[{}]", parts.join(","))
}

fn main() {
    let cfg = parse_args();
    let model = CostModel::default();
    let (n, m) = (cfg.vars, cfg.samples);
    let data = uniform_workload(n, m, cfg.seed);

    // ---- fig3 shape: construction vs cores, scalar vs batched. ----
    let mut sim_scalar = Vec::new();
    let mut sim_batched = Vec::new();
    let mut wall_scalar_ns: Vec<u128> = Vec::new();
    let mut wall_batched_ns: Vec<u128> = Vec::new();
    for &p in &cfg.cores {
        let (s, _) = simulate_waitfree_build(&data, p, &model);
        let (b, _) = simulate_waitfree_build_batched(&data, p, &model);
        sim_scalar.push(s.elapsed_cycles);
        sim_batched.push(b.elapsed_cycles);
        if p == 1 {
            wall_scalar_ns.push(wall_ns_median(cfg.reps, || {
                std::hint::black_box(sequential_build(&data).expect("data").table.num_entries());
            }));
            wall_batched_ns.push(wall_ns_median(cfg.reps, || {
                std::hint::black_box(
                    sequential_build_batched(&data)
                        .expect("data")
                        .table
                        .num_entries(),
                );
            }));
        } else {
            wall_scalar_ns.push(wall_ns_median(cfg.reps, || {
                std::hint::black_box(
                    wfbn_core::construct::waitfree_build(&data, p)
                        .expect("data")
                        .table
                        .num_entries(),
                );
            }));
            wall_batched_ns.push(wall_ns_median(cfg.reps, || {
                std::hint::black_box(
                    waitfree_build_batched(&data, p)
                        .expect("data")
                        .table
                        .num_entries(),
                );
            }));
        }
    }
    let sim_advantage: Vec<f64> = sim_scalar
        .iter()
        .zip(&sim_batched)
        .map(|(s, b)| s / b)
        .collect();
    let wall_advantage: Vec<f64> = wall_scalar_ns
        .iter()
        .zip(&wall_batched_ns)
        .map(|(&s, &b)| s as f64 / b as f64)
        .collect();
    let speedup_scalar: Vec<f64> = sim_scalar.iter().map(|c| sim_scalar[0] / c).collect();
    let speedup_batched: Vec<f64> = sim_batched.iter().map(|c| sim_batched[0] / c).collect();

    // ---- fig4 shape: construction vs variables at max cores. ----
    let pmax = cfg.cores.iter().copied().max().unwrap_or(1);
    let fig4_vars = [n, n + 10, n + 20];
    let mut fig4_scalar = Vec::new();
    let mut fig4_batched = Vec::new();
    for &nv in &fig4_vars {
        let d = uniform_workload(nv, m, cfg.seed);
        fig4_scalar.push(simulate_waitfree_build(&d, pmax, &model).0.elapsed_cycles);
        fig4_batched.push(
            simulate_waitfree_build_batched(&d, pmax, &model)
                .0
                .elapsed_cycles,
        );
    }

    // ---- fig5 shape: all-pairs MI vs cores (built on the batched table). ----
    let (_, table) = simulate_waitfree_build_batched(&data, pmax, &model);
    let fig5_cycles: Vec<f64> = cfg
        .cores
        .iter()
        .map(|&p| simulate_all_pairs_mi(&table, p, &model).elapsed_cycles)
        .collect();

    // ---- serve shape: query throughput vs reader endpoints. ----
    // A smaller live table than the build workloads: the serve wall series
    // runs real engine + reader threads per point and must stay cheap.
    let serve_n = 12;
    let serve_m = m.min(20_000);
    let serve_data = serve_workload(serve_n, serve_m, cfg.seed);
    let serve_sim = sim_serve_scaling(&serve_data, &cfg.cores, &model);
    let serve_wall_qps = wall_serve_qps(&serve_data, &cfg.cores, 50);

    let p8_index = cfg.cores.iter().position(|&p| p == 8);
    let acceptance_sim = p8_index.map(|i| sim_advantage[i]).unwrap_or(0.0);
    let acceptance_serve = p8_index.map(|i| serve_sim.scaling[i]).unwrap_or(0.0);
    let acceptance_wall = cfg
        .cores
        .iter()
        .position(|&p| p == 1)
        .map(|i| wall_advantage[i])
        .unwrap_or(0.0);

    let json = format!(
        "{{\n  \"schema\": \"wfbn-bench-pr4\",\n  \"workload\": {{\"n\": {n}, \"m\": {m}, \"seed\": {seed}}},\n  \"cores\": {cores},\n  \"fig3\": {{\n    \"sim_scalar_cycles\": {ss},\n    \"sim_batched_cycles\": {sb},\n    \"sim_batched_advantage\": {sa},\n    \"wall_scalar_ns\": {ws},\n    \"wall_batched_ns\": {wb},\n    \"wall_batched_advantage\": {wa},\n    \"speedup_scalar\": {sps},\n    \"speedup_batched\": {spb}\n  }},\n  \"fig4\": {{\n    \"vars\": {f4v},\n    \"cores\": {pmax},\n    \"sim_scalar_cycles\": {f4s},\n    \"sim_batched_cycles\": {f4b}\n  }},\n  \"fig5\": {{\n    \"sim_allpairs_cycles\": {f5}\n  }},\n  \"serve\": {{\n    \"workload\": {{\"n\": {sn}, \"m\": {sm}, \"seed\": {seed}}},\n    \"readers\": {cores},\n    \"sim_cycles_per_query\": {scq:.3},\n    \"sim_qps_per_megacycle\": {sqm},\n    \"sim_scaling\": {ssc},\n    \"wall_qps\": {swq}\n  }},\n  \"acceptance\": {{\n    \"sim_p8_advantage\": {asim:.3},\n    \"wall_p1_advantage\": {awall:.3},\n    \"serve_p8_scaling\": {aserve:.3}\n  }}\n}}",
        seed = cfg.seed,
        cores = json_usize_array(&cfg.cores),
        ss = json_f64_array(&sim_scalar),
        sb = json_f64_array(&sim_batched),
        sa = json_f64_array(&sim_advantage),
        ws = json_u128_array(&wall_scalar_ns),
        wb = json_u128_array(&wall_batched_ns),
        wa = json_f64_array(&wall_advantage),
        sps = json_f64_array(&speedup_scalar),
        spb = json_f64_array(&speedup_batched),
        f4v = json_usize_array(&fig4_vars),
        f4s = json_f64_array(&fig4_scalar),
        f4b = json_f64_array(&fig4_batched),
        f5 = json_f64_array(&fig5_cycles),
        sn = serve_n,
        sm = serve_m,
        scq = serve_sim.cycles_per_query,
        sqm = json_f64_array(&serve_sim.qps_per_megacycle),
        ssc = json_f64_array(&serve_sim.scaling),
        swq = json_f64_array(&serve_wall_qps),
        asim = acceptance_sim,
        awall = acceptance_wall,
        aserve = acceptance_serve,
    );

    match &cfg.out {
        Some(path) => {
            std::fs::write(path, format!("{json}\n")).expect("writing snapshot");
            eprintln!("snapshot written to {path}");
            eprintln!(
                "acceptance: sim P=8 advantage {acceptance_sim:.3}x, wall P=1 advantage {acceptance_wall:.3}x, serve P=8 scaling {acceptance_serve:.3}x"
            );
        }
        None => println!("{json}"),
    }
}
