//! Shared measurement drivers used by the figure binaries.

use crate::series::Series;
use std::time::Instant;
use wfbn_baselines::striped::StripedLockBuilder;
use wfbn_core::allpairs::all_pairs_mi_recorded;
use wfbn_core::construct::{
    waitfree_build, waitfree_build_batched, waitfree_build_batched_recorded,
    waitfree_build_recorded,
};
use wfbn_core::obs::{Counter, Stage};
use wfbn_core::{CoreMetrics, MetricsReport};
use wfbn_data::{Dataset, Generator, Schema, UniformIndependent};
use wfbn_pram::{
    simulate_all_pairs_mi, simulate_striped_build, simulate_waitfree_build,
    simulate_waitfree_build_batched, CostModel,
};

/// Measurement mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// PRAM cost-model simulation (deterministic; default).
    Sim,
    /// Real threads + wall clock.
    Wall,
    /// Both.
    Both,
}

impl Mode {
    /// `true` if simulated series should run.
    pub fn sim(self) -> bool {
        matches!(self, Mode::Sim | Mode::Both)
    }

    /// `true` if wall-clock series should run.
    pub fn wall(self) -> bool {
        matches!(self, Mode::Wall | Mode::Both)
    }
}

/// Median of `k` wall-clock timings of `f`, in seconds.
pub fn wall_time_median<F: FnMut()>(k: usize, mut f: F) -> f64 {
    assert!(k > 0);
    let mut times: Vec<f64> = (0..k)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
    times[times.len() / 2]
}

/// Generates the paper's §V-A workload: `m` samples of `n` i.i.d. uniform
/// binary variables.
pub fn uniform_workload(n: usize, m: usize, seed: u64) -> Dataset {
    UniformIndependent::new(Schema::uniform(n, 2).expect("n ≤ 63 binary vars")).generate(m, seed)
}

/// Simulated table-construction series (wait-free) over `cores`.
pub fn sim_waitfree_series(data: &Dataset, cores: &[usize], label: &str) -> Series {
    let model = CostModel::default();
    let mut s = Series::new(format!("{label} wait-free (sim)"));
    for &p in cores {
        let (pt, _) = simulate_waitfree_build(data, p, &model);
        s.points
            .push((p, model.cycles_to_seconds(pt.elapsed_cycles)));
    }
    s
}

/// Simulated table-construction series (wait-free, batched hot paths) over
/// `cores`.
pub fn sim_waitfree_batched_series(data: &Dataset, cores: &[usize], label: &str) -> Series {
    let model = CostModel::default();
    let mut s = Series::new(format!("{label} wait-free batched (sim)"));
    for &p in cores {
        let (pt, _) = simulate_waitfree_build_batched(data, p, &model);
        s.points
            .push((p, model.cycles_to_seconds(pt.elapsed_cycles)));
    }
    s
}

/// Simulated table-construction series (TBB-analog striped lock).
pub fn sim_striped_series(data: &Dataset, cores: &[usize], label: &str) -> Series {
    let model = CostModel::default();
    let mut s = Series::new(format!("{label} TBB-analog (sim)"));
    for &p in cores {
        let pt = simulate_striped_build(data, p, wfbn_pram::sim_locked::DEFAULT_STRIPES, &model);
        s.points
            .push((p, model.cycles_to_seconds(pt.elapsed_cycles)));
    }
    s
}

/// Simulated all-pairs MI series.
pub fn sim_allpairs_series(data: &Dataset, cores: &[usize], label: &str) -> Series {
    let model = CostModel::default();
    let (_, table) =
        simulate_waitfree_build(data, cores.iter().copied().max().unwrap_or(1), &model);
    let mut s = Series::new(format!("{label} all-pairs MI (sim)"));
    for &p in cores {
        let pt = simulate_all_pairs_mi(&table, p, &model);
        s.points
            .push((p, model.cycles_to_seconds(pt.elapsed_cycles)));
    }
    s
}

/// Wall-clock table-construction series (wait-free, real threads).
pub fn wall_waitfree_series(data: &Dataset, cores: &[usize], label: &str, reps: usize) -> Series {
    let mut s = Series::new(format!("{label} wait-free (wall)"));
    for &p in cores {
        let secs = wall_time_median(reps, || {
            let built = waitfree_build(data, p).expect("non-empty data");
            std::hint::black_box(built.table.num_entries());
        });
        s.points.push((p, secs));
    }
    s
}

/// Wall-clock table-construction series (wait-free, batched hot paths).
pub fn wall_waitfree_batched_series(
    data: &Dataset,
    cores: &[usize],
    label: &str,
    reps: usize,
) -> Series {
    let mut s = Series::new(format!("{label} wait-free batched (wall)"));
    for &p in cores {
        let secs = wall_time_median(reps, || {
            let built = waitfree_build_batched(data, p).expect("non-empty data");
            std::hint::black_box(built.table.num_entries());
        });
        s.points.push((p, secs));
    }
    s
}

/// Wall-clock table-construction series (striped-lock, real threads).
pub fn wall_striped_series(data: &Dataset, cores: &[usize], label: &str, reps: usize) -> Series {
    let mut s = Series::new(format!("{label} striped-lock (wall)"));
    let builder = StripedLockBuilder::default();
    for &p in cores {
        let secs = wall_time_median(reps, || {
            let map = builder.build_map(data, p).expect("non-empty data");
            std::hint::black_box(map.num_stripes());
        });
        s.points.push((p, secs));
    }
    s
}

/// Wall-clock all-pairs MI series (real threads).
pub fn wall_allpairs_series(data: &Dataset, cores: &[usize], label: &str, reps: usize) -> Series {
    let table = waitfree_build(data, cores.iter().copied().max().unwrap_or(1))
        .expect("non-empty data")
        .table;
    let mut s = Series::new(format!("{label} all-pairs MI (wall)"));
    for &p in cores {
        let secs = wall_time_median(reps, || {
            let mi = wfbn_core::allpairs::all_pairs_mi(&table, p);
            std::hint::black_box(mi.get(0, 1));
        });
        s.points.push((p, secs));
    }
    s
}

/// Runs one instrumented wait-free build on `p` real threads and returns
/// the merged per-core metrics report (used by the `--metrics` passes of
/// the figure binaries).
pub fn metrics_waitfree_report(data: &Dataset, p: usize) -> MetricsReport {
    let rec = CoreMetrics::new(p);
    let built = waitfree_build_recorded(data, p, &rec).expect("non-empty data");
    std::hint::black_box(built.table.num_entries());
    rec.snapshot()
}

/// [`metrics_waitfree_report`] for the batched builder: the report includes
/// the v2 batching counters (`blocks_flushed`, `keys_coalesced`).
pub fn metrics_waitfree_batched_report(data: &Dataset, p: usize) -> MetricsReport {
    let rec = CoreMetrics::new(p);
    let built = waitfree_build_batched_recorded(data, p, &rec).expect("non-empty data");
    std::hint::black_box(built.table.num_entries());
    rec.snapshot()
}

/// Runs one instrumented wait-free build followed by instrumented all-pairs
/// MI on `p` real threads; the returned report covers both phases (the MI
/// scan shows up under the `marginalize` stage and the `pairs_scanned` /
/// `entries_scanned` counters).
pub fn metrics_allpairs_report(data: &Dataset, p: usize) -> MetricsReport {
    let rec = CoreMetrics::new(p);
    let table = waitfree_build_recorded(data, p, &rec)
        .expect("non-empty data")
        .table;
    let mi = all_pairs_mi_recorded(&table, p, &rec);
    std::hint::black_box(mi.num_vars());
    rec.snapshot()
}

/// Renders the human-readable per-stage breakdown of a metrics report:
/// one bullet per stage with the summed and per-core-max wall time, plus
/// the headline routing counters. The full JSON document is printed
/// separately — this is the at-a-glance view.
pub fn format_stage_breakdown(report: &MetricsReport) -> String {
    let mut out = String::new();
    for stage in Stage::ALL {
        let total = report.stage_total_ns(stage) as f64 / 1e6;
        let max = report.stage_max_ns(stage) as f64 / 1e6;
        out.push_str(&format!(
            "- {}: {total:.2} ms summed across cores, {max:.2} ms on the slowest core\n",
            stage.name()
        ));
    }
    out.push_str(&format!(
        "- routing: {} rows encoded, {} local, {} forwarded, {} drained, queue HWM {}\n",
        report.total(Counter::RowsEncoded),
        report.total(Counter::LocalUpdates),
        report.total(Counter::Forwarded),
        report.total(Counter::Drained),
        report.queue_hwm_max(),
    ));
    let blocks = report.total(Counter::BlocksFlushed);
    let coalesced = report.total(Counter::KeysCoalesced);
    if blocks > 0 || coalesced > 0 {
        out.push_str(&format!(
            "- batching: {blocks} blocks flushed, {coalesced} keys coalesced\n"
        ));
    }
    out
}

/// Prints the standard banner: host parallelism and mode caveats.
pub fn print_host_banner(mode: Mode) {
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("host parallelism: {host_cores} hardware thread(s)");
    if mode.wall() && host_cores < 8 {
        println!(
            "note: wall-clock speedups are bounded by the {host_cores} available \
             hardware thread(s); the sim series reproduces the paper's 32-core platform."
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_flags() {
        assert!(Mode::Sim.sim() && !Mode::Sim.wall());
        assert!(!Mode::Wall.sim() && Mode::Wall.wall());
        assert!(Mode::Both.sim() && Mode::Both.wall());
    }

    #[test]
    fn wall_time_median_is_positive() {
        let t = wall_time_median(3, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn sim_series_have_one_point_per_core_count() {
        let data = uniform_workload(10, 2_000, 1);
        let cores = [1usize, 2, 4];
        for s in [
            sim_waitfree_series(&data, &cores, "t"),
            sim_waitfree_batched_series(&data, &cores, "t"),
            sim_striped_series(&data, &cores, "t"),
            sim_allpairs_series(&data, &cores, "t"),
        ] {
            assert_eq!(s.points.len(), 3);
            assert!(s.points.iter().all(|&(_, secs)| secs > 0.0));
        }
    }

    #[test]
    fn metrics_reports_balance_and_format() {
        let data = uniform_workload(8, 1_000, 3);
        let build = metrics_waitfree_report(&data, 2);
        assert_eq!(build.total(Counter::RowsEncoded), 1_000);
        assert_eq!(
            build.total(Counter::LocalUpdates) + build.total(Counter::Forwarded),
            1_000
        );
        let full = metrics_allpairs_report(&data, 2);
        assert!(full.total(Counter::PairsScanned) > 0);
        let text = format_stage_breakdown(&full);
        for stage in Stage::ALL {
            assert!(text.contains(stage.name()), "{text}");
        }
        assert!(text.contains("rows encoded"), "{text}");
    }

    #[test]
    fn wall_series_run_on_tiny_inputs() {
        let data = uniform_workload(8, 500, 2);
        let cores = [1usize, 2];
        for s in [
            wall_waitfree_series(&data, &cores, "t", 1),
            wall_waitfree_batched_series(&data, &cores, "t", 1),
            wall_striped_series(&data, &cores, "t", 1),
            wall_allpairs_series(&data, &cores, "t", 1),
        ] {
            assert_eq!(s.points.len(), 2);
        }
    }

    #[test]
    fn batched_metrics_report_carries_v2_counters() {
        let data = uniform_workload(8, 2_000, 5);
        let report = metrics_waitfree_batched_report(&data, 4);
        assert_eq!(report.total(Counter::RowsEncoded), 2_000);
        assert_eq!(
            report.total(Counter::Forwarded),
            report.total(Counter::Drained)
        );
        assert!(report.total(Counter::BlocksFlushed) > 0);
        let text = format_stage_breakdown(&report);
        assert!(text.contains("blocks flushed"), "{text}");
    }
}
