//! Result series and table formatting.

/// One measured/simulated series: a label and `(cores, seconds)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display label, e.g. `"wait-free m=1M (sim)"`.
    pub label: String,
    /// `(cores, seconds)` in ascending core order.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Speedups relative to the first point.
    pub fn speedups(&self) -> Vec<f64> {
        match self.points.first() {
            Some(&(_, base)) => self.points.iter().map(|&(_, s)| base / s).collect(),
            None => Vec::new(),
        }
    }

    /// CSV body: `cores,seconds,speedup` lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cores,seconds,speedup\n");
        for (&(cores, secs), speedup) in self.points.iter().zip(self.speedups()) {
            out.push_str(&format!("{cores},{secs:.6e},{speedup:.3}\n"));
        }
        out
    }
}

/// Renders several series as one markdown table: a row per core count, a
/// `time` and `speedup` column pair per series (mirroring the paper's (a)
/// runtime and (b) speedup panels in one view).
pub fn format_markdown_table(series: &[Series]) -> String {
    let mut cores: Vec<usize> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(c, _)| c))
        .collect();
    cores.sort_unstable();
    cores.dedup();

    let mut out = String::from("| cores |");
    for s in series {
        out.push_str(&format!(" {} time (s) | speedup |", s.label));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in series {
        out.push_str("---|---|");
    }
    out.push('\n');
    for &c in &cores {
        out.push_str(&format!("| {c} |"));
        for s in series {
            let idx = s.points.iter().position(|&(pc, _)| pc == c);
            match idx {
                Some(i) => {
                    let secs = s.points[i].1;
                    let speedup = s.speedups()[i];
                    out.push_str(&format!(" {secs:.4e} | {speedup:.2} |"));
                }
                None => out.push_str(" — | — |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Writes each series as `<dir>/<slug>.csv` (slug = label with
/// non-alphanumerics folded to `_`).
pub fn write_csvs(dir: &str, series: &[Series]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for s in series {
        let slug: String = s
            .label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        std::fs::write(format!("{dir}/{slug}.csv"), s.to_csv())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, pts: &[(usize, f64)]) -> Series {
        Series {
            label: label.into(),
            points: pts.to_vec(),
        }
    }

    #[test]
    fn speedups_relative_to_first() {
        let s = series("a", &[(1, 4.0), (2, 2.0), (4, 1.0)]);
        assert_eq!(s.speedups(), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn csv_shape() {
        let s = series("a", &[(1, 4.0), (2, 2.0)]);
        let csv = s.to_csv();
        assert!(csv.starts_with("cores,seconds,speedup\n"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("2,2.000000e0,2.000"));
    }

    #[test]
    fn markdown_table_aligns_by_core_count() {
        let a = series("A", &[(1, 4.0), (2, 2.0)]);
        let b = series("B", &[(1, 8.0), (4, 2.0)]);
        let md = format_markdown_table(&[a, b]);
        let lines: Vec<&str> = md.lines().collect();
        assert!(lines[0].contains("A time (s)"));
        assert!(lines[0].contains("B time (s)"));
        // Core counts 1, 2, 4; B has no p=2 point, A has no p=4 point.
        assert_eq!(lines.len(), 2 + 3);
        assert!(lines[3].contains("—"), "{md}");
        assert!(lines[4].contains("—"), "{md}");
    }

    #[test]
    fn write_csvs_creates_files() {
        let dir = std::env::temp_dir().join("wfbn_bench_test_csvs");
        let dir = dir.to_str().unwrap();
        let _ = std::fs::remove_dir_all(dir);
        write_csvs(dir, &[series("a b/c", &[(1, 1.0)])]).unwrap();
        let content = std::fs::read_to_string(format!("{dir}/a_b_c.csv")).unwrap();
        assert!(content.contains("cores,seconds"));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
