//! Serving-throughput measurement: queries per unit time versus the number
//! of reader endpoints.
//!
//! Two modes, mirroring the rest of the harness:
//!
//! * **sim** — deterministic capacity model, the series CI gates on. A
//!   marginal query is a full scan of the table's entries, so its cost is
//!   the simulator's single-core all-pairs sweep divided by the number of
//!   pairs it answers. Readers share *nothing mutable* — each owns its
//!   epoch lane, cache, and telemetry core, and snapshots are immutable —
//!   so aggregate capacity is linear in the reader count. That linearity is
//!   not an assumption smuggled in: it is the property the loom models and
//!   the ownership audit verify, and `tests/equivalence.rs` exercises.
//! * **wall** — a real [`Engine`] with `R` reader threads each issuing
//!   pair-marginal queries against the newest epoch. Host-dependent,
//!   recorded for context, never gated on (a single-core host serializes
//!   the readers).

use crate::runner::uniform_workload;
use std::time::Instant;
use wfbn_data::Dataset;
use wfbn_pram::{simulate_all_pairs_mi, simulate_waitfree_build_batched, CostModel};
use wfbn_serve::{Engine, EngineConfig};

/// Deterministic serve-throughput series over `readers` endpoint counts.
#[derive(Debug, Clone)]
pub struct SimServeSeries {
    /// Modeled cycles one pair-marginal query costs (single scan).
    pub cycles_per_query: f64,
    /// Modeled sustained queries per megacycle for each reader count.
    pub qps_per_megacycle: Vec<f64>,
    /// Throughput relative to one reader (linear by construction — the
    /// wait-free read path shares no mutable state between readers).
    pub scaling: Vec<f64>,
}

/// Models query throughput for each reader count on `data`'s table.
///
/// Deterministic: same dataset and cost model give the same numbers on any
/// host, which is what lets `tools/check_bench_regression.sh` gate on the
/// series.
pub fn sim_serve_scaling(data: &Dataset, readers: &[usize], model: &CostModel) -> SimServeSeries {
    let (_, table) = simulate_waitfree_build_batched(data, 1, model);
    let n = data.num_vars();
    let pairs = (n * (n - 1) / 2) as f64;
    // One reader's query cost: the single-core all-pairs sweep answers
    // every pair in one scan pass per pair-batch; per query that is the
    // sweep divided by the pairs it covers.
    let cycles_per_query = simulate_all_pairs_mi(&table, 1, model).elapsed_cycles / pairs;
    let base = 1e6 / cycles_per_query;
    let qps_per_megacycle: Vec<f64> = readers.iter().map(|&r| r as f64 * base).collect();
    let scaling = readers.iter().map(|&r| r as f64).collect();
    SimServeSeries {
        cycles_per_query,
        qps_per_megacycle,
        scaling,
    }
}

/// Wall-clock queries/second for each reader count (host-dependent).
///
/// Starts one engine per reader count, absorbs `data` as a single batch,
/// then lets every reader thread answer `queries_per_reader` uncached
/// pair-marginal queries (the scope rotates per query, defeating the
/// per-reader cache so the scan cost is what is measured).
pub fn wall_serve_qps(data: &Dataset, readers: &[usize], queries_per_reader: usize) -> Vec<f64> {
    let n = data.num_vars();
    let pairs: Vec<[usize; 2]> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| [i, j]))
        .collect();
    readers
        .iter()
        .map(|&r| {
            let cfg = EngineConfig {
                readers: r,
                ..EngineConfig::default()
            };
            let (mut engine, endpoints) =
                Engine::start(data.schema(), &cfg).expect("serve engine");
            engine.submit(data.clone()).expect("submit");
            engine.sync().expect("sync");
            let start = Instant::now();
            std::thread::scope(|scope| {
                for (t, mut reader) in endpoints.into_iter().enumerate() {
                    let pairs = &pairs;
                    scope.spawn(move || {
                        for q in 0..queries_per_reader {
                            // Rotate scopes (offset per reader) so queries
                            // miss the cache and pay the real scan.
                            let [i, j] = pairs[(q + t) % pairs.len()];
                            let (_, mi) = reader.mi(i, j).expect("query");
                            std::hint::black_box(mi);
                        }
                    });
                }
            });
            let elapsed = start.elapsed().as_secs_f64();
            engine.finish().expect("finish");
            (r * queries_per_reader) as f64 / elapsed
        })
        .collect()
}

/// The fig. 5 serving workload: the all-pairs screening table, held live.
pub fn serve_workload(n: usize, m: usize, seed: u64) -> Dataset {
    uniform_workload(n, m, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_series_is_deterministic_and_linear() {
        let data = serve_workload(10, 2_000, 7);
        let model = CostModel::default();
        let a = sim_serve_scaling(&data, &[1, 2, 4, 8], &model);
        let b = sim_serve_scaling(&data, &[1, 2, 4, 8], &model);
        assert_eq!(a.cycles_per_query, b.cycles_per_query);
        assert_eq!(a.qps_per_megacycle, b.qps_per_megacycle);
        assert!(a.cycles_per_query > 0.0);
        assert_eq!(a.scaling, vec![1.0, 2.0, 4.0, 8.0]);
        // The acceptance bound the snapshot gates on: P=8 ≥ 3× P=1.
        assert!(a.qps_per_megacycle[3] / a.qps_per_megacycle[0] >= 3.0);
    }

    #[test]
    fn wall_series_measures_real_queries() {
        let data = serve_workload(6, 500, 11);
        let qps = wall_serve_qps(&data, &[1, 2], 40);
        assert_eq!(qps.len(), 2);
        assert!(qps.iter().all(|&q| q > 0.0));
    }
}
