//! Shard-scaling measurement: fan-out query throughput versus the number of
//! shards in a `wfbn-cluster` deployment.
//!
//! Two modes, mirroring the rest of the harness:
//!
//! * **sim** — the deterministic series CI gates on
//!   (`cluster_s8_scaling` in `BENCH_pr9.json`). A fan-out marginal scans
//!   `E/S` entries per shard in parallel and pays dispatch + two network
//!   hops + an `S`-way partial merge ([`wfbn_pram::simulate_cluster_marginal`]);
//!   throughput is the inverse of that closed-loop latency, so the series
//!   is a pure function of dataset, shape, and cost model.
//! * **wall** — a real [`Cluster`] per shard count: ingest the dataset
//!   through the consistent-hash router, sync to the last cluster epoch,
//!   then time pair-marginal queries through one fan-out client.
//!   Host-dependent, recorded for context, never gated on (every shard's
//!   writer thread shares the benchmark host's cores).

use std::time::Instant;
use wfbn_cluster::{Cluster, ClusterConfig};
use wfbn_data::Dataset;
use wfbn_pram::{simulate_cluster_marginal, simulate_waitfree_build_batched, CostModel};
use wfbn_serve::EngineConfig;

/// Deterministic shard-scaling series over `shards` cluster sizes.
#[derive(Debug, Clone)]
pub struct SimClusterSeries {
    /// Shard counts, ascending.
    pub shards: Vec<usize>,
    /// Modeled cycles one fan-out pair-marginal costs at each shard count.
    pub cycles_per_query: Vec<f64>,
    /// Throughput relative to the first shard count (1/latency ratio).
    pub scaling: Vec<f64>,
}

/// Models fan-out query latency/throughput for each shard count on `data`'s
/// table, `cores_per_shard` cores per shard.
///
/// Deterministic: same dataset, shape, and cost model give the same numbers
/// on any host, which is what lets `tools/check_bench_regression.sh` gate
/// on the series.
pub fn sim_cluster_scaling(
    data: &Dataset,
    shards: &[usize],
    cores_per_shard: usize,
    model: &CostModel,
) -> SimClusterSeries {
    let (_, table) = simulate_waitfree_build_batched(data, 1, model);
    let n = data.num_vars();
    // The representative query: a pair marginal over the first and middle
    // variable — two decodes per entry, exactly the MI driver's inner scan.
    let scope = [0, n / 2];
    let cycles_per_query: Vec<f64> = shards
        .iter()
        .map(|&s| simulate_cluster_marginal(&table, &scope, s, cores_per_shard, model).elapsed_cycles)
        .collect();
    let scaling = cycles_per_query
        .iter()
        .map(|&c| cycles_per_query[0] / c)
        .collect();
    SimClusterSeries {
        shards: shards.to_vec(),
        cycles_per_query,
        scaling,
    }
}

/// Wall-clock fan-out queries/second for each shard count (host-dependent).
///
/// Each point ingests `data` through a fresh cluster (batched into 8
/// cluster epochs), then times `queries` pair-marginal fan-outs through one
/// client. Scopes rotate across variable pairs so the client cache does not
/// collapse the work to one merge.
pub fn wall_cluster_qps(data: &Dataset, shards: &[usize], queries: usize) -> Vec<f64> {
    let schema = data.schema().clone();
    let n = schema.num_vars();
    let rows: Vec<Vec<u16>> = data.rows().map(<[u16]>::to_vec).collect();
    shards
        .iter()
        .map(|&s| {
            let cfg = ClusterConfig {
                shards: s,
                clients: 1,
                engine: EngineConfig {
                    builder_threads: 1,
                    ..EngineConfig::default()
                },
                ..ClusterConfig::default()
            };
            let (mut cluster, mut clients) =
                Cluster::start(&schema, &cfg).expect("cluster start");
            let chunk = rows.len().div_ceil(8).max(1);
            for batch in rows.chunks(chunk) {
                cluster.submit_rows(batch).expect("ingest");
            }
            cluster.sync().expect("cluster sync");
            let client = &mut clients[0];
            let start = Instant::now();
            for q in 0..queries {
                // Rotate over strictly-increasing variable pairs (i < j).
                let i = q % (n - 1);
                let j = i + 1 + q % (n - 1 - i);
                let scope = [i, j];
                let scopes: [&[usize]; 1] = [&scope];
                client.answer_batch(&scopes).expect("fan-out query");
            }
            let secs = start.elapsed().as_secs_f64();
            cluster.finish().expect("cluster finish");
            queries as f64 / secs.max(1e-9)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::uniform_workload;

    #[test]
    fn sim_series_is_deterministic_and_clears_the_gate() {
        let data = uniform_workload(20, 30_000, 42);
        let model = CostModel::default();
        let a = sim_cluster_scaling(&data, &[1, 2, 4, 8], 2, &model);
        let b = sim_cluster_scaling(&data, &[1, 2, 4, 8], 2, &model);
        assert_eq!(a.cycles_per_query, b.cycles_per_query, "sim must be bit-stable");
        assert!((a.scaling[0] - 1.0).abs() < 1e-12);
        assert!(
            a.scaling[3] >= 3.0,
            "S=1→8 sim throughput scaling {:.2} below the 3x gate",
            a.scaling[3]
        );
    }

    #[test]
    fn wall_series_runs_a_real_cluster() {
        // Smoke-scale: correctness of the harness, not a measurement.
        let data = uniform_workload(6, 400, 7);
        let qps = wall_cluster_qps(&data, &[1, 2], 8);
        assert_eq!(qps.len(), 2);
        assert!(qps.iter().all(|&q| q > 0.0), "qps: {qps:?}");
    }
}
