//! A tiny, dependency-free CLI argument parser for the figure binaries.

use crate::runner::Mode;

/// Parsed harness options.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Sample counts `m` to sweep (figure-specific defaults).
    pub samples: Vec<usize>,
    /// Variable counts `n` to sweep.
    pub vars: Vec<usize>,
    /// Core counts to sweep.
    pub cores: Vec<usize>,
    /// Simulated, wall-clock, or both.
    pub mode: Mode,
    /// RNG seed for workload generation.
    pub seed: u64,
    /// Run at the paper's full scale (0.1M–10M samples) instead of the
    /// scaled-down defaults.
    pub paper_scale: bool,
    /// Also run one instrumented pass and emit the per-stage/per-core
    /// metrics report (JSON, schema `wfbn-metrics-v5`).
    pub metrics: bool,
    /// Optional directory to write CSV series into.
    pub out_dir: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            samples: vec![10_000, 100_000, 1_000_000],
            // Empty = "use the figure's own default sweep"; an explicit
            // --vars always wins (never silently overridden).
            vars: vec![],
            cores: vec![1, 2, 4, 8, 16, 32],
            mode: Mode::Sim,
            seed: 42,
            paper_scale: false,
            metrics: false,
            out_dir: None,
        }
    }
}

/// Parse error with a message suitable for printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl core::fmt::Display for ArgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn parse_list<T: core::str::FromStr>(value: &str, flag: &str) -> Result<Vec<T>, ArgError> {
    value
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<T>()
                .map_err(|_| ArgError(format!("invalid value {part:?} for {flag}")))
        })
        .collect()
}

impl HarnessArgs {
    /// Parses `--flag value` style arguments; unknown flags error.
    pub fn parse<I: IntoIterator<Item = String>>(iter: I) -> Result<Self, ArgError> {
        let mut out = Self::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut value_of = |flag: &str| {
                it.next()
                    .ok_or_else(|| ArgError(format!("{flag} expects a value")))
            };
            match flag.as_str() {
                "--samples" | "-m" => out.samples = parse_list(&value_of(&flag)?, &flag)?,
                "--vars" | "-n" => out.vars = parse_list(&value_of(&flag)?, &flag)?,
                "--cores" | "-p" => out.cores = parse_list(&value_of(&flag)?, &flag)?,
                "--seed" => {
                    out.seed = value_of(&flag)?
                        .parse()
                        .map_err(|_| ArgError("invalid seed".into()))?;
                }
                "--mode" => {
                    out.mode = match value_of(&flag)?.as_str() {
                        "sim" => Mode::Sim,
                        "wall" => Mode::Wall,
                        "both" => Mode::Both,
                        other => {
                            return Err(ArgError(format!("unknown mode {other:?} (sim|wall|both)")))
                        }
                    };
                }
                "--paper-scale" => out.paper_scale = true,
                "--metrics" => out.metrics = true,
                "--out" => out.out_dir = Some(value_of(&flag)?),
                "--help" | "-h" => {
                    return Err(ArgError(HELP.to_string()));
                }
                other => return Err(ArgError(format!("unknown flag {other:?}\n{HELP}"))),
            }
        }
        if out.samples.is_empty() || out.cores.is_empty() {
            return Err(ArgError("empty sweep list".into()));
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}

const HELP: &str = "\
Options:
  --samples, -m  LIST   comma-separated sample counts (e.g. 10000,100000)
  --vars, -n     LIST   comma-separated variable counts (e.g. 30,40,50)
  --cores, -p    LIST   comma-separated core counts (default 1,2,4,8,16,32)
  --mode         MODE   sim | wall | both (default sim)
  --seed         N      workload RNG seed (default 42)
  --paper-scale         use the paper's full sizes (0.1M/1M/10M samples)
  --metrics             run one instrumented pass and emit the per-stage
                        per-core metrics report (JSON, wfbn-metrics-v5)
  --out          DIR    also write CSV series into DIR
  --help, -h            print this help";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<HarnessArgs, ArgError> {
        HarnessArgs::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults_when_empty() {
        let a = parse("").unwrap();
        assert_eq!(a, HarnessArgs::default());
    }

    #[test]
    fn parses_lists_and_mode() {
        let a = parse("--samples 100,200 -n 5 --cores 1,2 --mode both --seed 9").unwrap();
        assert_eq!(a.samples, vec![100, 200]);
        assert_eq!(a.vars, vec![5]);
        assert_eq!(a.cores, vec![1, 2]);
        assert_eq!(a.mode, Mode::Both);
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse("--bogus 1").is_err());
        assert!(parse("--samples ten").is_err());
        assert!(parse("--mode turbo").is_err());
        assert!(parse("--samples").is_err());
    }

    #[test]
    fn paper_scale_and_out() {
        let a = parse("--paper-scale --out /tmp/x").unwrap();
        assert!(a.paper_scale);
        assert_eq!(a.out_dir.as_deref(), Some("/tmp/x"));
        assert!(!a.metrics);
    }

    #[test]
    fn metrics_switch() {
        assert!(parse("--metrics").unwrap().metrics);
    }

    #[test]
    fn help_is_an_error_with_usage() {
        let e = parse("--help").unwrap_err();
        assert!(e.0.contains("--samples"));
    }
}
