//! Shared harness for the figure-regeneration binaries.
//!
//! Each binary (`fig3`, `fig4`, `fig5`, `repro`) prints the same series the
//! corresponding figure of the paper plots — running time and speedup versus
//! the number of cores — in two modes:
//!
//! * **sim** — the PRAM cost-model simulator (`wfbn-pram`): deterministic,
//!   host-independent, reproduces the paper's 32-core platform shape on any
//!   machine. This is the default and the mode EXPERIMENTS.md records.
//! * **wall** — real threads and `std::time::Instant`. Meaningful only on a
//!   multicore host; on a single-core machine the curves flatten (the
//!   harness prints the host's core count so readers can judge).
//!
//! Run `cargo run -p wfbn-bench --release --bin fig3 -- --help` for options.

#![warn(missing_docs)]

pub mod args;
pub mod cluster_bench;
pub mod runner;
pub mod series;
pub mod serve_bench;

pub use args::HarnessArgs;
pub use runner::{wall_time_median, Mode};
pub use series::{format_markdown_table, Series};
