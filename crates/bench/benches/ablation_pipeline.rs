//! Ablation A2 — barrier two-stage build vs pipelined (barrier-free) build.
//!
//! Under balanced load the barrier costs `O(P)` against `O(mn/P)` work, so
//! the two variants should tie; under skewed partition ownership (range
//! partitioner + Zipf keys) the pipelined variant overlaps draining with
//! encoding and should win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wfbn_core::construct::waitfree_build_with;
use wfbn_core::partition::KeyPartitioner;
use wfbn_core::pipeline::pipelined_build_with;
use wfbn_data::{Dataset, Generator, Schema, UniformIndependent, ZipfIndependent};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline-vs-barrier");
    group.sample_size(10);
    let schema = Schema::uniform(24, 2).unwrap();
    let space = schema.state_space_size();
    let p = 4;
    let workloads: [(&str, Dataset, KeyPartitioner); 2] = [
        (
            "uniform-modulo",
            UniformIndependent::new(schema.clone()).generate(50_000, 3),
            KeyPartitioner::modulo(p),
        ),
        (
            "zipf-range",
            ZipfIndependent::new(schema, 1.5)
                .unwrap()
                .generate(50_000, 3),
            KeyPartitioner::range(p, space),
        ),
    ];
    for (name, data, part) in &workloads {
        group.bench_with_input(BenchmarkId::new("two-stage", name), data, |b, d| {
            b.iter(|| black_box(waitfree_build_with(d, *part).unwrap().table.num_entries()));
        });
        group.bench_with_input(BenchmarkId::new("pipelined", name), data, |b, d| {
            b.iter(|| black_box(pipelined_build_with(d, *part).unwrap().table.num_entries()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
