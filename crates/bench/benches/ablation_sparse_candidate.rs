//! Ablation A5 — Friedman-style sparse-candidate pruning for score-based
//! search, driven by the paper's all-pairs MI primitive.
//!
//! The paper (§III): its primitives "yield a parallel and efficient tool to
//! help reduce the search space of other structure learning algorithms",
//! citing the sparse-candidate method. This bench measures greedy BIC hill
//! climbing with and without the top-k MI candidate restriction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wfbn_bn::hillclimb::HillClimber;
use wfbn_bn::repository;
use wfbn_core::allpairs::all_pairs_mi;
use wfbn_core::construct::waitfree_build;

fn bench_sparse_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse-candidate");
    group.sample_size(10);
    let net = repository::insurance_like();
    let data = net.sample(10_000, 7);
    let table = waitfree_build(&data, 4).unwrap().table;
    let mi = all_pairs_mi(&table, 4);

    group.bench_function(BenchmarkId::from_parameter("unrestricted"), |b| {
        b.iter(|| {
            let hc = HillClimber {
                max_moves: 40,
                ..HillClimber::default()
            };
            black_box(hc.learn_from_table(&table, data.schema()).unwrap().score)
        });
    });
    for k in [3usize, 5] {
        let candidates = HillClimber::sparse_candidates(&mi, k);
        group.bench_with_input(BenchmarkId::new("top-k", k), &candidates, |b, cand| {
            b.iter(|| {
                let hc = HillClimber {
                    max_moves: 40,
                    candidates: Some(cand.clone()),
                    ..HillClimber::default()
                };
                black_box(hc.learn_from_table(&table, data.schema()).unwrap().score)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_candidates);
criterion_main!(benches);
