//! Ablation A3 — the full baseline ladder at one configuration.
//!
//! Separates the two properties the wait-free design combines: *no locks*
//! (the atomic-array baseline also has that) and *no sharing* (only the
//! wait-free/pipelined builders have that).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wfbn_baselines::all_builders;
use wfbn_data::{Generator, Schema, UniformIndependent};

fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline-ladder");
    group.sample_size(10);
    // Key space 2^20 so the dense atomic-array baseline participates.
    let data = UniformIndependent::new(Schema::uniform(20, 2).unwrap()).generate(50_000, 11);
    let p = 4;
    for builder in all_builders() {
        group.bench_with_input(
            BenchmarkId::from_parameter(builder.name()),
            &data,
            |b, d| {
                b.iter(|| black_box(builder.build(d, p).unwrap().num_entries()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ladder);
criterion_main!(benches);
