//! Criterion micro-benchmarks for the parallel marginalization primitive
//! (Algorithm 3): thread scaling and marginal-set width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wfbn_core::construct::waitfree_build;
use wfbn_core::marginal::marginalize;
use wfbn_core::potential::PotentialTable;
use wfbn_data::{Generator, Schema, UniformIndependent};

fn table(n: usize, m: usize, p: usize) -> PotentialTable {
    let data = UniformIndependent::new(Schema::uniform(n, 2).unwrap()).generate(m, 42);
    waitfree_build(&data, p).unwrap().table
}

fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("marginalization-threads");
    group.sample_size(10);
    let t = table(24, 100_000, 8);
    for &p in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &t, |b, t| {
            b.iter(|| black_box(marginalize(t, &[3, 17], p).unwrap().sum()));
        });
    }
    group.finish();
}

fn bench_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("marginalization-width");
    group.sample_size(10);
    let t = table(24, 100_000, 4);
    let var_sets: [&[usize]; 4] = [&[0], &[0, 12], &[0, 8, 16], &[0, 6, 12, 18]];
    for vars in var_sets {
        group.bench_with_input(BenchmarkId::from_parameter(vars.len()), &vars, |b, vars| {
            b.iter(|| black_box(marginalize(&t, vars, 4).unwrap().sum()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threads, bench_width);
criterion_main!(benches);
