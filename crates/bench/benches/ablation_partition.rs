//! Ablation A1 — key-partitioner choice under uniform vs skewed keys.
//!
//! DESIGN.md: the paper's `key % P` partitioner assumes keys spread evenly;
//! Zipf-skewed state distributions concentrate keys near zero, which is
//! adversarial for a contiguous `range` partitioner (everything lands on
//! core 0) but fine for `modulo` and `hashed`. This bench measures real
//! build times; the companion statistic (stage-2 drain imbalance) is
//! asserted in the test suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wfbn_core::construct::waitfree_build_with;
use wfbn_core::partition::KeyPartitioner;
use wfbn_data::{Dataset, Generator, Schema, UniformIndependent, ZipfIndependent};

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);
    let schema = Schema::uniform(24, 2).unwrap();
    let space = schema.state_space_size();
    let workloads: [(&str, Dataset); 2] = [
        (
            "uniform",
            UniformIndependent::new(schema.clone()).generate(50_000, 7),
        ),
        (
            "zipf",
            ZipfIndependent::new(schema, 1.5)
                .unwrap()
                .generate(50_000, 7),
        ),
    ];
    let p = 4;
    for (workload_name, data) in &workloads {
        for (part_name, part) in [
            ("modulo", KeyPartitioner::modulo(p)),
            ("range", KeyPartitioner::range(p, space)),
            ("hashed", KeyPartitioner::hashed(p)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(part_name.to_string(), workload_name),
                data,
                |b, d| {
                    b.iter(|| {
                        black_box(
                            waitfree_build_with(d, part)
                                .unwrap()
                                .stats
                                .drain_imbalance(),
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
