//! Criterion micro-benchmarks for table construction (Figures 3/4 at
//! laptop scale): sequential vs wait-free vs striped-lock vs pipelined,
//! across thread counts and input sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wfbn_baselines::striped::StripedLockBuilder;
use wfbn_core::construct::{sequential_build, waitfree_build};
use wfbn_core::pipeline::pipelined_build;
use wfbn_data::{Dataset, Generator, Schema, UniformIndependent};

fn workload(n: usize, m: usize) -> Dataset {
    UniformIndependent::new(Schema::uniform(n, 2).unwrap()).generate(m, 42)
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for &m in &[20_000usize, 80_000] {
        let data = workload(30, m);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("sequential", m), &data, |b, d| {
            b.iter(|| black_box(sequential_build(d).unwrap().table.num_entries()));
        });
        for &p in &[2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("wait-free-p{p}"), m),
                &data,
                |b, d| {
                    b.iter(|| black_box(waitfree_build(d, p).unwrap().table.num_entries()));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("pipelined-p{p}"), m),
                &data,
                |b, d| {
                    b.iter(|| black_box(pipelined_build(d, p).unwrap().table.num_entries()));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("striped-lock-p{p}"), m),
                &data,
                |b, d| {
                    let builder = StripedLockBuilder::default();
                    b.iter(|| black_box(builder.build_map(d, p).unwrap().num_stripes()));
                },
            );
        }
    }
    group.finish();
}

fn bench_vs_variables(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction-vs-n");
    group.sample_size(10);
    for &n in &[30usize, 40, 50] {
        let data = workload(n, 30_000);
        group.bench_with_input(BenchmarkId::new("wait-free-p4", n), &data, |b, d| {
            b.iter(|| black_box(waitfree_build(d, 4).unwrap().table.num_entries()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_vs_variables);
criterion_main!(benches);
