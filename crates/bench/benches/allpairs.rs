//! Criterion micro-benchmarks for all-pairs mutual information (Figure 5
//! at laptop scale), including the pair-parallel vs fused-scan ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wfbn_core::allpairs::{all_pairs_mi, all_pairs_mi_fused};
use wfbn_core::construct::waitfree_build;
use wfbn_core::potential::PotentialTable;
use wfbn_data::{Generator, Schema, UniformIndependent};

fn table(n: usize, m: usize) -> PotentialTable {
    let data = UniformIndependent::new(Schema::uniform(n, 2).unwrap()).generate(m, 42);
    waitfree_build(&data, 4).unwrap().table
}

fn bench_allpairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("all-pairs-mi");
    group.sample_size(10);
    for &n in &[16usize, 24, 32] {
        let t = table(n, 20_000);
        for &p in &[1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("pair-parallel-p{p}"), n),
                &t,
                |b, t| {
                    b.iter(|| black_box(all_pairs_mi(t, p).get(0, 1)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("fused-scan-p{p}"), n),
                &t,
                |b, t| {
                    b.iter(|| black_box(all_pairs_mi_fused(t, p).get(0, 1)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allpairs);
criterion_main!(benches);
