//! Cross-validates the layout estimator against rustc's own layouts.
//!
//! The `layout` gate reasons from a conservative, source-derived size/offset
//! model ([`wfbn_analyze::layout`]); this test pins that model to reality:
//! for every struct declared in `analysis/layout.toml`, every offset the
//! estimator claims to know must equal `core::mem::offset_of!`, and every
//! size it claims to know must equal `core::mem::size_of`. The rustc side
//! comes from each crate's `layout_probes()` (structs like `Segment` are
//! private; the probe exports name → size → field offsets without widening
//! the API). A declared struct with no probe fails too, so the probe list
//! cannot silently fall behind the table.

use std::collections::BTreeMap;
use std::path::PathBuf;
use wfbn_analyze::config::Layout;

type Probe = (&'static str, usize, Vec<(&'static str, usize)>);

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The same const-resolution rule as `gate_layout`: prefer the scanned
/// default-build definition (highest cfg-preference score), then let
/// `[consts]` pins win.
fn resolve_consts(inv: &wfbn_analyze::scan::Inventory, cfg: &Layout) -> BTreeMap<String, u64> {
    let mut best: BTreeMap<&str, (u64, u8)> = BTreeMap::new();
    for c in &inv.consts {
        match best.get(c.name.as_str()) {
            Some((_, s)) if *s >= c.score => {}
            _ => {
                best.insert(&c.name, (c.value, c.score));
            }
        }
    }
    let mut consts: BTreeMap<String, u64> =
        best.iter().map(|(k, (v, _))| ((*k).to_owned(), *v)).collect();
    for (name, v) in &cfg.consts {
        consts.insert(name.clone(), *v);
    }
    consts
}

#[test]
fn estimator_matches_rustc_for_every_declared_struct() {
    let root = workspace_root();
    let inv = wfbn_analyze::scan_only(&root).expect("workspace scans");
    let cfg = Layout::load(&root.join("analysis/layout.toml")).expect("layout.toml parses");
    assert!(
        !cfg.structs.is_empty(),
        "analysis/layout.toml declares structs (the gate is live)"
    );
    let consts = resolve_consts(&inv, &cfg);

    let probes: Vec<Probe> = wfbn_concurrent::spsc::layout_probes()
        .into_iter()
        .chain(wfbn_concurrent::barrier::layout_probes())
        .chain(wfbn_obs::metrics::layout_probes())
        .collect();

    let mut checked_offsets = 0usize;
    let mut checked_sizes = 0usize;
    for decl in &cfg.structs {
        let site = inv
            .structs
            .iter()
            .find(|s| s.file == decl.file && s.name == decl.name)
            .unwrap_or_else(|| panic!("declared struct `{}` found in scan", decl.name));
        let (_, real_size, real_fields) = probes
            .iter()
            .find(|(n, _, _)| *n == decl.name)
            .unwrap_or_else(|| panic!("`{}` has a layout_probes() entry", decl.name));

        let est = wfbn_analyze::layout::estimate(site, &consts);
        assert_eq!(
            est.fields.len(),
            real_fields.len(),
            "`{}`: probe lists every field",
            decl.name
        );
        for (fe, (real_name, real_off)) in est.fields.iter().zip(real_fields) {
            assert_eq!(&fe.name, real_name, "`{}`: field order", decl.name);
            if let Some(off) = fe.offset {
                assert_eq!(
                    off, *real_off as u64,
                    "`{}`.`{}`: estimated offset vs rustc",
                    decl.name, fe.name
                );
                checked_offsets += 1;
            }
        }
        if let Some(size) = est.size {
            assert_eq!(
                size, *real_size as u64,
                "`{}`: estimated size vs rustc",
                decl.name
            );
            checked_sizes += 1;
        }
    }
    // The estimator must actually commit to something — all-unknown would
    // pass the comparisons above vacuously while gutting the pair rule.
    assert!(
        checked_offsets >= 10,
        "estimator knows at least 10 declared offsets (got {checked_offsets})"
    );
    assert!(
        checked_sizes >= 3,
        "estimator knows at least 3 declared sizes (got {checked_sizes})"
    );
}
