//! Property tests for the scanner's token discipline: decoy `unsafe` /
//! `fetch_*` / `Ordering::SeqCst` spellings inside comments, doc comments,
//! strings, raw strings, byte strings, generics, and lifetime/char
//! ambiguities must never register — while every *real* unsafe item and
//! atomic op interleaved among them is counted exactly once, on exactly the
//! right line.

use proptest::prelude::*;
use wfbn_analyze::scan::{scan_file, Ctx};

/// Noise chunks: each contains at least one decoy token that a naive
/// text-grep scanner would miscount. `{i}` is replaced by the chunk index
/// so generated items never collide.
const NOISE: &[&str] = &[
    "// unsafe fetch_add(1, Ordering::SeqCst) in a line comment\n",
    "/* unsafe /* nested: x.fetch_add(1, Ordering::SeqCst) */ still comment */\n",
    "/// doc: `unsafe { x.fetch_add(1, Ordering::SeqCst) }`\nfn doc_decoy_{i}() {}\n",
    "static S_{i}: &str = \"unsafe { brace in string } x.fetch_add(1, Ordering::SeqCst)\";\n",
    "static R_{i}: &str = r#\"raw \"unsafe\" Ordering::SeqCst fetch_add\"#;\n",
    "static B_{i}: &[u8] = br#\"unsafe fetch_add Ordering::SeqCst\"#;\n",
    "fn generic_{i}<T: Into<Vec<u8>>>(t: T) -> Option<Vec<u8>> { Some(t.into()) }\n",
    "fn life_{i}<'a>(x: &'a str) -> char { let _ = x; 'u' }\n",
    "fn cmp_{i}(o: core::cmp::Ordering) -> bool { o == core::cmp::Ordering::Less }\n",
];

#[derive(Debug, Clone)]
enum Chunk {
    Noise(usize),
    RealUnsafe,
    RealAtomic,
}

fn chunk() -> impl Strategy<Value = Chunk> {
    // The vendored proptest subset has no `prop_oneof`; a selector range
    // does the same job. Indices past NOISE alternate the two real kinds,
    // giving roughly a 3:1 noise-to-real mix.
    (0..NOISE.len() + 6).prop_map(|n| match n.checked_sub(NOISE.len()) {
        None => Chunk::Noise(n),
        Some(r) if r % 2 == 0 => Chunk::RealUnsafe,
        Some(_) => Chunk::RealAtomic,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decoys_never_register_and_real_sites_count_exactly(
        chunks in prop::collection::vec(chunk(), 0..40)
    ) {
        let mut src = String::from("use core::sync::atomic::{AtomicUsize, Ordering};\n");
        let mut line = 2u32; // next line to be written
        let mut expect_unsafe_lines = Vec::new();
        let mut expect_atomic_lines = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            let text = match c {
                Chunk::Noise(n) => NOISE[*n].replace("{i}", &i.to_string()),
                Chunk::RealUnsafe => {
                    // SAFETY comment on `line`, the unsafe fn on `line + 1`.
                    expect_unsafe_lines.push(line + 1);
                    format!("// SAFETY: property-test scaffold\nunsafe fn real_unsafe_{i}() {{}}\n")
                }
                Chunk::RealAtomic => {
                    expect_atomic_lines.push(line);
                    format!("fn real_atomic_{i}(x: &AtomicUsize) -> usize {{ x.load(Ordering::Acquire) }}\n")
                }
            };
            line += u32::try_from(text.matches('\n').count()).expect("chunks are small");
            src.push_str(&text);
        }

        let inv = scan_file(&src, "prop.rs", "prop-crate", Ctx::Src);

        let atomic_lines: Vec<u32> = inv.atomics.iter().map(|a| a.line).collect();
        prop_assert_eq!(
            atomic_lines, expect_atomic_lines,
            "atomic sites must be exactly the real ops, line-precise"
        );
        for a in &inv.atomics {
            prop_assert_eq!(a.op.as_str(), "load");
            prop_assert_eq!(a.orderings.as_slice(), ["Acquire"]);
            prop_assert_eq!(a.receiver.as_str(), "x");
        }

        let unsafe_lines: Vec<u32> = inv.unsafes.iter().map(|u| u.line).collect();
        prop_assert_eq!(
            unsafe_lines, expect_unsafe_lines,
            "unsafe sites must be exactly the real items, line-precise"
        );
        for u in &inv.unsafes {
            prop_assert!(u.documented, "adjacent SAFETY comment must be seen");
        }
    }

    #[test]
    fn pure_noise_yields_an_empty_inventory(
        picks in prop::collection::vec(0..NOISE.len(), 1..30)
    ) {
        let mut src = String::new();
        for (i, n) in picks.iter().enumerate() {
            src.push_str(&NOISE[*n].replace("{i}", &i.to_string()));
        }
        let inv = scan_file(&src, "noise.rs", "prop-crate", Ctx::Src);
        prop_assert!(inv.atomics.is_empty(), "decoy atomic registered: {:?}", inv.atomics);
        prop_assert!(inv.unsafes.is_empty(), "decoy unsafe registered: {:?}", inv.unsafes);
    }
}

/// Decoy chunks for the loop scanner: every one spells `wf-bound:`, a loop
/// keyword, or a blocking-construct name somewhere a real scanner must not
/// look — strings, raw strings, block comments and doc prose attached to
/// non-loop items.
const LOOP_NOISE: &[&str] = &[
    "static W_{i}: &str = \"// wf-bound: iters(8) in a string\";\n",
    "static WR_{i}: &str = r#\"wf-bound: backlog(q) while loop spin_loop()\"#;\n",
    "/* wf-bound: rendezvous(P) in a block comment, not adjacent to a loop */\nfn wf_gap_{i}() {}\n",
    "/// doc prose: `// wf-bound: iters(4)` and `loop {{ spin_loop() }}`\nfn wf_doc_{i}() {}\n",
    "static M_{i}: &str = \"std::sync::Mutex::new park sleep thread::park\";\n",
];

#[derive(Debug, Clone)]
enum LoopChunk {
    Noise(usize),
    BareLoop,
    BoundLoop,
}

fn loop_chunk() -> impl Strategy<Value = LoopChunk> {
    (0..LOOP_NOISE.len() + 4).prop_map(|n| match n.checked_sub(LOOP_NOISE.len()) {
        None => LoopChunk::Noise(n),
        Some(r) if r % 2 == 0 => LoopChunk::BareLoop,
        Some(_) => LoopChunk::BoundLoop,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wf_bound_decoys_never_annotate_and_real_loops_scan_exactly(
        chunks in prop::collection::vec(loop_chunk(), 0..40)
    ) {
        let mut src = String::new();
        let mut line = 1u32;
        // (line, expected bound) per real poll loop, in order.
        let mut expect: Vec<(u32, Option<&str>)> = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            let text = match c {
                LoopChunk::Noise(n) => LOOP_NOISE[*n].replace("{i}", &i.to_string()),
                LoopChunk::BareLoop => {
                    expect.push((line, None));
                    format!("fn drain_{i}(q: &mut Q) {{ while q.try_pop().is_some() {{}} }}\n")
                }
                LoopChunk::BoundLoop => {
                    expect.push((line, Some("iters(3)")));
                    format!(
                        "fn drain_b_{i}(q: &mut Q) {{ while q.try_pop().is_some() {{}} }} \
                         // wf-bound: iters(3)\n"
                    )
                }
            };
            line += u32::try_from(text.matches('\n').count()).expect("chunks are small");
            src.push_str(&text);
        }

        let inv = scan_file(&src, "prop.rs", "prop-crate", Ctx::Src);

        let got: Vec<(u32, Option<&str>)> = inv
            .loops
            .iter()
            .map(|l| (l.line, l.bound.as_deref()))
            .collect();
        prop_assert_eq!(
            got, expect,
            "loop sites must be exactly the real poll loops, line-precise, \
             with only adjacent annotations attached"
        );
        for l in &inv.loops {
            prop_assert!(
                l.calls.iter().any(|(name, _)| name == "try_pop"),
                "the polled method must be recorded: {:?}",
                l.calls
            );
        }
        prop_assert!(
            inv.blocking.is_empty(),
            "decoy blocking construct registered: {:?}",
            inv.blocking
        );
    }
}
