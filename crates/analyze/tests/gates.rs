//! Negative-control tests: one fixture per gate under `fixtures/`, each a
//! miniature workspace (`crates/demo` + `analysis/` configs) seeded with
//! exactly one violation. Every test asserts the *precise* culprit — gate
//! name, file, and 1-based line — so a scanner regression that still
//! "fails somewhere" cannot pass. The `clean` fixture is the positive
//! control: identical structure, zero diagnostics.

use std::path::PathBuf;
use wfbn_analyze::{check_root, gates::Diag};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn check(name: &str) -> Vec<Diag> {
    check_root(&fixture(name)).unwrap_or_else(|e| panic!("fixture `{name}` failed to load: {e}"))
}

/// Asserts the fixture yields exactly one diagnostic and returns it.
fn sole_diag(name: &str) -> Diag {
    let diags = check(name);
    assert_eq!(
        diags.len(),
        1,
        "fixture `{name}` must produce exactly its seeded violation, got: {:#?}",
        diags
    );
    diags.into_iter().next().expect("len checked above")
}

#[test]
fn clean_fixture_passes_all_gates() {
    let diags = check("clean");
    assert!(
        diags.is_empty(),
        "the clean fixture is the positive control; diags: {diags:#?}"
    );
}

#[test]
fn stray_rmw_in_hot_crate_fails_waitfree_gate() {
    let d = sole_diag("stray_rmw");
    assert_eq!(d.gate, "waitfree");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 34, "culprit is the fetch_add in bump()");
    assert!(d.msg.contains("fetch_add"), "msg names the op: {}", d.msg);
    assert!(d.msg.contains("demo-core"), "msg names the crate: {}", d.msg);
}

#[test]
fn seqcst_ordering_fails_waitfree_gate() {
    let d = sole_diag("seqcst");
    assert_eq!(d.gate, "waitfree");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 34, "culprit is the SeqCst load in total()");
    assert!(d.msg.contains("SeqCst"), "msg names the ordering: {}", d.msg);
}

#[test]
fn second_writer_role_fails_hb_gate() {
    let d = sole_diag("two_writer");
    assert_eq!(d.gate, "hb");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 35, "culprit is hijack()'s Release store");
    assert!(
        d.msg.contains("intruder") && d.msg.contains("owner"),
        "msg names both the annotated and the declared writer: {}",
        d.msg
    );
}

#[test]
fn release_store_without_map_edge_fails_hb_gate() {
    let d = sole_diag("orphan_release");
    assert_eq!(d.gate, "hb");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 35, "culprit is leak()'s orphan Release store");
    assert!(
        d.msg.contains("no edge"),
        "msg says the map is missing the pair: {}",
        d.msg
    );
}

#[test]
fn map_edge_without_code_fails_hb_gate_at_the_map_line() {
    let d = sole_diag("stale_edge");
    assert_eq!(d.gate, "hb");
    assert_eq!(
        d.file, "analysis/hb_map.toml",
        "a stale edge is a *config* culprit"
    );
    assert_eq!(d.line, 8, "culprit is the ghost [[edge]] header");
    assert!(d.msg.contains("ghost"), "msg names the field: {}", d.msg);
}

#[test]
fn safety_comment_separated_by_code_fails_safety_gate() {
    // The seeded pattern is exactly the old 6-line-lookback heuristic's
    // false accept: a SAFETY comment within the window but attached to a
    // *different* item, with code in between.
    let d = sole_diag("undoc_unsafe");
    assert_eq!(d.gate, "safety");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 35, "culprit is the undocumented `unsafe impl Send`");
    assert!(
        d.msg.contains("unsafe impl"),
        "msg names the item kind: {}",
        d.msg
    );
}

#[test]
fn atomic_op_absent_from_lock_fails_ratchet_gate() {
    let d = sole_diag("unlisted_atomic");
    assert_eq!(d.gate, "ratchet");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 24, "culprit is the first site of the drifted signature");
    assert!(
        d.msg.contains("x1") && d.msg.contains("x2"),
        "msg shows both sides of the drift: {}",
        d.msg
    );
}

#[test]
fn diag_display_is_file_line_precise() {
    let d = sole_diag("stray_rmw");
    let rendered = d.to_string();
    assert!(
        rendered.starts_with("[waitfree] crates/demo/src/lib.rs:34: "),
        "diagnostics must render as [gate] file:line: msg, got: {rendered}"
    );
}

#[test]
fn unannotated_poll_loop_fails_waitloop_gate() {
    let d = sole_diag("unbounded_spin");
    assert_eq!(d.gate, "waitloop");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 46, "culprit is drain()'s bare `while try_pop` poll loop");
    assert!(
        d.msg.contains("wf-bound") && d.msg.contains("try_pop"),
        "msg names the missing annotation and the polled method: {}",
        d.msg
    );
}

#[test]
fn mutex_on_hot_path_fails_noblock_gate() {
    let d = sole_diag("blocking_mutex");
    assert_eq!(d.gate, "noblock");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 55, "culprit is total_locked()'s Mutex::new");
    assert!(
        d.msg.contains("Mutex") && d.msg.contains("demo-core"),
        "msg names the construct and the crate: {}",
        d.msg
    );
}

#[test]
fn acquire_load_without_release_store_fails_hb_gate() {
    let d = sole_diag("orphan_acquire");
    assert_eq!(d.gate, "hb");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 20, "culprit is read()'s now-one-legged Acquire load");
    assert!(
        d.msg.contains("orphan Acquire") && d.msg.contains("word"),
        "msg names the shape and the field: {}",
        d.msg
    );
}

#[test]
fn loop_declaration_without_code_fails_waitloop_gate_at_the_table_line() {
    let d = sole_diag("stale_loop_bound");
    assert_eq!(d.gate, "waitloop");
    assert_eq!(
        d.file, "analysis/progress.toml",
        "a stale declaration is a *config* culprit"
    );
    assert_eq!(d.line, 12, "culprit is the ghost [[loop]] header");
    assert!(
        d.msg.contains("iters(8)"),
        "msg names the undeclared bound: {}",
        d.msg
    );
}

#[test]
fn different_writer_roles_on_one_line_fail_layout_gate() {
    let d = sole_diag("false_sharing");
    assert_eq!(d.gate, "layout");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 9, "culprit is the later field of the sharing pair (`count`)");
    assert!(
        d.msg.contains("owner") && d.msg.contains("intruder") && d.msg.contains("CachePadded"),
        "msg names both roles and the fix: {}",
        d.msg
    );
    assert!(
        d.msg.contains("offsets 0 and 8"),
        "msg carries the estimated offsets: {}",
        d.msg
    );
}

#[test]
fn padding_drift_fails_layout_gate_at_the_table_line() {
    let d = sole_diag("unpadded_two_writer");
    assert_eq!(d.gate, "layout");
    assert_eq!(
        d.file, "analysis/layout.toml",
        "a table promising padding the code lacks is a *config* culprit"
    );
    assert_eq!(d.line, 9, "culprit is the [[struct]] header of the drifted entry");
    assert!(
        d.msg.contains("`count`") && d.msg.contains("padded"),
        "msg names the drifted field: {}",
        d.msg
    );
}

#[test]
fn covered_site_without_model_annotation_fails_modelcov_gate() {
    let d = sole_diag("unmodeled_atomic");
    assert_eq!(d.gate, "modelcov");
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 32, "culprit is tick()'s unannotated count.store");
    assert!(
        d.msg.contains("count.store") && d.msg.contains("loom-model"),
        "msg names the site and the missing annotation: {}",
        d.msg
    );
}

#[test]
fn model_declaration_without_test_fails_modelcov_gate_at_the_table_line() {
    let d = sole_diag("stale_model");
    assert_eq!(d.gate, "modelcov");
    assert_eq!(
        d.file, "analysis/coverage.toml",
        "a [[model]] naming a nonexistent #[test] is a *config* culprit"
    );
    assert_eq!(d.line, 13, "culprit is the ghost [[model]] header");
    assert!(
        d.msg.contains("ghost_model_never_written"),
        "msg names the ghost test: {}",
        d.msg
    );
}

#[test]
fn changed_since_filtering_is_one_code_path_for_every_gate() {
    use std::collections::BTreeSet;
    use wfbn_analyze::{filter_changed, sarif};
    // One source-culprit and one config-culprit diag per SARIF rule: after
    // filtering on the source file, exactly the source culprits survive —
    // no gate gets bespoke treatment.
    let mk = |gate: &'static str, file: &str| Diag {
        gate,
        file: file.to_owned(),
        line: 1,
        msg: String::new(),
    };
    let mut diags: Vec<Diag> = sarif::RULES
        .iter()
        .flat_map(|(id, _)| [mk(id, "crates/demo/src/lib.rs"), mk(id, "analysis/ghost.toml")])
        .collect();
    let changed: BTreeSet<String> = [String::from("crates/demo/src/lib.rs")].into();
    filter_changed(&mut diags, &changed);
    assert_eq!(
        diags.len(),
        sarif::RULES.len(),
        "one surviving diag per gate (the source culprit)"
    );
    assert!(diags.iter().all(|d| d.file == "crates/demo/src/lib.rs"));
    let gates: Vec<&str> = diags.iter().map(|d| d.gate).collect();
    let rules: Vec<&str> = sarif::RULES.iter().map(|(id, _)| *id).collect();
    assert_eq!(gates, rules, "every SARIF rule id flowed through the filter");
}
