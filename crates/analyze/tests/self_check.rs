//! The analyzer applied to its own workspace: the shipped tree must pass
//! all four gates. Because this runs under plain `cargo test`, editing
//! `analysis/hb_map.toml` to drop a real edge, removing an `hb-writer`
//! annotation, or adding an atomic site without re-baselining
//! `analysis/atomics.lock` turns tier-1 CI red — not just the dedicated
//! `analyze` workflow leg.

use std::path::Path;
use wfbn_analyze::check_root;

#[test]
fn workspace_passes_all_gates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels below the workspace root");
    let diags = check_root(root).expect("workspace configs must load");
    assert!(
        diags.is_empty(),
        "the shipped tree must be gate-clean; run `cargo run -p wfbn-analyze -- check`:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
