//! Analyzer fixture: a single-writer flag with one hb edge.
use std::sync::atomic::{AtomicUsize, Ordering};

/// A published word with exactly one writer role.
pub struct Flag {
    word: AtomicUsize,
    count: AtomicUsize,
}

impl Flag {
    /// Publishes `v` (the `owner` role's only store).
    pub fn publish(&self, v: usize) {
        // hb-writer: owner
        self.word.store(v, Ordering::Release);
    }

    /// Reads the published word.
    pub fn read(&self) -> usize {
        self.word.load(Ordering::Acquire)
    }

    /// Single-writer bookkeeping, no synchronization carried.
    pub fn tick(&self) {
        let v = self.count.load(Ordering::Relaxed);
        // SAFETY: fixture demo of a documented unsafe block; no-op cast.
        let _p = unsafe { *(&raw const v) };
        self.count.store(v + 1, Ordering::Relaxed);
    }
}

impl Flag {
    /// Seeded violation: atomic site not in analysis/atomics.lock.
    pub fn sneak(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}
