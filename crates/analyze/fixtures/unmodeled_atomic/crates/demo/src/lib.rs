//! Analyzer fixture: one covered atomic site is missing its loom model.
use std::sync::atomic::{AtomicUsize, Ordering};

/// A published word with exactly one writer role (`repr(C)` so the
/// ownership table in analysis/layout.toml reasons over declared order).
#[repr(C)]
pub struct Flag {
    word: AtomicUsize,
    count: AtomicUsize,
}

impl Flag {
    /// Publishes `v` (the `owner` role's only store).
    pub fn publish(&self, v: usize) {
        // hb-writer: owner
        // loom-model: word_publish_is_seen
        self.word.store(v, Ordering::Release);
    }

    /// Reads the published word.
    pub fn read(&self) -> usize {
        // loom-model: word_publish_is_seen
        self.word.load(Ordering::Acquire)
    }

    /// Single-writer bookkeeping, no synchronization carried.
    pub fn tick(&self) {
        // loom-model: word_publish_is_seen
        let v = self.count.load(Ordering::Relaxed);
        // SAFETY: fixture demo of a documented unsafe block; no-op cast.
        let _p = unsafe { *(&raw const v) };
        self.count.store(v + 1, Ordering::Relaxed);
    }
}

/// A tiny committed-backlog queue (fixture stand-in for the SPSC lane).
pub struct Queue {
    items: Vec<usize>,
}

impl Queue {
    /// Pops the oldest committed element.
    pub fn try_pop(&mut self) -> Option<usize> {
        self.items.pop()
    }
}

/// Drains the committed backlog (the fixture's bounded poll loop).
pub fn drain(q: &mut Queue) -> usize {
    let mut n = 0;
    // wf-bound: backlog(visible) — each pop removes one committed element.
    while q.try_pop().is_some() {
        n += 1;
    }
    n
}
