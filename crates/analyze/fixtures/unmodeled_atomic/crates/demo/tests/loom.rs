//! Fixture loom suite: the model every `loom-model:` annotation names.

#[test]
fn word_publish_is_seen() {
    // Fixture stand-in for an exhaustive loom exploration.
}
