//! Conservative struct-layout estimator for the `layout` gate.
//!
//! Computes sizes and `#[repr(C)]` field offsets for the type shapes the
//! hot-path crates actually use: atomics, primitives, pointers,
//! `CachePadded<T>`, transparent cells (`UnsafeCell`/`MaybeUninit`/`Cell`/
//! `ManuallyDrop`), and fixed arrays whose length is a literal or a
//! workspace constant. Anything else estimates to *unknown*, which the
//! gate treats pessimistically (an unknown-extent field may share a cache
//! line with any neighbour).
//!
//! Two facts make the estimates sound rather than heuristic:
//!
//! 1. The gate requires declared structs to be `#[repr(C)]`, so field
//!    order and the offset formula (`round_up(offset, align)`) are
//!    guaranteed by the language, not by rustc's whims.
//! 2. `CachePadded<T>` is `#[repr(align(128))]`, and Rust guarantees a
//!    type's size is a multiple of its alignment — so a padded field
//!    always starts *and* ends on a 128-byte boundary, isolating it from
//!    every cache line its neighbours can occupy (for any line size that
//!    divides 128) even when its inner size is unknown.
//!
//! The estimator is cross-validated against `core::mem::size_of` /
//! `offset_of!` by `tests/layout_check.rs`, which compares every struct
//! declared in `analysis/layout.toml` against a compiled-in probe.

use crate::lexer::{lex, TokKind};
use crate::scan::{int_lit, StructSite};
use std::collections::BTreeMap;

/// Size/alignment estimate for one type expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TyEst {
    /// Size in bytes, `None` when the type is outside the model.
    pub size: Option<u64>,
    /// Alignment in bytes, `None` when unknown.
    pub align: Option<u64>,
    /// Whether the type is (or wraps) a `CachePadded`.
    pub padded: bool,
    /// Whether the type mentions an atomic type anywhere.
    pub atomic: bool,
}

impl TyEst {
    const UNKNOWN: TyEst = TyEst {
        size: None,
        align: None,
        padded: false,
        atomic: false,
    };

    const fn scalar(size: u64, atomic: bool) -> TyEst {
        TyEst {
            size: Some(size),
            align: Some(size),
            padded: false,
            atomic,
        }
    }
}

/// One field's estimate within a [`StructEst`].
#[derive(Debug, Clone)]
pub struct FieldEst {
    /// Field name.
    pub name: String,
    /// 1-based source line of the field.
    pub line: u32,
    /// The field's type text as scanned.
    pub ty: String,
    /// The type's estimate.
    pub est: TyEst,
    /// `#[repr(C)]` offset from the struct start, when computable.
    pub offset: Option<u64>,
}

/// Whole-struct estimate.
#[derive(Debug, Clone)]
pub struct StructEst {
    /// Struct name.
    pub name: String,
    /// Whether the definition carries `#[repr(C)]`.
    pub repr_c: bool,
    /// Per-field estimates, in declaration order.
    pub fields: Vec<FieldEst>,
    /// Total size (with trailing padding), when every field is known.
    pub size: Option<u64>,
}

const fn round_up(x: u64, align: u64) -> u64 {
    x.div_ceil(align) * align
}

/// `CachePadded`'s `#[repr(align(N))]` value in `wfbn_concurrent::pad`.
pub const CACHE_PAD_ALIGN: u64 = 128;

/// Estimates the `#[repr(C)]` layout of a scanned struct. `consts` maps
/// workspace constant names to values (for array lengths).
pub fn estimate(site: &StructSite, consts: &BTreeMap<String, u64>) -> StructEst {
    let mut fields = Vec::new();
    let mut offset = Some(0u64);
    let mut max_align = Some(1u64);
    for f in &site.fields {
        let est = estimate_ty(&f.ty, consts);
        let field_offset = match (offset, est.align) {
            (Some(o), Some(a)) => Some(round_up(o, a)),
            // A padded field re-anchors at a 128-byte boundary even when a
            // preceding field's extent is unknown — alignment is a property
            // of the field's own type. Its *own* offset stays unknown, but
            // boundary isolation (see `lines_disjoint`) doesn't need it.
            _ => None,
        };
        offset = match (field_offset, est.size) {
            (Some(o), Some(s)) => Some(o + s),
            _ => None,
        };
        max_align = match (max_align, est.align) {
            (Some(m), Some(a)) => Some(m.max(a)),
            _ => None,
        };
        fields.push(FieldEst {
            name: f.name.clone(),
            line: f.line,
            ty: f.ty.clone(),
            est,
            offset: field_offset,
        });
    }
    let size = match (offset, max_align) {
        (Some(o), Some(m)) => Some(round_up(o, m)),
        _ => None,
    };
    StructEst {
        name: site.name.clone(),
        repr_c: site.repr_c,
        fields,
        size,
    }
}

/// True when fields `i` and `j` of `est` can never occupy the same
/// `line_bytes`-sized cache line. Requires `line_bytes` to divide
/// [`CACHE_PAD_ALIGN`] for the padded-field shortcut to hold.
pub fn lines_disjoint(est: &StructEst, i: usize, j: usize, line_bytes: u64) -> bool {
    let (a, b) = (&est.fields[i.min(j)], &est.fields[i.max(j)]);
    if CACHE_PAD_ALIGN % line_bytes == 0 && (a.est.padded || b.est.padded) {
        return true;
    }
    match (a.offset, a.est.size, b.offset) {
        (Some(ao), Some(asz), Some(bo)) if asz > 0 => {
            (ao + asz - 1) / line_bytes < bo / line_bytes
        }
        // Zero-sized `a` occupies no line at all.
        (_, Some(0), _) => true,
        _ => false,
    }
}

/// Estimates one type expression (the scanner's rendered token text).
///
/// The `atomic` flag marks types whose atomics live *inline* in the
/// field's own extent — `Box<AtomicU64>`/`Arc<AtomicU64>` fields are
/// pointers; writes go to the heap, so they neither false-share within
/// the struct nor count toward the discovery rule.
pub fn estimate_ty(ty: &str, consts: &BTreeMap<String, u64>) -> TyEst {
    let lexed = lex(ty);
    parse_ty(&lexed.toks.iter().map(|t| &t.kind).collect::<Vec<_>>(), consts)
}

fn parse_ty(toks: &[&TokKind], consts: &BTreeMap<String, u64>) -> TyEst {
    match toks.first() {
        // `[T; N]` — fixed array.
        Some(TokKind::Punct('[')) => parse_array(toks, consts),
        // References, raw pointers: thin-pointer assumption holds for
        // every sized pointee; the model has no unsized fields.
        Some(TokKind::Punct('&' | '*')) => {
            let inner_start = match toks.get(1) {
                Some(TokKind::Ident(m)) if m == "mut" || m == "const" => 2,
                _ => 1,
            };
            let inner = parse_ty(&toks[inner_start..], consts);
            TyEst {
                size: Some(8),
                align: Some(8),
                padded: false,
                atomic: inner.atomic,
            }
        }
        Some(TokKind::Ident(_)) => parse_path(toks, consts),
        _ => TyEst::UNKNOWN,
    }
}

fn parse_array(toks: &[&TokKind], consts: &BTreeMap<String, u64>) -> TyEst {
    // Split `[ inner ; len ]` at the top-level `;`.
    let mut depth = 0i32;
    let mut semi = None;
    for (k, t) in toks.iter().enumerate().skip(1) {
        match t {
            TokKind::Punct('[' | '(' | '<' | '{') => depth += 1,
            TokKind::Punct(']') if depth == 0 => break,
            TokKind::Punct(']' | ')' | '>' | '}') => depth -= 1,
            TokKind::Punct(';') if depth == 0 => {
                semi = Some(k);
                break;
            }
            _ => {}
        }
    }
    let Some(semi) = semi else { return TyEst::UNKNOWN };
    let inner = parse_ty(&toks[1..semi], consts);
    let len = match toks.get(semi + 1) {
        Some(TokKind::Lit(text)) => int_lit(text),
        Some(TokKind::Ident(name)) => consts.get(name.as_str()).copied(),
        _ => None,
    };
    let size = match (inner.size, inner.align, len) {
        // Array stride is the element size rounded to its alignment;
        // for the model's element types size is already a multiple.
        (Some(s), Some(a), Some(n)) => Some(round_up(s, a.max(1)) * n),
        _ => None,
    };
    TyEst {
        size,
        align: inner.align,
        padded: false,
        atomic: inner.atomic,
    }
}

/// Generic argument tokens of `Name<...>`: the slice between the first
/// top-level `<` and its match, up to the first top-level `,`.
fn first_generic_arg<'a>(toks: &'a [&'a TokKind]) -> Option<&'a [&'a TokKind]> {
    let open = toks.iter().position(|t| **t == TokKind::Punct('<'))?;
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return Some(&toks[open + 1..k]);
                }
            }
            TokKind::Punct(',') if depth == 1 => return Some(&toks[open + 1..k]),
            _ => {}
        }
    }
    None
}

fn parse_path(toks: &[&TokKind], consts: &BTreeMap<String, u64>) -> TyEst {
    // Last path segment before any `<`: `std::sync::atomic::AtomicU64`
    // and `AtomicU64` estimate identically.
    let mut name = "";
    for t in toks {
        match t {
            TokKind::Ident(s) => name = s,
            TokKind::Punct(':') => {}
            _ => break,
        }
    }
    match name {
        "CachePadded" => {
            let inner = first_generic_arg(toks)
                .map(|g| parse_ty(g, consts))
                .unwrap_or(TyEst::UNKNOWN);
            TyEst {
                size: inner
                    .size
                    .map(|s| round_up(s.max(1), CACHE_PAD_ALIGN)),
                align: Some(CACHE_PAD_ALIGN),
                padded: true,
                atomic: inner.atomic,
            }
        }
        // `#[repr(transparent)]` wrappers: layout equals the inner type.
        "UnsafeCell" | "MaybeUninit" | "Cell" | "ManuallyDrop" => first_generic_arg(toks)
            .map(|g| parse_ty(g, consts))
            .unwrap_or(TyEst::UNKNOWN),
        "AtomicBool" | "AtomicU8" | "AtomicI8" => TyEst::scalar(1, true),
        "AtomicU16" | "AtomicI16" => TyEst::scalar(2, true),
        "AtomicU32" | "AtomicI32" => TyEst::scalar(4, true),
        "AtomicU64" | "AtomicI64" | "AtomicUsize" | "AtomicIsize" => TyEst::scalar(8, true),
        "AtomicPtr" => TyEst::scalar(8, true),
        "bool" | "u8" | "i8" => TyEst::scalar(1, false),
        "u16" | "i16" => TyEst::scalar(2, false),
        "u32" | "i32" | "f32" | "char" => TyEst::scalar(4, false),
        "u64" | "i64" | "f64" | "usize" | "isize" => TyEst::scalar(8, false),
        // Thin owning pointers. `Box<[T]>`/`Box<str>`/`Box<dyn ..>` are
        // wide (16 bytes) and estimate to unknown rather than to a wrong 8.
        "Box" | "NonNull" => {
            let head = first_generic_arg(toks).and_then(|g| g.first().copied());
            match head {
                Some(TokKind::Punct('[')) => TyEst::UNKNOWN,
                Some(TokKind::Ident(n)) if n == "str" || n == "dyn" => TyEst::UNKNOWN,
                _ => TyEst::scalar(8, false),
            }
        }
        _ => TyEst::UNKNOWN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_file, Ctx};

    fn consts(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn scalar_and_atomic_sizes() {
        let c = consts(&[]);
        assert_eq!(estimate_ty("AtomicUsize", &c), TyEst::scalar(8, true));
        assert_eq!(estimate_ty("AtomicBool", &c), TyEst::scalar(1, true));
        assert_eq!(estimate_ty("u32", &c), TyEst::scalar(4, false));
        assert_eq!(
            estimate_ty("core::sync::atomic::AtomicU64", &c),
            TyEst::scalar(8, true)
        );
    }

    #[test]
    fn cache_padded_rounds_to_128_and_flags_padded() {
        let c = consts(&[]);
        let e = estimate_ty("CachePadded<AtomicUsize>", &c);
        assert_eq!((e.size, e.align, e.padded, e.atomic), (Some(128), Some(128), true, true));
        // Unknown inner type: size unknown, isolation facts still hold.
        let u = estimate_ty("CachePadded<Weird>", &c);
        assert_eq!((u.size, u.align, u.padded), (None, Some(128), true));
    }

    #[test]
    fn arrays_resolve_lengths_from_literals_and_consts() {
        let c = consts(&[("LAT_BUCKETS", 16)]);
        let e = estimate_ty("[AtomicU64; LAT_BUCKETS]", &c);
        assert_eq!((e.size, e.align, e.atomic), (Some(128), Some(8), true));
        let lit = estimate_ty("[u8; 24]", &c);
        assert_eq!(lit.size, Some(24));
        let unresolved = estimate_ty("[u8; MISSING]", &c);
        assert_eq!(unresolved.size, None);
    }

    #[test]
    fn transparent_cells_and_pointers() {
        let c = consts(&[("SEG_CAP", 512)]);
        let e = estimate_ty("[UnsafeCell<MaybeUninit<u64>>; SEG_CAP]", &c);
        assert_eq!((e.size, e.align), (Some(4096), Some(8)));
        let p = estimate_ty("AtomicPtr<Segment<T>>", &c);
        assert_eq!((p.size, p.atomic), (Some(8), true));
        let generic = estimate_ty("[UnsafeCell<MaybeUninit<T>>; SEG_CAP]", &c);
        assert_eq!(generic.size, None, "generic element defeats the model");
    }

    fn est(src: &str, consts_in: &[(&str, u64)]) -> StructEst {
        let inv = scan_file(src, "lib.rs", "demo", Ctx::Src);
        estimate(&inv.structs[0], &consts(consts_in))
    }

    #[test]
    fn repr_c_offsets_accumulate_with_alignment() {
        let e = est(
            "#[repr(C)] struct S { a: AtomicBool, b: AtomicU64, c: u16 }",
            &[],
        );
        let offs: Vec<Option<u64>> = e.fields.iter().map(|f| f.offset).collect();
        assert_eq!(offs, vec![Some(0), Some(8), Some(16)]);
        assert_eq!(e.size, Some(24));
    }

    #[test]
    fn padded_fields_anchor_at_128() {
        let e = est(
            "#[repr(C)] struct S { head: CachePadded<AtomicUsize>, closed: CachePadded<AtomicBool> }",
            &[],
        );
        assert_eq!(e.fields[0].offset, Some(0));
        assert_eq!(e.fields[1].offset, Some(128));
        assert_eq!(e.size, Some(256));
    }

    #[test]
    fn unknown_field_poisons_following_offsets_only() {
        let e = est("#[repr(C)] struct S { a: u64, w: Weird, b: u64 }", &[]);
        assert_eq!(e.fields[0].offset, Some(0));
        assert_eq!(e.fields[1].offset, None);
        assert_eq!(e.fields[2].offset, None);
        assert_eq!(e.size, None);
    }

    #[test]
    fn disjoint_lines_by_offset_and_by_padding() {
        let near = est("#[repr(C)] struct S { a: AtomicU64, b: AtomicU64 }", &[]);
        assert!(!lines_disjoint(&near, 0, 1, 64), "0..8 and 8..16 share line 0");
        let far = est(
            "#[repr(C)] struct S { a: [u8; 64], b: AtomicU64 }",
            &[],
        );
        assert!(lines_disjoint(&far, 0, 1, 64), "0..64 and 64..72 split at the boundary");
        let padded = est(
            "#[repr(C)] struct S { w: Weird, a: CachePadded<AtomicU64>, b: AtomicU64 }",
            &[],
        );
        assert!(
            lines_disjoint(&padded, 1, 2, 64),
            "padding isolates even after an unknown field"
        );
        assert!(!lines_disjoint(&padded, 0, 2, 64), "unknown extents stay pessimistic");
    }
}
