//! CLI for the static concurrency analyzer.
//!
//! ```text
//! cargo run -p wfbn-analyze -- check      [--root DIR] [--gate NAME]
//!                                         [--format text|sarif]
//!                                         [--changed-since REF]
//! cargo run -p wfbn-analyze -- inventory  [--root DIR] [--json]
//! cargo run -p wfbn-analyze -- baseline   [--root DIR]
//! ```
//!
//! `--format sarif` renders the diagnostics as SARIF 2.1.0 on stdout (for
//! CI upload/annotation); `--changed-since REF` keeps only diagnostics in
//! files `git diff --name-only REF` reports, so a PR leg can annotate its
//! own diff while a separate whole-tree leg keeps full enforcement.
//!
//! Exit codes: 0 clean, 1 gate violations, 2 usage or config errors.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::process::ExitCode;
use wfbn_analyze::scan::Ctx;
use wfbn_analyze::{check, gates, load, ratchet, sarif};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let mut root = PathBuf::from(".");
    let mut gate_filter: Option<String> = None;
    let mut json = false;
    let mut format = String::from("text");
    let mut changed_since: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--gate" => match args.next() {
                Some(g) => gate_filter = Some(g),
                None => return usage(),
            },
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "sarif" => format = f,
                _ => return usage(),
            },
            "--changed-since" => match args.next() {
                Some(r) => changed_since = Some(r),
                None => return usage(),
            },
            "--json" => json = true,
            _ => return usage(),
        }
    }
    // Accept invocation from anywhere inside the workspace: walk up to the
    // directory holding `analysis/` + `crates/`.
    if root.as_os_str() == "." {
        let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        loop {
            if dir.join("analysis").is_dir() && dir.join("crates").is_dir() {
                root = dir;
                break;
            }
            if !dir.pop() {
                break;
            }
        }
    }

    match cmd.as_str() {
        "check" => run_check(&root, gate_filter.as_deref(), &format, changed_since.as_deref()),
        "inventory" => run_inventory(&root, json),
        "baseline" => run_baseline(&root),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: wfbn-analyze <check|inventory|baseline> [--root DIR] [--gate NAME] \
         [--format text|sarif] [--changed-since REF] [--json]"
    );
    ExitCode::from(2)
}

/// Files `git diff --name-only REF` reports, repo-relative with `/`
/// separators (matching the inventory's paths when `root` is the repo
/// root).
fn changed_files(root: &std::path::Path, rev: &str) -> Result<BTreeSet<String>, String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", rev])
        .output()
        .map_err(|e| format!("cannot run git: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --name-only {rev} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().replace('\\', "/"))
        .filter(|l| !l.is_empty())
        .collect())
}

fn run_check(
    root: &std::path::Path,
    gate: Option<&str>,
    format: &str,
    changed_since: Option<&str>,
) -> ExitCode {
    let analysis = match load(root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wfbn-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let mut diags: Vec<gates::Diag> = check(&analysis)
        .into_iter()
        .filter(|d| gate.is_none_or(|g| g == d.gate))
        .collect();
    if let Some(rev) = changed_since {
        let changed = match changed_files(root, rev) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("wfbn-analyze: {e}");
                return ExitCode::from(2);
            }
        };
        let before = diags.len();
        wfbn_analyze::filter_changed(&mut diags, &changed);
        eprintln!(
            "wfbn-analyze: diff mode vs {rev}: {} changed file(s), {} of {before} \
             diagnostic(s) in the diff",
            changed.len(),
            diags.len()
        );
    }
    if format == "sarif" {
        print!("{}", sarif::render(&diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    if diags.is_empty() {
        let scope = gate.unwrap_or("all gates");
        println!(
            "wfbn-analyze: OK ({scope}; {} atomic sites, {} unsafe sites, {} hb edges, \
             {} bounded loops, {} layout structs, {} loom models)",
            analysis.inventory.atomics.len(),
            analysis.inventory.unsafes.len(),
            analysis.hb_map.edges.len(),
            analysis.progress.loops.len(),
            analysis.layout.structs.len(),
            analysis.coverage.models.len(),
        );
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        eprintln!("{d}");
    }
    eprintln!("\nwfbn-analyze: {} violation(s)", diags.len());
    ExitCode::from(1)
}

fn run_inventory(root: &std::path::Path, json: bool) -> ExitCode {
    let inventory = match wfbn_analyze::scan_only(root) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("wfbn-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let inv = &inventory;
    if json {
        print!("{}", inventory_json(inv));
        return ExitCode::SUCCESS;
    }
    println!("# Concurrency inventory\n");
    println!("## Atomic operations ({})\n", inv.atomics.len());
    let mut by_file: BTreeMap<&str, Vec<&wfbn_analyze::scan::AtomicSite>> = BTreeMap::new();
    for s in &inv.atomics {
        by_file.entry(&s.file).or_default().push(s);
    }
    for (file, sites) in &by_file {
        println!("{file}:");
        for s in sites {
            let role = s
                .writer_role
                .as_deref()
                .map(|r| format!(" [hb-writer: {r}]"))
                .unwrap_or_default();
            let model = s
                .model
                .as_deref()
                .map(|m| format!(" [loom-model: {m}]"))
                .unwrap_or_default();
            println!(
                "  {:>5}  {:<4} {}.{}({}){}{}",
                s.line,
                s.ctx.name(),
                s.receiver,
                s.op,
                s.orderings.join(", "),
                role,
                model
            );
        }
    }
    println!("\n## Unsafe sites ({})\n", inv.unsafes.len());
    for u in &inv.unsafes {
        println!(
            "  {}:{}  unsafe {} ({})",
            u.file,
            u.line,
            u.kind,
            if u.documented { "documented" } else { "UNDOCUMENTED" }
        );
    }
    println!("\n## Atomic types\n");
    for (file, counts) in &inv.atomic_types {
        let s: Vec<String> = counts.iter().map(|(t, n)| format!("{t}×{n}")).collect();
        println!("  {file}: {}", s.join(", "));
    }
    let atomic_structs: Vec<&wfbn_analyze::scan::StructSite> = inv
        .structs
        .iter()
        .filter(|s| {
            s.fields
                .iter()
                .any(|f| f.ty.contains("Atomic") || f.ty.contains("CachePadded"))
        })
        .collect();
    println!("\n## Structs holding atomics ({})\n", atomic_structs.len());
    for s in atomic_structs {
        let repr = match (s.repr_c, s.repr_align) {
            (true, Some(a)) => format!(" #[repr(C, align({a}))]"),
            (true, None) => " #[repr(C)]".to_owned(),
            (false, Some(a)) => format!(" #[repr(align({a}))]"),
            (false, None) => String::new(),
        };
        println!("  {}:{}  {}{} ({} fields)", s.file, s.line, s.name, repr, s.fields.len());
        for f in &s.fields {
            println!("    {:>5}  {}: {}", f.line, f.name, f.ty);
        }
    }
    println!("\n## Test functions ({})", inv.tests.len());
    ExitCode::SUCCESS
}

/// Hand-rolled JSON (same policy as wfbn-obs: no serde dependency).
fn inventory_json(inv: &wfbn_analyze::scan::Inventory) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n  \"schema\": \"wfbn-analyze-v1\",\n  \"atomics\": [\n");
    for (i, s) in inv.atomics.iter().enumerate() {
        let sep = if i + 1 == inv.atomics.len() { "" } else { "," };
        let orderings: Vec<String> = s.orderings.iter().map(|o| format!("\"{}\"", esc(o))).collect();
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"crate\": \"{}\", \"ctx\": \"{}\", \
             \"receiver\": \"{}\", \"op\": \"{}\", \"orderings\": [{}]}}{sep}\n",
            esc(&s.file),
            s.line,
            esc(&s.crate_name),
            s.ctx.name(),
            esc(&s.receiver),
            esc(&s.op),
            orderings.join(", "),
        ));
    }
    out.push_str("  ],\n  \"unsafe\": [\n");
    for (i, u) in inv.unsafes.iter().enumerate() {
        let sep = if i + 1 == inv.unsafes.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"documented\": {}}}{sep}\n",
            esc(&u.file),
            u.line,
            u.kind,
            u.documented
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_baseline(root: &std::path::Path) -> ExitCode {
    let (inventory, lock) = match wfbn_analyze::scan_only(root)
        .and_then(|inv| wfbn_analyze::load_lock(root).map(|l| (inv, l)))
    {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("wfbn-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let text = ratchet::render(&inventory.atomics, &lock);
    let path = root.join("analysis/atomics.lock");
    if let Err(e) = std::fs::write(&path, &text) {
        eprintln!("wfbn-analyze: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    let src = inventory
        .atomics
        .iter()
        .filter(|s| s.ctx == Ctx::Src)
        .count();
    println!(
        "wfbn-analyze: baselined {} atomic sites ({src} src, {} test) to {}",
        inventory.atomics.len(),
        inventory.atomics.len() - src,
        path.display()
    );
    ExitCode::SUCCESS
}
