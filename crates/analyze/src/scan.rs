//! Token-stream scanner: turns lexed source into the concurrency inventory.
//!
//! Five extraction passes run over each file's tokens:
//!
//! 1. **Atomic operations** — method calls whose argument list names a
//!    memory `Ordering` (`store`/`load`/`swap`), plus the unambiguous RMW
//!    family (`fetch_*`, `compare_exchange*`). `Vec::swap(i, j)` and
//!    `core::cmp::Ordering::Less` never match: the former has no ordering
//!    argument, the latter's variant is not a memory ordering.
//! 2. **`unsafe` items** — blocks, fns, impls, traits — each checked for an
//!    *adjacent* `// SAFETY:` comment: the contiguous run of comment and
//!    attribute lines directly above the item (or a trailing comment on the
//!    same line). Code between the comment and the item breaks adjacency —
//!    the false-accept the old 6-line-window shell heuristic had.
//! 3. **Test context** — `#[cfg(test)]` items and files under `tests/` are
//!    flagged so policy gates can treat test scaffolding differently from
//!    hot-path code.
//! 4. **Loops** — every `loop`/`while`/`for` extent, with the atomic loads,
//!    method calls, and `spin_loop`/`yield_now` hints *attributed to the
//!    innermost enclosing loop*. The `waitloop` gate decides from those
//!    triggers which loops are poll loops and demands a `// wf-bound:`
//!    termination annotation on each (see [`LoopSite`]).
//! 5. **Blocking constructs** — lock/condvar/channel types, `park`/`sleep`/
//!    `recv` calls, bare `.join()`, and `spin_loop` outside any loop; the
//!    `noblock` gate denies them on hot-path crates (see [`BlockingSite`]).
//! 6. **Struct definitions** — every named-field struct with its fields'
//!    type text, `#[repr(C)]`/`#[repr(align(N))]` attributes, and source
//!    line, feeding the `layout` false-sharing gate (see [`StructSite`]).
//! 7. **Integer constants and `#[test]` functions** — `const N: usize = …`
//!    definitions (for resolving `[T; N]` array lengths) and the names of
//!    `#[test]`-attributed functions (for the `modelcov` gate's
//!    model-existence check).
//!
//! Release stores may carry a `// hb-writer: <role>` annotation naming the
//! unique writer role of the stored-to field; the happens-before gate
//! cross-checks those roles against `analysis/hb_map.toml`. Poll loops
//! carry a `// wf-bound: <kind>(<arg>)` annotation, cross-checked against
//! `analysis/progress.toml` by the same adjacency rules. Atomic sites may
//! carry a `// loom-model: <test>[,<test>…]` annotation naming the loom
//! suite(s) that exercise the site, cross-checked against
//! `analysis/coverage.toml` by the `modelcov` gate.

use crate::lexer::{lex, Comment, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Whether a site sits in shipped code or in test scaffolding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ctx {
    /// Non-test code compiled into the library/binary.
    Src,
    /// `#[cfg(test)]` items or files under a `tests/` directory.
    Test,
}

impl Ctx {
    /// Stable lowercase name used in lock files and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Ctx::Src => "src",
            Ctx::Test => "test",
        }
    }
}

/// One atomic operation site.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the method name.
    pub line: u32,
    /// Crate the file belongs to (from its `Cargo.toml`).
    pub crate_name: String,
    /// Src or Test context.
    pub ctx: Ctx,
    /// Identifier the method was called on (best-effort field name).
    pub receiver: String,
    /// Method name: `store`, `load`, `swap`, `fetch_add`, ...
    pub op: String,
    /// Memory orderings named in the argument list, in source order.
    /// `["?"]` when an RMW op passes its ordering through a variable.
    pub orderings: Vec<String>,
    /// `// hb-writer: <role>` annotation adjacent to the site, if any.
    pub writer_role: Option<String>,
    /// `// loom-model: <test>[,<test>…]` annotation adjacent to the site,
    /// if any (comma-separated, no spaces).
    pub model: Option<String>,
}

impl AtomicSite {
    /// True if any named ordering equals `ord`.
    pub fn has_ordering(&self, ord: &str) -> bool {
        self.orderings.iter().any(|o| o == ord)
    }
}

/// One `unsafe` block/fn/impl/trait site.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Crate the file belongs to.
    pub crate_name: String,
    /// Src or Test context.
    pub ctx: Ctx,
    /// `block`, `fn`, `impl`, `trait`, or `other`.
    pub kind: &'static str,
    /// Whether an adjacent SAFETY comment documents the site.
    pub documented: bool,
}

/// One `loop`/`while`/`for` extent that received at least one polling
/// trigger (or a `wf-bound` annotation).
///
/// Triggers are attributed to the **innermost** enclosing loop only; a
/// trigger in the body of a `for` loop is dropped (the iteration count is
/// bounded by the iterator — an unbounded poll inside it would be its own
/// `while`/`loop` and register there), while a trigger in a `for` loop's
/// *head* (the iterator expression) still attaches to the `for`.
#[derive(Debug, Clone)]
pub struct LoopSite {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the `loop`/`while`/`for` keyword.
    pub line: u32,
    /// Crate the file belongs to.
    pub crate_name: String,
    /// Src or Test context.
    pub ctx: Ctx,
    /// `loop`, `while`, or `for`.
    pub kind: &'static str,
    /// Adjacent `// wf-bound: <kind>(<arg>)` annotation, if any.
    pub bound: Option<String>,
    /// Atomic `load` sites inside the loop: (receiver, line).
    pub loads: Vec<(String, u32)>,
    /// Method/path calls inside the loop: (name, line). The gate filters
    /// these against the configured poll-method list.
    pub calls: Vec<(String, u32)>,
    /// `spin_loop`/`yield_now` hints inside the loop: (name, line).
    pub spins: Vec<(String, u32)>,
}

impl LoopSite {
    /// A short human-readable list of the loop's polling triggers.
    pub fn trigger_summary(&self, poll_methods: &[String]) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (r, _) in &self.loads {
            parts.push(format!("load(`{r}`)"));
        }
        for (c, _) in &self.calls {
            if poll_methods.iter().any(|m| m == c) {
                parts.push(format!("`.{c}()`"));
            }
        }
        for (s, _) in &self.spins {
            parts.push(format!("`{s}()`"));
        }
        parts.dedup();
        parts.truncate(4);
        parts.join(", ")
    }
}

/// One blocking-construct site (lock/condvar/channel type, park/sleep/recv
/// call, bare `.join()`, or a `spin_loop` outside any loop).
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the construct.
    pub line: u32,
    /// Crate the file belongs to.
    pub crate_name: String,
    /// Src or Test context.
    pub ctx: Ctx,
    /// Construct name: `Mutex`, `join`, `sleep`, `spin_loop`, ...
    pub construct: String,
}

/// One named-field struct definition.
#[derive(Debug, Clone)]
pub struct StructSite {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the struct name.
    pub line: u32,
    /// Crate the file belongs to.
    pub crate_name: String,
    /// Src or Test context.
    pub ctx: Ctx,
    /// The struct's name.
    pub name: String,
    /// Whether the struct carries `#[repr(C)]`.
    pub repr_c: bool,
    /// `N` from `#[repr(align(N))]`, if present.
    pub repr_align: Option<u64>,
    /// Fields in declaration order.
    pub fields: Vec<StructField>,
}

/// One field of a [`StructSite`].
#[derive(Debug, Clone)]
pub struct StructField {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// The field's type as rendered token text, e.g.
    /// `[UnsafeCell<MaybeUninit<T>>; SEG_CAP]`. Re-lexing this string
    /// reproduces the original token stream.
    pub ty: String,
}

/// One `const NAME: <int> = <literal>;` definition.
#[derive(Debug, Clone)]
pub struct ConstDef {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the constant's name.
    pub line: u32,
    /// Constant name.
    pub name: String,
    /// Parsed integer value.
    pub value: u64,
    /// Preference when the same name is defined more than once behind
    /// `cfg` gates: 2 = ungated, 1 = gated by a `cfg` containing `not(..)`
    /// (the default-build arm), 0 = gated by a plain `cfg` (a non-default
    /// arm, e.g. `cfg(feature = "loom")`). Higher wins.
    pub score: u8,
}

/// One `#[test]`-attributed function.
#[derive(Debug, Clone)]
pub struct TestFn {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Function name.
    pub name: String,
}

/// The whole workspace's concurrency inventory.
#[derive(Debug, Default)]
pub struct Inventory {
    /// Every atomic operation, in (file, line) order.
    pub atomics: Vec<AtomicSite>,
    /// Every `unsafe` site, in (file, line) order.
    pub unsafes: Vec<UnsafeSite>,
    /// Every loop that polls (or is annotated), in (file, line) order.
    pub loops: Vec<LoopSite>,
    /// Every blocking-construct site, in (file, line) order.
    pub blocking: Vec<BlockingSite>,
    /// Every named-field struct definition, in (file, line) order.
    pub structs: Vec<StructSite>,
    /// Every integer constant definition, in (file, line) order.
    pub consts: Vec<ConstDef>,
    /// Every `#[test]` function, in (file, line) order.
    pub tests: Vec<TestFn>,
    /// Atomic type mentions (`AtomicUsize`, ...) per file, for reporting.
    pub atomic_types: BTreeMap<String, BTreeMap<String, usize>>,
}

const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// Ops that are atomic only when an `Ordering` appears in the call.
const ORDERED_OPS: &[&str] = &["load", "store", "swap"];

/// Read-modify-write ops; unambiguous regardless of how the ordering is
/// spelled.
pub const RMW_OPS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Type names that imply blocking (or a parked thread) when mentioned in
/// code. `mpsc` covers any `std::sync::mpsc` path segment.
const BLOCKING_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc"];

/// Call names that block the calling thread. Only `.name(` / `::name(`
/// call positions match, so a local variable named `sleep` is invisible.
const BLOCKING_CALLS: &[&str] = &["park", "park_timeout", "sleep", "recv", "recv_timeout"];

/// Busy-wait hints; inside a loop they mark it as polling, outside any
/// loop `spin_loop` is itself recorded as a blocking-ish construct.
const SPIN_HINTS: &[&str] = &["spin_loop", "yield_now"];

/// Scans one file's source text.
///
/// `file` is the path recorded in diagnostics, `crate_name` the owning
/// crate, and `file_ctx` the whole-file default context (Test for files
/// under `tests/`).
pub fn scan_file(src: &str, file: &str, crate_name: &str, file_ctx: Ctx) -> Inventory {
    let lexed = lex(src);
    let toks = &lexed.toks;

    let attr = attr_ranges(toks);
    let in_test = test_regions(toks, &attr);
    let lines = LineInfo::new(toks, &attr, &lexed.comments);
    let extents = loop_extents(toks, &attr);

    let mut inv = Inventory::default();

    // Per-extent trigger accumulators, filled during the main walk.
    let mut loop_loads: Vec<Vec<(String, u32)>> = vec![Vec::new(); extents.len()];
    let mut loop_calls: Vec<Vec<(String, u32)>> = vec![Vec::new(); extents.len()];
    let mut loop_spins: Vec<Vec<(String, u32)>> = vec![Vec::new(); extents.len()];

    for (i, t) in toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        let ctx = if file_ctx == Ctx::Test || in_test[i] {
            Ctx::Test
        } else {
            Ctx::Src
        };

        if ATOMIC_TYPES.contains(&name.as_str()) {
            *inv.atomic_types
                .entry(file.to_owned())
                .or_default()
                .entry(name.clone())
                .or_insert(0) += 1;
        }

        // A blocking-type name reached through a non-`sync` path segment
        // (`Stage::Barrier`, some enum's `::Mutex` variant) is another
        // namespace's identifier, not the std/loom synchronization type.
        let path_prefixed = i >= 2
            && toks[i - 1].kind == TokKind::Punct(':')
            && toks[i - 2].kind == TokKind::Punct(':');
        let foreign_path = path_prefixed
            && i >= 3
            && matches!(&toks[i - 3].kind,
                TokKind::Ident(seg) if seg != "sync" && seg != "std" && seg != "loom");
        // `Barrier = 1,` inside an enum declares a discriminant for a
        // variant that merely shares the name. A bare name directly
        // followed by a single `=` is never a *use* of the std/loom type:
        // type position is reached via `:`/`::`, value position via
        // `::new(..)`.
        let variant_decl = !path_prefixed
            && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Punct('='))
            && !matches!(toks.get(i + 2), Some(n) if n.kind == TokKind::Punct('='));
        if BLOCKING_TYPES.contains(&name.as_str())
            && !attr.covers(i)
            && !foreign_path
            && !variant_decl
        {
            inv.blocking.push(BlockingSite {
                file: file.to_owned(),
                line: t.line,
                crate_name: crate_name.to_owned(),
                ctx,
                construct: name.clone(),
            });
        }

        if name == "unsafe" && !attr.covers(i) {
            inv.unsafes.push(UnsafeSite {
                file: file.to_owned(),
                line: t.line,
                crate_name: crate_name.to_owned(),
                ctx,
                kind: unsafe_kind(toks, i),
                documented: lines.has_adjacent(t.line, &["SAFETY:", "# Safety"]),
            });
            continue;
        }

        // Call position: `.name(` or `::name(`.
        let called = matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('('))
            && i > 0
            && (toks[i - 1].kind == TokKind::Punct('.')
                || (i >= 2
                    && toks[i - 1].kind == TokKind::Punct(':')
                    && toks[i - 2].kind == TokKind::Punct(':')));

        if called && SPIN_HINTS.contains(&name.as_str()) {
            // A spin hint belongs to the nearest enclosing non-`for` loop
            // (a `for` body is already iteration-bounded; the spin's
            // progress argument lives with the polling `while`/`loop`).
            match innermost(&extents, i, true) {
                Some(ei) => loop_spins[ei].push((name.clone(), t.line)),
                None if name == "spin_loop" => inv.blocking.push(BlockingSite {
                    file: file.to_owned(),
                    line: t.line,
                    crate_name: crate_name.to_owned(),
                    ctx,
                    construct: "spin_loop".to_owned(),
                }),
                None => {}
            }
            continue;
        }

        if called && BLOCKING_CALLS.contains(&name.as_str()) {
            inv.blocking.push(BlockingSite {
                file: file.to_owned(),
                line: t.line,
                crate_name: crate_name.to_owned(),
                ctx,
                construct: name.clone(),
            });
            continue;
        }

        // Bare `.join()` — empty argument list distinguishes a thread join
        // from `Path::join(..)` / `slice.join(sep)`, which take arguments.
        if name == "join"
            && i > 0
            && toks[i - 1].kind == TokKind::Punct('.')
            && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('('))
            && matches!(toks.get(i + 2), Some(t) if t.kind == TokKind::Punct(')'))
        {
            inv.blocking.push(BlockingSite {
                file: file.to_owned(),
                line: t.line,
                crate_name: crate_name.to_owned(),
                ctx,
                construct: "join".to_owned(),
            });
            continue;
        }

        let is_ordered = ORDERED_OPS.contains(&name.as_str());
        let is_rmw = RMW_OPS.contains(&name.as_str());
        if (is_ordered || is_rmw)
            && i > 0
            && toks[i - 1].kind == TokKind::Punct('.')
            && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('('))
        {
            let orderings = call_orderings(toks, i + 1);
            if is_ordered && orderings.is_empty() {
                continue; // Vec::swap, HashMap::load-alikes, etc.
            }
            let orderings = if orderings.is_empty() {
                vec!["?".to_owned()]
            } else {
                orderings
            };
            if name == "load" {
                if let Some(ei) = body_or_head(&extents, i) {
                    loop_loads[ei].push((receiver_of(toks, i - 1), t.line));
                }
            }
            inv.atomics.push(AtomicSite {
                file: file.to_owned(),
                line: t.line,
                crate_name: crate_name.to_owned(),
                ctx,
                receiver: receiver_of(toks, i - 1),
                op: name.clone(),
                orderings,
                writer_role: lines.writer_role(t.line),
                model: lines.loom_model(t.line),
            });
            continue;
        }

        // Generic call trigger for the poll-method cross-check.
        if called {
            if let Some(ei) = body_or_head(&extents, i) {
                loop_calls[ei].push((name.clone(), t.line));
            }
        }
    }

    for (ei, e) in extents.iter().enumerate() {
        let bound = lines.wf_bound(e.line);
        if loop_loads[ei].is_empty()
            && loop_calls[ei].is_empty()
            && loop_spins[ei].is_empty()
            && bound.is_none()
        {
            continue; // plain bounded iteration, nothing to check
        }
        let ctx = if file_ctx == Ctx::Test || in_test[e.kw] {
            Ctx::Test
        } else {
            Ctx::Src
        };
        inv.loops.push(LoopSite {
            file: file.to_owned(),
            line: e.line,
            crate_name: crate_name.to_owned(),
            ctx,
            kind: e.kind,
            bound,
            loads: std::mem::take(&mut loop_loads[ei]),
            calls: std::mem::take(&mut loop_calls[ei]),
            spins: std::mem::take(&mut loop_spins[ei]),
        });
    }
    inv.loops.sort_by_key(|a| a.line);

    inv.structs = extract_structs(toks, &attr, &in_test, file, crate_name, file_ctx);
    inv.consts = extract_consts(toks, &attr, file);
    inv.tests = extract_test_fns(toks, &attr, file);

    inv
}

/// Parses an integer literal's source text: decimal or `0x` hex, with `_`
/// separators and type suffixes (`512usize`) tolerated.
pub fn int_lit(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let (radix, digits) = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(rest) => (16, rest),
        None => (10, t.as_str()),
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

/// Walks backward from the token at `idx` (exclusive) over visibility and
/// qualifier tokens, returning the attribute ranges that prefix the item.
fn item_attrs(toks: &[Tok], attr: &AttrRanges, idx: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut j = idx;
    while j > 0 {
        let p = j - 1;
        match &toks[p].kind {
            TokKind::Ident(s)
                if matches!(s.as_str(), "pub" | "async" | "const" | "unsafe" | "extern") =>
            {
                j = p;
            }
            TokKind::Punct(')') => {
                // A `pub(crate)` / `pub(in path)` restriction group.
                let mut depth = 0isize;
                let mut k = p;
                let open = loop {
                    match toks[k].kind {
                        TokKind::Punct(')') => depth += 1,
                        TokKind::Punct('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break Some(k);
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        break None;
                    }
                    k -= 1;
                };
                match open {
                    Some(k)
                        if k >= 1
                            && matches!(&toks[k - 1].kind,
                                TokKind::Ident(s) if s == "pub") =>
                    {
                        j = k - 1;
                    }
                    _ => break,
                }
            }
            TokKind::Punct(']') => match attr.ending_at(p) {
                Some((s, _)) => {
                    out.push((s, p));
                    j = s;
                }
                None => break,
            },
            _ => break,
        }
    }
    out
}

/// Reads `#[repr(..)]` facts out of an item's attribute ranges.
fn repr_of(toks: &[Tok], attrs: &[(usize, usize)]) -> (bool, Option<u64>) {
    let mut repr_c = false;
    let mut repr_align = None;
    for &(s, e) in attrs {
        let span = &toks[s..=e];
        if !matches!(span.get(2).map(|t| &t.kind),
            Some(TokKind::Ident(n)) if n == "repr")
        {
            continue;
        }
        for (k, t) in span.iter().enumerate() {
            match &t.kind {
                TokKind::Ident(n) if n == "C" => repr_c = true,
                TokKind::Ident(n) if n == "align" => {
                    if let (Some(Tok { kind: TokKind::Punct('('), .. }), Some(lit)) =
                        (span.get(k + 1), span.get(k + 2))
                    {
                        if let TokKind::Lit(text) = &lit.kind {
                            repr_align = int_lit(text);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    (repr_c, repr_align)
}

/// Renders a token slice back to compact source text. Idents and literals
/// are separated where needed so re-lexing reproduces the token stream.
fn render_tokens(toks: &[Tok]) -> String {
    let mut out = String::new();
    let mut prev_wordy = false;
    for t in toks {
        let (text, wordy): (&str, bool) = match &t.kind {
            TokKind::Ident(s) => (s, true),
            TokKind::Lit(s) => (s, true),
            TokKind::Lifetime => ("'_", true),
            TokKind::Punct(c) => {
                out.push(*c);
                if *c == ';' || *c == ',' {
                    out.push(' ');
                }
                prev_wordy = false;
                continue;
            }
        };
        if prev_wordy {
            out.push(' ');
        }
        out.push_str(text);
        prev_wordy = wordy;
    }
    out.trim_end().to_owned()
}

/// Extracts every named-field struct definition.
fn extract_structs(
    toks: &[Tok],
    attr: &AttrRanges,
    in_test: &[bool],
    file: &str,
    crate_name: &str,
    file_ctx: Ctx,
) -> Vec<StructSite> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !matches!(&t.kind, TokKind::Ident(n) if n == "struct") || attr.covers(i) {
            continue;
        }
        let Some(Tok { kind: TokKind::Ident(name), line: name_line }) = toks.get(i + 1)
        else {
            continue;
        };
        // Locate the field block: first `{` at angle/paren depth 0 after
        // the name (skipping generics and any where-clause). `;` or `(`
        // first means a unit/tuple struct, which the layout model skips.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('<' | '(' | '[') => depth += 1,
                TokKind::Punct('>' | ')' | ']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => {
                    open = Some(j);
                    break;
                }
                TokKind::Punct(';' | '{') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let (repr_c, repr_align) = repr_of(toks, &item_attrs(toks, attr, i));
        let mut fields = Vec::new();
        let mut k = open + 1;
        'fields: while k < toks.len() && toks[k].kind != TokKind::Punct('}') {
            while let Some((_, ae)) = attr.starting_at(k) {
                k = ae + 1;
            }
            if matches!(&toks[k].kind, TokKind::Ident(s) if s == "pub") {
                k += 1;
                if toks.get(k).map(|t| &t.kind) == Some(&TokKind::Punct('(')) {
                    let mut d = 0i32;
                    while k < toks.len() {
                        match toks[k].kind {
                            TokKind::Punct('(') => d += 1,
                            TokKind::Punct(')') => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
            let Some(Tok { kind: TokKind::Ident(fname), line: fline }) = toks.get(k)
            else {
                break;
            };
            if toks.get(k + 1).map(|t| &t.kind) != Some(&TokKind::Punct(':')) {
                break;
            }
            let ty_start = k + 2;
            let mut d = 0i32;
            let mut m = ty_start;
            while m < toks.len() {
                match toks[m].kind {
                    TokKind::Punct('<' | '(' | '[' | '{') => d += 1,
                    TokKind::Punct('>' | ')' | ']' | '}') if d > 0 => d -= 1,
                    TokKind::Punct(',') if d == 0 => break,
                    TokKind::Punct('}') if d == 0 => {
                        fields.push(StructField {
                            name: fname.clone(),
                            line: *fline,
                            ty: render_tokens(&toks[ty_start..m]),
                        });
                        break 'fields;
                    }
                    _ => {}
                }
                m += 1;
            }
            fields.push(StructField {
                name: fname.clone(),
                line: *fline,
                ty: render_tokens(&toks[ty_start..m]),
            });
            k = m + 1;
        }
        let ctx = if file_ctx == Ctx::Test || in_test[i] {
            Ctx::Test
        } else {
            Ctx::Src
        };
        out.push(StructSite {
            file: file.to_owned(),
            line: *name_line,
            crate_name: crate_name.to_owned(),
            ctx,
            name: name.clone(),
            repr_c,
            repr_align,
            fields,
        });
    }
    out
}

/// Extracts every `const NAME: <int-type> = <int-literal>;` definition,
/// scoring each by its `cfg` gating (see [`ConstDef::score`]).
fn extract_consts(toks: &[Tok], attr: &AttrRanges, file: &str) -> Vec<ConstDef> {
    const INT_TYPES: &[&str] = &[
        "usize", "u8", "u16", "u32", "u64", "isize", "i8", "i16", "i32", "i64",
    ];
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !matches!(&t.kind, TokKind::Ident(n) if n == "const") || attr.covers(i) {
            continue;
        }
        // `*const T` is a pointer type, `const fn` a qualifier.
        if i > 0 && toks[i - 1].kind == TokKind::Punct('*') {
            continue;
        }
        let (Some(name_tok), Some(colon), Some(ty), Some(eq), Some(lit), Some(semi)) = (
            toks.get(i + 1),
            toks.get(i + 2),
            toks.get(i + 3),
            toks.get(i + 4),
            toks.get(i + 5),
            toks.get(i + 6),
        ) else {
            continue;
        };
        let (TokKind::Ident(name), TokKind::Ident(ty_name), TokKind::Lit(text)) =
            (&name_tok.kind, &ty.kind, &lit.kind)
        else {
            continue;
        };
        if colon.kind != TokKind::Punct(':')
            || eq.kind != TokKind::Punct('=')
            || semi.kind != TokKind::Punct(';')
            || !INT_TYPES.contains(&ty_name.as_str())
        {
            continue;
        }
        let Some(value) = int_lit(text) else { continue };
        let mut score = 2u8;
        for (s, e) in item_attrs(toks, attr, i) {
            let span = &toks[s..=e];
            let has = |w: &str| {
                span.iter()
                    .any(|t| matches!(&t.kind, TokKind::Ident(n) if n == w))
            };
            if has("cfg") {
                score = score.min(if has("not") { 1 } else { 0 });
            }
        }
        out.push(ConstDef {
            file: file.to_owned(),
            line: name_tok.line,
            name: name.clone(),
            value,
            score,
        });
    }
    out
}

/// Extracts every function carrying an exact `#[test]` attribute.
fn extract_test_fns(toks: &[Tok], attr: &AttrRanges, file: &str) -> Vec<TestFn> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !matches!(&t.kind, TokKind::Ident(n) if n == "fn") || attr.covers(i) {
            continue;
        }
        let Some(Tok { kind: TokKind::Ident(name), .. }) = toks.get(i + 1) else {
            continue;
        };
        let is_test = item_attrs(toks, attr, i).iter().any(|&(s, e)| {
            e == s + 3
                && toks[s + 1].kind == TokKind::Punct('[')
                && matches!(&toks[s + 2].kind, TokKind::Ident(n) if n == "test")
                && toks[s + 3].kind == TokKind::Punct(']')
        });
        if is_test {
            out.push(TestFn {
                file: file.to_owned(),
                line: t.line,
                name: name.clone(),
            });
        }
    }
    out
}

/// One `loop`/`while`/`for` construct's token extent.
struct LoopExtent {
    /// `loop`, `while`, or `for`.
    kind: &'static str,
    /// 1-based line of the keyword.
    line: u32,
    /// Token index of the keyword.
    kw: usize,
    /// Token index of the body's opening `{`.
    body_open: usize,
    /// Token index of the body's matching `}`.
    end: usize,
}

/// Extracts every loop extent. `for` is a loop only when an `in` keyword
/// precedes its body at bracket depth 0 — `impl Trait for Type` and
/// `for<'a>` bounds have none and are skipped.
fn loop_extents(toks: &[Tok], attr: &AttrRanges) -> Vec<LoopExtent> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        let kind = match name.as_str() {
            "loop" => "loop",
            "while" => "while",
            "for" => "for",
            _ => continue,
        };
        if attr.covers(i) {
            continue;
        }
        // Locate the body `{`: first brace at paren/bracket depth 0 after
        // the keyword (closure braces inside the condition sit inside
        // parens and are skipped by the depth count).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut saw_in = false;
        let mut body_open = None;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('(' | '[') => depth += 1,
                TokKind::Punct(')' | ']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => depth -= 1,
                TokKind::Punct(';') if depth == 0 => break, // not a loop after all
                TokKind::Ident(s) if depth == 0 && s == "in" => saw_in = true,
                _ => {}
            }
            j += 1;
        }
        let Some(bo) = body_open else {
            continue;
        };
        if kind == "for" && !saw_in {
            continue;
        }
        let mut d = 0i32;
        let mut k = bo;
        let mut end = toks.len().saturating_sub(1);
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('{') => d += 1,
                TokKind::Punct('}') => {
                    d -= 1;
                    if d == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push(LoopExtent {
            kind,
            line: t.line,
            kw: i,
            body_open: bo,
            end,
        });
    }
    out
}

/// Index of the innermost extent containing token `idx` (condition and
/// body both count). `skip_for` restricts to non-`for` loops.
fn innermost(extents: &[LoopExtent], idx: usize, skip_for: bool) -> Option<usize> {
    extents
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kw < idx && idx <= e.end && !(skip_for && e.kind == "for"))
        .min_by_key(|(_, e)| e.end - e.kw)
        .map(|(ei, _)| ei)
}

/// Innermost extent for a load/call trigger, applying the `for` rule:
/// a trigger in a `for` loop's *body* is dropped (bounded iteration),
/// one in its head (the iterator expression) still attaches.
fn body_or_head(extents: &[LoopExtent], idx: usize) -> Option<usize> {
    let ei = innermost(extents, idx, false)?;
    let e = &extents[ei];
    if e.kind == "for" && idx > e.body_open {
        return None;
    }
    Some(ei)
}

impl Inventory {
    /// Merges another file's inventory into this one.
    pub fn absorb(&mut self, other: Inventory) {
        self.atomics.extend(other.atomics);
        self.unsafes.extend(other.unsafes);
        self.loops.extend(other.loops);
        self.blocking.extend(other.blocking);
        self.structs.extend(other.structs);
        self.consts.extend(other.consts);
        self.tests.extend(other.tests);
        for (file, counts) in other.atomic_types {
            let slot = self.atomic_types.entry(file).or_default();
            for (ty, n) in counts {
                *slot.entry(ty).or_insert(0) += n;
            }
        }
    }
}

/// Attribute token ranges: `#[...]` and `#![...]` spans.
struct AttrRanges {
    ranges: Vec<(usize, usize)>,
}

impl AttrRanges {
    fn covers(&self, idx: usize) -> bool {
        self.ranges.iter().any(|&(s, e)| s <= idx && idx <= e)
    }

    /// Index of the range starting at `idx`, if any.
    fn starting_at(&self, idx: usize) -> Option<(usize, usize)> {
        self.ranges.iter().copied().find(|&(s, _)| s == idx)
    }

    /// Index of the range ending at `idx`, if any.
    fn ending_at(&self, idx: usize) -> Option<(usize, usize)> {
        self.ranges.iter().copied().find(|&(_, e)| e == idx)
    }
}

fn attr_ranges(toks: &[Tok]) -> AttrRanges {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct('#') {
            let mut j = i + 1;
            if matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct('!')) {
                j += 1;
            }
            if matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct('[')) {
                let mut depth = 0usize;
                let mut k = j;
                while k < toks.len() {
                    match toks[k].kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                ranges.push((i, k.min(toks.len().saturating_sub(1))));
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    AttrRanges { ranges }
}

/// Marks token indices that sit inside a `#[cfg(test)]`-gated item.
fn test_regions(toks: &[Tok], attr: &AttrRanges) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    for &(s, e) in &attr.ranges {
        if !attr_is_cfg_test(&toks[s..=e.min(toks.len() - 1)]) {
            continue;
        }
        // Skip any further attributes, then mark the gated item's extent:
        // to the matching `}` of its first brace, or to a `;` for bodyless
        // items.
        let mut j = e + 1;
        while let Some((_, ae)) = attr.starting_at(j) {
            j = ae + 1;
        }
        let mut depth = 0usize;
        let mut k = j;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        for flag in in_test.iter_mut().take((k + 1).min(toks.len())).skip(s) {
            *flag = true;
        }
    }
    in_test
}

/// Whether an attribute gates its item to test builds: a `cfg` predicate
/// naming `test` outside any `not(..)` group. `cfg(test)` and
/// `cfg(all(test, not(feature = "loom")))` qualify; `cfg(not(test))` does
/// not.
fn attr_is_cfg_test(attr_toks: &[Tok]) -> bool {
    let mut saw_cfg = false;
    let mut depth = 0usize;
    // Paren depths at which a `not(` group opened; `test` seen while any
    // are live is negated.
    let mut not_depths: Vec<usize> = Vec::new();
    let mut pending_not = false;
    for t in attr_toks {
        match &t.kind {
            TokKind::Punct('(') => {
                depth += 1;
                if pending_not {
                    not_depths.push(depth);
                }
                pending_not = false;
            }
            TokKind::Punct(')') => {
                if not_depths.last() == Some(&depth) {
                    not_depths.pop();
                }
                depth = depth.saturating_sub(1);
                pending_not = false;
            }
            TokKind::Ident(s) => {
                pending_not = false;
                if !saw_cfg {
                    if s == "cfg" {
                        saw_cfg = true;
                    } else {
                        return false;
                    }
                } else if s == "not" {
                    pending_not = true;
                } else if s == "test" && not_depths.is_empty() {
                    return true;
                }
            }
            _ => pending_not = false,
        }
    }
    false
}

/// What follows an `unsafe` keyword.
fn unsafe_kind(toks: &[Tok], i: usize) -> &'static str {
    match toks.get(i + 1).map(|t| &t.kind) {
        Some(TokKind::Punct('{')) => "block",
        Some(TokKind::Ident(s)) => match s.as_str() {
            "fn" => "fn",
            "impl" => "impl",
            "trait" => "trait",
            "extern" => "fn",
            _ => "other",
        },
        _ => "other",
    }
}

/// Memory orderings named anywhere in the call starting at the `(` token.
fn call_orderings(toks: &[Tok], open: usize) -> Vec<String> {
    let mut depth = 0usize;
    let mut out = Vec::new();
    let mut k = open;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            // Require a `Ordering::` (or `…::Ordering::`) path prefix so
            // a stray variable named `Relaxed`-like cannot match.
            TokKind::Ident(s)
                if ORDERINGS.contains(&s.as_str())
                    && k >= 3
                    && toks[k - 1].kind == TokKind::Punct(':')
                    && toks[k - 2].kind == TokKind::Punct(':')
                    && toks[k - 3].kind == TokKind::Ident("Ordering".into()) =>
            {
                out.push(s.clone());
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// Best-effort receiver (field) name: the identifier before the `.` at
/// `dot`, looking through one closing `]`/`)` group.
fn receiver_of(toks: &[Tok], dot: usize) -> String {
    if dot == 0 {
        return "expr".to_owned();
    }
    match &toks[dot - 1].kind {
        TokKind::Ident(s) => s.clone(),
        TokKind::Punct(close @ (']' | ')')) => {
            let open = if *close == ']' { '[' } else { '(' };
            let mut depth = 0isize;
            let mut k = dot - 1;
            loop {
                match &toks[k].kind {
                    TokKind::Punct(c) if *c == *close => depth += 1,
                    TokKind::Punct(c) if *c == open => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 {
                    return "expr".to_owned();
                }
                k -= 1;
            }
            match k.checked_sub(1).map(|p| &toks[p].kind) {
                Some(TokKind::Ident(s)) => s.clone(),
                _ => "expr".to_owned(),
            }
        }
        _ => "expr".to_owned(),
    }
}

/// Per-line classification for the adjacency rules.
struct LineInfo {
    /// Lines containing at least one non-attribute code token.
    code: BTreeSet<u32>,
    /// Lines containing attribute tokens (and no other code).
    attr: BTreeSet<u32>,
    /// Comment text per line (block comments mark every spanned line).
    comment: BTreeMap<u32, String>,
}

impl LineInfo {
    fn new(toks: &[Tok], attr: &AttrRanges, comments: &[Comment]) -> Self {
        let mut code = BTreeSet::new();
        let mut attr_lines = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            if attr.covers(i) {
                attr_lines.insert(t.line);
            } else {
                code.insert(t.line);
            }
        }
        let mut comment = BTreeMap::<u32, String>::new();
        for c in comments {
            for line in c.start_line..=c.end_line {
                comment.entry(line).or_default().push_str(&c.text);
            }
        }
        LineInfo {
            code,
            attr: attr_lines,
            comment,
        }
    }

    /// True if a comment adjacent to `line` contains any of `needles`.
    ///
    /// Adjacent means: a comment on `line` itself (trailing), or within the
    /// contiguous run of comment/attribute lines directly above — any code
    /// line breaks the run. This is the fix for the shell heuristic's
    /// false accepts: a SAFETY note six lines up, with code in between,
    /// no longer counts.
    fn has_adjacent(&self, line: u32, needles: &[&str]) -> bool {
        let hit = |l: u32| {
            self.comment
                .get(&l)
                .is_some_and(|t| needles.iter().any(|n| t.contains(n)))
        };
        if hit(line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let is_comment = self.comment.contains_key(&l);
            let is_attr = self.attr.contains(&l) && !self.code.contains(&l);
            if self.code.contains(&l) && !is_comment {
                // Pure code line: adjacency broken. A line holding both code
                // and a trailing comment still counts as a comment line for
                // the search below, then breaks the walk.
                return false;
            }
            if is_comment && hit(l) {
                return true;
            }
            if self.code.contains(&l) {
                return false; // code + trailing comment without the needle
            }
            if !is_comment && !is_attr {
                return false; // blank line breaks adjacency
            }
            l -= 1;
        }
        false
    }

    /// Extracts an adjacent `<marker> <value>` annotation, if present:
    /// a trailing comment on `line` itself, or one in the contiguous
    /// comment/attribute run directly above (same adjacency rules as
    /// [`has_adjacent`](Self::has_adjacent)).
    fn marker_value(&self, line: u32, marker: &str) -> Option<String> {
        let extract = |l: u32| -> Option<String> {
            let text = self.comment.get(&l)?;
            let pos = text.find(marker)?;
            let rest = &text[pos + marker.len()..];
            let value: String = rest
                .trim_start()
                .chars()
                .take_while(|c| !c.is_whitespace())
                .collect();
            (!value.is_empty()).then_some(value)
        };
        if let Some(r) = extract(line) {
            return Some(r);
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let is_comment = self.comment.contains_key(&l);
            let is_code = self.code.contains(&l);
            let is_attr = self.attr.contains(&l) && !is_code;
            // A trailing comment on a *code* line annotates that line, not
            // the one below it — only pure comment lines carry upward.
            if is_comment && !is_code {
                if let Some(r) = extract(l) {
                    return Some(r);
                }
            }
            if is_code || (!is_comment && !is_attr) {
                return None;
            }
            l -= 1;
        }
        None
    }

    /// Extracts an adjacent `hb-writer: <role>` annotation, if present.
    fn writer_role(&self, line: u32) -> Option<String> {
        self.marker_value(line, "hb-writer:")
    }

    /// Extracts an adjacent `wf-bound: <kind>(<arg>)` annotation, if
    /// present.
    fn wf_bound(&self, line: u32) -> Option<String> {
        self.marker_value(line, "wf-bound:")
    }

    /// Extracts an adjacent `loom-model: <test>[,<test>…]` annotation, if
    /// present.
    fn loom_model(&self, line: u32) -> Option<String> {
        self.marker_value(line, "loom-model:")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Inventory {
        scan_file(src, "test.rs", "demo", Ctx::Src)
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_site() {
        let inv = scan("fn f() { match x.cmp(&y) { core::cmp::Ordering::Less => {} _ => {} } }");
        assert!(inv.atomics.is_empty());
    }

    #[test]
    fn vec_swap_is_not_an_atomic_site() {
        let inv = scan("fn f(v: &mut Vec<u8>) { v.swap(0, 1); order.swap(i, j); }");
        assert!(inv.atomics.is_empty());
    }

    #[test]
    fn store_with_ordering_is_found_with_field_and_ordering() {
        let inv = scan("fn f() { self.tail.len.store(idx + 1, Ordering::Release); }");
        assert_eq!(inv.atomics.len(), 1);
        let s = &inv.atomics[0];
        assert_eq!(s.receiver, "len");
        assert_eq!(s.op, "store");
        assert_eq!(s.orderings, vec!["Release"]);
    }

    #[test]
    fn indexed_receiver_resolves_to_the_array_name() {
        let inv = scan("fn f() { cells[key as usize].fetch_add(1, Ordering::Relaxed); }");
        assert_eq!(inv.atomics[0].receiver, "cells");
        assert_eq!(inv.atomics[0].op, "fetch_add");
    }

    #[test]
    fn compare_exchange_collects_both_orderings() {
        let inv =
            scan("fn f() { w.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire); }");
        assert_eq!(inv.atomics[0].orderings, vec!["AcqRel", "Acquire"]);
    }

    #[test]
    fn rmw_with_variable_ordering_still_registers() {
        let inv = scan("fn f(o: Ordering) { w.fetch_add(1, o); }");
        assert_eq!(inv.atomics[0].orderings, vec!["?"]);
    }

    #[test]
    fn cfg_test_module_marks_sites_as_test_ctx() {
        let src = "fn f() { w.store(1, Ordering::Release); }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() { w.store(2, Ordering::SeqCst); }\n}\n";
        let inv = scan(src);
        assert_eq!(inv.atomics[0].ctx, Ctx::Src);
        assert_eq!(inv.atomics[1].ctx, Ctx::Test);
    }

    #[test]
    fn cfg_not_test_is_src() {
        let src = "#[cfg(not(test))]\nfn f() { w.store(1, Ordering::Release); }\n";
        assert_eq!(scan(src).atomics[0].ctx, Ctx::Src);
    }

    #[test]
    fn cfg_all_test_not_feature_gates_as_test_ctx() {
        // The real test modules are gated `#[cfg(all(test, not(feature =
        // "loom")))]`; the `not(..)` negates the feature, not `test`.
        let src = "#[cfg(all(test, not(feature = \"loom\")))]\nmod tests {\n  \
                   fn g() { w.store(2, Ordering::SeqCst); }\n}\n";
        assert_eq!(scan(src).atomics[0].ctx, Ctx::Test);
    }

    #[test]
    fn cfg_any_not_test_alone_is_src() {
        let src = "#[cfg(any(not(test), feature = \"x\"))]\nfn f() { w.store(1, Ordering::Release); }\n";
        assert_eq!(scan(src).atomics[0].ctx, Ctx::Src);
    }

    #[test]
    fn adjacent_safety_comment_documents_unsafe() {
        let src = "fn f() {\n    // SAFETY: idx is in bounds.\n    unsafe { g() };\n}\n";
        assert!(scan(src).unsafes[0].documented);
    }

    #[test]
    fn safety_comment_above_attributes_still_counts() {
        let src = "// SAFETY: the repr makes this sound.\n#[repr(C)]\n#[derive(Clone)]\nunsafe impl Send for X {}\n";
        let inv = scan(src);
        assert_eq!(inv.unsafes[0].kind, "impl");
        assert!(inv.unsafes[0].documented);
    }

    #[test]
    fn safety_comment_separated_by_code_is_a_false_accept_no_more() {
        let src = "// SAFETY: documents ONLY the first block.\nlet a = unsafe { g() };\nlet b = 1;\nlet c = unsafe { h() };\n";
        let inv = scan(src);
        assert!(inv.unsafes[0].documented);
        assert!(!inv.unsafes[1].documented, "code broke adjacency");
    }

    #[test]
    fn trailing_same_line_safety_counts() {
        let src = "let a = unsafe { g() }; // SAFETY: g is pure.\n";
        assert!(scan(src).unsafes[0].documented);
    }

    #[test]
    fn writer_role_annotation_is_extracted() {
        let src = "fn f() {\n    // hb-writer: producer\n    tail.len.store(1, Ordering::Release);\n}\n";
        assert_eq!(scan(src).atomics[0].writer_role.as_deref(), Some("producer"));
    }

    #[test]
    fn doc_example_atomics_are_invisible(){
        let src = "/// ```\n/// hits.fetch_add(1, Ordering::Relaxed);\n/// ```\npub fn wait() {}\n";
        assert!(scan(src).atomics.is_empty());
    }

    #[test]
    fn while_polling_an_atomic_is_a_loop_site_with_the_load() {
        let src = "fn wait(f: &AtomicBool) {\n    while !f.load(Ordering::Acquire) {\n        core::hint::spin_loop();\n    }\n}\n";
        let inv = scan(src);
        assert_eq!(inv.loops.len(), 1);
        let l = &inv.loops[0];
        assert_eq!((l.kind, l.line), ("while", 2));
        assert_eq!(l.loads, vec![("f".to_owned(), 2)]);
        assert_eq!(l.spins, vec![("spin_loop".to_owned(), 3)]);
        assert!(l.bound.is_none());
    }

    #[test]
    fn wf_bound_annotation_attaches_to_the_loop_line() {
        let src = "fn wait(f: &AtomicBool) {\n    // wf-bound: rendezvous(P)\n    while !f.load(Ordering::Acquire) {}\n}\n";
        let inv = scan(src);
        assert_eq!(inv.loops[0].bound.as_deref(), Some("rendezvous(P)"));
    }

    #[test]
    fn triggers_attribute_to_the_innermost_loop_only() {
        let src = "fn f(q: &Q) {\n    loop {\n        while let Some(v) = q.try_pop() {\n            use_(v);\n        }\n        break;\n    }\n}\n";
        let inv = scan(src);
        // Only the inner while registers (it holds the try_pop trigger);
        // the outer loop has no triggers of its own.
        assert_eq!(inv.loops.len(), 1);
        assert_eq!(inv.loops[0].kind, "while");
        assert!(inv.loops[0].calls.iter().any(|(n, _)| n == "try_pop"));
    }

    #[test]
    fn for_loop_bodies_do_not_register_poll_triggers() {
        let src = "fn f(cells: &[AtomicU64]) {\n    for c in cells {\n        let _ = c.load(Ordering::Relaxed);\n    }\n}\n";
        assert!(scan(src).loops.is_empty(), "bounded iteration is not a poll loop");
    }

    #[test]
    fn impl_trait_for_type_is_not_a_for_loop() {
        let src = "impl Probe for Gate {\n    fn go(&self) { self.w.load(Ordering::Acquire); }\n}\n";
        assert!(scan(src).loops.is_empty());
    }

    #[test]
    fn spin_in_a_for_body_escalates_to_the_enclosing_while() {
        let src = "fn f(g: &G) {\n    while g.open() {\n        for _ in 0..8 {\n            std::hint::spin_loop();\n        }\n    }\n}\n";
        let inv = scan(src);
        assert_eq!(inv.loops.len(), 1);
        assert_eq!(inv.loops[0].kind, "while");
        assert_eq!(inv.loops[0].spins.len(), 1);
    }

    #[test]
    fn spin_outside_any_loop_is_a_blocking_site() {
        let src = "fn f() { std::hint::spin_loop(); }\n";
        let inv = scan(src);
        assert!(inv.loops.is_empty());
        assert_eq!(inv.blocking.len(), 1);
        assert_eq!(inv.blocking[0].construct, "spin_loop");
    }

    #[test]
    fn mutex_type_and_thread_join_are_blocking_sites() {
        let src = "use std::sync::Mutex;\nfn f(h: std::thread::JoinHandle<()>) {\n    h.join().unwrap();\n}\n";
        let inv = scan(src);
        let names: Vec<&str> = inv.blocking.iter().map(|b| b.construct.as_str()).collect();
        assert_eq!(names, vec!["Mutex", "join"]);
    }

    #[test]
    fn enum_variant_named_barrier_is_not_a_blocking_type() {
        let src = "fn f(cr: &R) { cr.stage_ns(Stage::Barrier, 7); }\n";
        assert!(scan(src).blocking.is_empty());
        let std_src = "fn f() { let b = std::sync::Barrier::new(2); }\n";
        assert_eq!(scan(std_src).blocking[0].construct, "Barrier");
    }

    #[test]
    fn enum_variant_discriminant_named_barrier_is_not_a_blocking_type() {
        let src = "pub enum Stage { Encode = 0, Barrier = 1, Drain = 2 }\n";
        assert!(scan(src).blocking.is_empty());
        // ...but a path-reached std type followed by `=` still counts.
        let std_src = "fn f() { let b: std::sync::Barrier = make(); }\n";
        assert_eq!(scan(std_src).blocking[0].construct, "Barrier");
    }

    #[test]
    fn path_join_and_str_join_take_arguments_and_are_invisible() {
        let src = "fn f(p: &Path, xs: &[String]) {\n    let _ = p.join(\"x\");\n    let _ = xs.join(\", \");\n}\n";
        assert!(scan(src).blocking.is_empty());
    }

    #[test]
    fn thread_sleep_is_a_blocking_site() {
        let src = "fn f() { std::thread::sleep(Duration::from_millis(1)); }\n";
        assert_eq!(scan(src).blocking[0].construct, "sleep");
    }

    #[test]
    fn struct_fields_and_repr_are_extracted() {
        let src = "#[repr(C)]\n#[repr(align(64))]\npub struct Seg<T> {\n    \
                   len: CachePadded<AtomicUsize>,\n    \
                   pub(crate) slots: [UnsafeCell<MaybeUninit<T>>; SEG_CAP],\n}\n";
        let inv = scan(src);
        assert_eq!(inv.structs.len(), 1);
        let s = &inv.structs[0];
        assert_eq!(s.name, "Seg");
        assert!(s.repr_c);
        assert_eq!(s.repr_align, Some(64));
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "len");
        assert_eq!(s.fields[0].ty, "CachePadded<AtomicUsize>");
        assert_eq!(s.fields[1].name, "slots");
        assert_eq!(s.fields[1].ty, "[UnsafeCell<MaybeUninit<T>>; SEG_CAP]");
        assert_eq!(s.fields[1].line, 5);
    }

    #[test]
    fn tuple_and_unit_structs_are_skipped() {
        let inv = scan("struct A(u64, u64);\nstruct B;\nstruct C { x: u8 }\n");
        assert_eq!(inv.structs.len(), 1);
        assert_eq!(inv.structs[0].name, "C");
        assert!(!inv.structs[0].repr_c);
    }

    #[test]
    fn const_defs_are_extracted_with_cfg_preference_scores() {
        let src = "pub const A: usize = 512;\n\
                   #[cfg(not(feature = \"loom\"))]\nconst B: usize = 4;\n\
                   #[cfg(feature = \"loom\")]\nconst B: usize = 2;\n\
                   const fn f() {}\nfn g(p: *const u8) {}\n";
        let inv = scan(src);
        let vals: Vec<(&str, u64, u8)> = inv
            .consts
            .iter()
            .map(|c| (c.name.as_str(), c.value, c.score))
            .collect();
        assert_eq!(vals, vec![("A", 512, 2), ("B", 4, 1), ("B", 2, 0)]);
    }

    #[test]
    fn test_fns_are_extracted_and_cfg_test_is_not_confused_for_test() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn probe_works() {}\n    \
                   fn helper() {}\n}\n";
        let inv = scan(src);
        assert_eq!(inv.tests.len(), 1);
        assert_eq!(inv.tests[0].name, "probe_works");
        assert_eq!(inv.tests[0].line, 4);
    }

    #[test]
    fn loom_model_annotation_is_extracted() {
        let src = "fn f() {\n    // loom-model: publish_is_seen,drain_completes\n    \
                   tail.len.store(1, Ordering::Release);\n    w.store(2, Ordering::Release);\n}\n";
        let inv = scan(src);
        assert_eq!(
            inv.atomics[0].model.as_deref(),
            Some("publish_is_seen,drain_completes")
        );
        assert!(inv.atomics[1].model.is_none(), "annotation binds to the adjacent site only");
    }

    #[test]
    fn wf_bound_in_a_string_or_doc_example_never_registers() {
        let src = "fn f(q: &Q) {\n    let _s = \"// wf-bound: iters(8)\";\n    while q.try_pop().is_some() {}\n}\n";
        let inv = scan(src);
        assert_eq!(inv.loops.len(), 1);
        assert!(inv.loops[0].bound.is_none(), "string decoy must not annotate the loop");
    }
}
