//! Token-stream scanner: turns lexed source into the concurrency inventory.
//!
//! Three extraction passes run over each file's tokens:
//!
//! 1. **Atomic operations** — method calls whose argument list names a
//!    memory `Ordering` (`store`/`load`/`swap`), plus the unambiguous RMW
//!    family (`fetch_*`, `compare_exchange*`). `Vec::swap(i, j)` and
//!    `core::cmp::Ordering::Less` never match: the former has no ordering
//!    argument, the latter's variant is not a memory ordering.
//! 2. **`unsafe` items** — blocks, fns, impls, traits — each checked for an
//!    *adjacent* `// SAFETY:` comment: the contiguous run of comment and
//!    attribute lines directly above the item (or a trailing comment on the
//!    same line). Code between the comment and the item breaks adjacency —
//!    the false-accept the old 6-line-window shell heuristic had.
//! 3. **Test context** — `#[cfg(test)]` items and files under `tests/` are
//!    flagged so policy gates can treat test scaffolding differently from
//!    hot-path code.
//!
//! Release stores may carry a `// hb-writer: <role>` annotation naming the
//! unique writer role of the stored-to field; the happens-before gate
//! cross-checks those roles against `analysis/hb_map.toml`.

use crate::lexer::{lex, Comment, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Whether a site sits in shipped code or in test scaffolding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ctx {
    /// Non-test code compiled into the library/binary.
    Src,
    /// `#[cfg(test)]` items or files under a `tests/` directory.
    Test,
}

impl Ctx {
    /// Stable lowercase name used in lock files and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Ctx::Src => "src",
            Ctx::Test => "test",
        }
    }
}

/// One atomic operation site.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the method name.
    pub line: u32,
    /// Crate the file belongs to (from its `Cargo.toml`).
    pub crate_name: String,
    /// Src or Test context.
    pub ctx: Ctx,
    /// Identifier the method was called on (best-effort field name).
    pub receiver: String,
    /// Method name: `store`, `load`, `swap`, `fetch_add`, ...
    pub op: String,
    /// Memory orderings named in the argument list, in source order.
    /// `["?"]` when an RMW op passes its ordering through a variable.
    pub orderings: Vec<String>,
    /// `// hb-writer: <role>` annotation adjacent to the site, if any.
    pub writer_role: Option<String>,
}

impl AtomicSite {
    /// True if any named ordering equals `ord`.
    pub fn has_ordering(&self, ord: &str) -> bool {
        self.orderings.iter().any(|o| o == ord)
    }
}

/// One `unsafe` block/fn/impl/trait site.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Crate the file belongs to.
    pub crate_name: String,
    /// Src or Test context.
    pub ctx: Ctx,
    /// `block`, `fn`, `impl`, `trait`, or `other`.
    pub kind: &'static str,
    /// Whether an adjacent SAFETY comment documents the site.
    pub documented: bool,
}

/// The whole workspace's concurrency inventory.
#[derive(Debug, Default)]
pub struct Inventory {
    /// Every atomic operation, in (file, line) order.
    pub atomics: Vec<AtomicSite>,
    /// Every `unsafe` site, in (file, line) order.
    pub unsafes: Vec<UnsafeSite>,
    /// Atomic type mentions (`AtomicUsize`, ...) per file, for reporting.
    pub atomic_types: BTreeMap<String, BTreeMap<String, usize>>,
}

const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// Ops that are atomic only when an `Ordering` appears in the call.
const ORDERED_OPS: &[&str] = &["load", "store", "swap"];

/// Read-modify-write ops; unambiguous regardless of how the ordering is
/// spelled.
pub const RMW_OPS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Scans one file's source text.
///
/// `file` is the path recorded in diagnostics, `crate_name` the owning
/// crate, and `file_ctx` the whole-file default context (Test for files
/// under `tests/`).
pub fn scan_file(src: &str, file: &str, crate_name: &str, file_ctx: Ctx) -> Inventory {
    let lexed = lex(src);
    let toks = &lexed.toks;

    let attr = attr_ranges(toks);
    let in_test = test_regions(toks, &attr);
    let lines = LineInfo::new(toks, &attr, &lexed.comments);

    let mut inv = Inventory::default();

    for (i, t) in toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        let ctx = if file_ctx == Ctx::Test || in_test[i] {
            Ctx::Test
        } else {
            Ctx::Src
        };

        if ATOMIC_TYPES.contains(&name.as_str()) {
            *inv.atomic_types
                .entry(file.to_owned())
                .or_default()
                .entry(name.clone())
                .or_insert(0) += 1;
        }

        if name == "unsafe" && !attr.covers(i) {
            inv.unsafes.push(UnsafeSite {
                file: file.to_owned(),
                line: t.line,
                crate_name: crate_name.to_owned(),
                ctx,
                kind: unsafe_kind(toks, i),
                documented: lines.has_adjacent(t.line, &["SAFETY:", "# Safety"]),
            });
            continue;
        }

        let is_ordered = ORDERED_OPS.contains(&name.as_str());
        let is_rmw = RMW_OPS.contains(&name.as_str());
        if (is_ordered || is_rmw)
            && i > 0
            && toks[i - 1].kind == TokKind::Punct('.')
            && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('('))
        {
            let orderings = call_orderings(toks, i + 1);
            if is_ordered && orderings.is_empty() {
                continue; // Vec::swap, HashMap::load-alikes, etc.
            }
            let orderings = if orderings.is_empty() {
                vec!["?".to_owned()]
            } else {
                orderings
            };
            inv.atomics.push(AtomicSite {
                file: file.to_owned(),
                line: t.line,
                crate_name: crate_name.to_owned(),
                ctx,
                receiver: receiver_of(toks, i - 1),
                op: name.clone(),
                orderings,
                writer_role: lines.writer_role(t.line),
            });
        }
    }

    inv
}

impl Inventory {
    /// Merges another file's inventory into this one.
    pub fn absorb(&mut self, other: Inventory) {
        self.atomics.extend(other.atomics);
        self.unsafes.extend(other.unsafes);
        for (file, counts) in other.atomic_types {
            let slot = self.atomic_types.entry(file).or_default();
            for (ty, n) in counts {
                *slot.entry(ty).or_insert(0) += n;
            }
        }
    }
}

/// Attribute token ranges: `#[...]` and `#![...]` spans.
struct AttrRanges {
    ranges: Vec<(usize, usize)>,
}

impl AttrRanges {
    fn covers(&self, idx: usize) -> bool {
        self.ranges.iter().any(|&(s, e)| s <= idx && idx <= e)
    }

    /// Index of the range starting at `idx`, if any.
    fn starting_at(&self, idx: usize) -> Option<(usize, usize)> {
        self.ranges.iter().copied().find(|&(s, _)| s == idx)
    }
}

fn attr_ranges(toks: &[Tok]) -> AttrRanges {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct('#') {
            let mut j = i + 1;
            if matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct('!')) {
                j += 1;
            }
            if matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct('[')) {
                let mut depth = 0usize;
                let mut k = j;
                while k < toks.len() {
                    match toks[k].kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                ranges.push((i, k.min(toks.len().saturating_sub(1))));
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    AttrRanges { ranges }
}

/// Marks token indices that sit inside a `#[cfg(test)]`-gated item.
fn test_regions(toks: &[Tok], attr: &AttrRanges) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    for &(s, e) in &attr.ranges {
        if !attr_is_cfg_test(&toks[s..=e.min(toks.len() - 1)]) {
            continue;
        }
        // Skip any further attributes, then mark the gated item's extent:
        // to the matching `}` of its first brace, or to a `;` for bodyless
        // items.
        let mut j = e + 1;
        while let Some((_, ae)) = attr.starting_at(j) {
            j = ae + 1;
        }
        let mut depth = 0usize;
        let mut k = j;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        for flag in in_test.iter_mut().take((k + 1).min(toks.len())).skip(s) {
            *flag = true;
        }
    }
    in_test
}

fn attr_is_cfg_test(attr_toks: &[Tok]) -> bool {
    let mut idents = attr_toks.iter().filter_map(|t| match &t.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    });
    let first = idents.next();
    if first != Some("cfg") {
        return false;
    }
    let rest: Vec<_> = idents.collect();
    rest.contains(&"test") && !rest.contains(&"not")
}

/// What follows an `unsafe` keyword.
fn unsafe_kind(toks: &[Tok], i: usize) -> &'static str {
    match toks.get(i + 1).map(|t| &t.kind) {
        Some(TokKind::Punct('{')) => "block",
        Some(TokKind::Ident(s)) => match s.as_str() {
            "fn" => "fn",
            "impl" => "impl",
            "trait" => "trait",
            "extern" => "fn",
            _ => "other",
        },
        _ => "other",
    }
}

/// Memory orderings named anywhere in the call starting at the `(` token.
fn call_orderings(toks: &[Tok], open: usize) -> Vec<String> {
    let mut depth = 0usize;
    let mut out = Vec::new();
    let mut k = open;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            // Require a `Ordering::` (or `…::Ordering::`) path prefix so
            // a stray variable named `Relaxed`-like cannot match.
            TokKind::Ident(s)
                if ORDERINGS.contains(&s.as_str())
                    && k >= 3
                    && toks[k - 1].kind == TokKind::Punct(':')
                    && toks[k - 2].kind == TokKind::Punct(':')
                    && toks[k - 3].kind == TokKind::Ident("Ordering".into()) =>
            {
                out.push(s.clone());
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// Best-effort receiver (field) name: the identifier before the `.` at
/// `dot`, looking through one closing `]`/`)` group.
fn receiver_of(toks: &[Tok], dot: usize) -> String {
    if dot == 0 {
        return "expr".to_owned();
    }
    match &toks[dot - 1].kind {
        TokKind::Ident(s) => s.clone(),
        TokKind::Punct(close @ (']' | ')')) => {
            let open = if *close == ']' { '[' } else { '(' };
            let mut depth = 0isize;
            let mut k = dot - 1;
            loop {
                match &toks[k].kind {
                    TokKind::Punct(c) if *c == *close => depth += 1,
                    TokKind::Punct(c) if *c == open => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 {
                    return "expr".to_owned();
                }
                k -= 1;
            }
            match k.checked_sub(1).map(|p| &toks[p].kind) {
                Some(TokKind::Ident(s)) => s.clone(),
                _ => "expr".to_owned(),
            }
        }
        _ => "expr".to_owned(),
    }
}

/// Per-line classification for the adjacency rules.
struct LineInfo {
    /// Lines containing at least one non-attribute code token.
    code: BTreeSet<u32>,
    /// Lines containing attribute tokens (and no other code).
    attr: BTreeSet<u32>,
    /// Comment text per line (block comments mark every spanned line).
    comment: BTreeMap<u32, String>,
}

impl LineInfo {
    fn new(toks: &[Tok], attr: &AttrRanges, comments: &[Comment]) -> Self {
        let mut code = BTreeSet::new();
        let mut attr_lines = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            if attr.covers(i) {
                attr_lines.insert(t.line);
            } else {
                code.insert(t.line);
            }
        }
        let mut comment = BTreeMap::<u32, String>::new();
        for c in comments {
            for line in c.start_line..=c.end_line {
                comment.entry(line).or_default().push_str(&c.text);
            }
        }
        LineInfo {
            code,
            attr: attr_lines,
            comment,
        }
    }

    /// True if a comment adjacent to `line` contains any of `needles`.
    ///
    /// Adjacent means: a comment on `line` itself (trailing), or within the
    /// contiguous run of comment/attribute lines directly above — any code
    /// line breaks the run. This is the fix for the shell heuristic's
    /// false accepts: a SAFETY note six lines up, with code in between,
    /// no longer counts.
    fn has_adjacent(&self, line: u32, needles: &[&str]) -> bool {
        let hit = |l: u32| {
            self.comment
                .get(&l)
                .is_some_and(|t| needles.iter().any(|n| t.contains(n)))
        };
        if hit(line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let is_comment = self.comment.contains_key(&l);
            let is_attr = self.attr.contains(&l) && !self.code.contains(&l);
            if self.code.contains(&l) && !is_comment {
                // Pure code line: adjacency broken. A line holding both code
                // and a trailing comment still counts as a comment line for
                // the search below, then breaks the walk.
                return false;
            }
            if is_comment && hit(l) {
                return true;
            }
            if self.code.contains(&l) {
                return false; // code + trailing comment without the needle
            }
            if !is_comment && !is_attr {
                return false; // blank line breaks adjacency
            }
            l -= 1;
        }
        false
    }

    /// Extracts an adjacent `hb-writer: <role>` annotation, if present.
    fn writer_role(&self, line: u32) -> Option<String> {
        let extract = |l: u32| -> Option<String> {
            let text = self.comment.get(&l)?;
            let pos = text.find("hb-writer:")?;
            let rest = &text[pos + "hb-writer:".len()..];
            let role: String = rest
                .trim_start()
                .chars()
                .take_while(|c| !c.is_whitespace())
                .collect();
            (!role.is_empty()).then_some(role)
        };
        if let Some(r) = extract(line) {
            return Some(r);
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let is_comment = self.comment.contains_key(&l);
            let is_attr = self.attr.contains(&l) && !self.code.contains(&l);
            if is_comment {
                if let Some(r) = extract(l) {
                    return Some(r);
                }
            }
            if self.code.contains(&l) || (!is_comment && !is_attr) {
                return None;
            }
            l -= 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Inventory {
        scan_file(src, "test.rs", "demo", Ctx::Src)
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_site() {
        let inv = scan("fn f() { match x.cmp(&y) { core::cmp::Ordering::Less => {} _ => {} } }");
        assert!(inv.atomics.is_empty());
    }

    #[test]
    fn vec_swap_is_not_an_atomic_site() {
        let inv = scan("fn f(v: &mut Vec<u8>) { v.swap(0, 1); order.swap(i, j); }");
        assert!(inv.atomics.is_empty());
    }

    #[test]
    fn store_with_ordering_is_found_with_field_and_ordering() {
        let inv = scan("fn f() { self.tail.len.store(idx + 1, Ordering::Release); }");
        assert_eq!(inv.atomics.len(), 1);
        let s = &inv.atomics[0];
        assert_eq!(s.receiver, "len");
        assert_eq!(s.op, "store");
        assert_eq!(s.orderings, vec!["Release"]);
    }

    #[test]
    fn indexed_receiver_resolves_to_the_array_name() {
        let inv = scan("fn f() { cells[key as usize].fetch_add(1, Ordering::Relaxed); }");
        assert_eq!(inv.atomics[0].receiver, "cells");
        assert_eq!(inv.atomics[0].op, "fetch_add");
    }

    #[test]
    fn compare_exchange_collects_both_orderings() {
        let inv =
            scan("fn f() { w.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire); }");
        assert_eq!(inv.atomics[0].orderings, vec!["AcqRel", "Acquire"]);
    }

    #[test]
    fn rmw_with_variable_ordering_still_registers() {
        let inv = scan("fn f(o: Ordering) { w.fetch_add(1, o); }");
        assert_eq!(inv.atomics[0].orderings, vec!["?"]);
    }

    #[test]
    fn cfg_test_module_marks_sites_as_test_ctx() {
        let src = "fn f() { w.store(1, Ordering::Release); }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() { w.store(2, Ordering::SeqCst); }\n}\n";
        let inv = scan(src);
        assert_eq!(inv.atomics[0].ctx, Ctx::Src);
        assert_eq!(inv.atomics[1].ctx, Ctx::Test);
    }

    #[test]
    fn cfg_not_test_is_src() {
        let src = "#[cfg(not(test))]\nfn f() { w.store(1, Ordering::Release); }\n";
        assert_eq!(scan(src).atomics[0].ctx, Ctx::Src);
    }

    #[test]
    fn adjacent_safety_comment_documents_unsafe() {
        let src = "fn f() {\n    // SAFETY: idx is in bounds.\n    unsafe { g() };\n}\n";
        assert!(scan(src).unsafes[0].documented);
    }

    #[test]
    fn safety_comment_above_attributes_still_counts() {
        let src = "// SAFETY: the repr makes this sound.\n#[repr(C)]\n#[derive(Clone)]\nunsafe impl Send for X {}\n";
        let inv = scan(src);
        assert_eq!(inv.unsafes[0].kind, "impl");
        assert!(inv.unsafes[0].documented);
    }

    #[test]
    fn safety_comment_separated_by_code_is_a_false_accept_no_more() {
        let src = "// SAFETY: documents ONLY the first block.\nlet a = unsafe { g() };\nlet b = 1;\nlet c = unsafe { h() };\n";
        let inv = scan(src);
        assert!(inv.unsafes[0].documented);
        assert!(!inv.unsafes[1].documented, "code broke adjacency");
    }

    #[test]
    fn trailing_same_line_safety_counts() {
        let src = "let a = unsafe { g() }; // SAFETY: g is pure.\n";
        assert!(scan(src).unsafes[0].documented);
    }

    #[test]
    fn writer_role_annotation_is_extracted() {
        let src = "fn f() {\n    // hb-writer: producer\n    tail.len.store(1, Ordering::Release);\n}\n";
        assert_eq!(scan(src).atomics[0].writer_role.as_deref(), Some("producer"));
    }

    #[test]
    fn doc_example_atomics_are_invisible(){
        let src = "/// ```\n/// hits.fetch_add(1, Ordering::Relaxed);\n/// ```\npub fn wait() {}\n";
        assert!(scan(src).atomics.is_empty());
    }
}
