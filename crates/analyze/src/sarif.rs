//! SARIF 2.1.0 output for `check --format sarif`.
//!
//! Hand-rolled JSON, same no-serde policy as the wfbn-obs report writers:
//! the shape below is the minimal valid subset CI annotators consume — a
//! single run, one `reportingDescriptor` per gate, one `result` per
//! [`Diag`] with a `physicalLocation` carrying the workspace-relative URI
//! and the 1-based culprit line.

use crate::gates::Diag;

/// Every gate as a SARIF rule: (id, short description).
pub const RULES: &[(&str, &str)] = &[
    (
        "safety",
        "every `unsafe` item carries an adjacent SAFETY comment",
    ),
    (
        "waitfree",
        "no RMW atomics on hot-path crates, no denied orderings (analysis/policy.toml)",
    ),
    (
        "hb",
        "Release/Acquire pairs match analysis/hb_map.toml in both directions, one writer role per word",
    ),
    (
        "ratchet",
        "the set of atomic sites matches the reviewed analysis/atomics.lock baseline",
    ),
    (
        "waitloop",
        "every hot-path poll loop carries a wf-bound termination annotation declared in analysis/progress.toml",
    ),
    (
        "noblock",
        "no blocking construct (lock, park, sleep, channel recv, join) on hot-path crates",
    ),
    (
        "layout",
        "no two writer roles can share a cache line in structs declared in analysis/layout.toml",
    ),
    (
        "modelcov",
        "every covered atomic site names a loom model declared in analysis/coverage.toml",
    ),
];

/// Renders `diags` as a SARIF 2.1.0 log (pretty-printed, trailing newline).
pub fn render(diags: &[Diag]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"wfbn-analyze\",\n          \
         \"informationUri\": \"https://github.com/wfbn/wfbn\",\n          \
         \"rules\": [\n",
    );
    for (i, (id, desc)) in RULES.iter().enumerate() {
        let sep = if i + 1 == RULES.len() { "" } else { "," };
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{sep}\n",
            esc(id),
            esc(desc)
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let sep = if i + 1 == diags.len() { "" } else { "," };
        // SARIF regions are 1-based; a whole-file diag (line 0) gets line 1.
        let line = d.line.max(1);
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\
             \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {line}}}}}}}]}}{sep}\n",
            esc(d.gate),
            esc(&d.msg),
            esc(&d.file),
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// JSON string escaping: backslash, quote, and control characters.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_diag_list_is_a_valid_run_with_all_rules() {
        let s = render(&[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"results\": ["));
        for (id, _) in RULES {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "rule {id} listed");
        }
    }

    #[test]
    fn diag_renders_rule_message_and_location() {
        let d = Diag {
            gate: "waitloop",
            file: "crates/demo/src/lib.rs".to_owned(),
            line: 42,
            msg: "poll loop with \"quotes\"\nand a newline".to_owned(),
        };
        let s = render(&[d]);
        assert!(s.contains("\"ruleId\": \"waitloop\""));
        assert!(s.contains("\"uri\": \"crates/demo/src/lib.rs\""));
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("\\\"quotes\\\"\\nand"), "escaped payload: {s}");
    }

    #[test]
    fn whole_file_diags_clamp_to_line_one() {
        let d = Diag {
            gate: "ratchet",
            file: "analysis/atomics.lock".to_owned(),
            line: 0,
            msg: "drift".to_owned(),
        };
        assert!(render(&[d]).contains("\"startLine\": 1"));
    }
}
