//! `wfbn-analyze` — source-level concurrency analysis for the workspace.
//!
//! The wait-free guarantee rests on disciplines the type system cannot see:
//! exactly one writer per word per stage, no RMW atomics on the hot path,
//! and a precise Release→Acquire edge per shared field. The loom models and
//! the runtime ownership audit check those disciplines *dynamically*, on the
//! interleavings the tests happen to drive; this crate checks them
//! *statically*, on every commit, against checked-in baselines:
//!
//! * **Inventory** — a hand-rolled lexer ([`lexer`]) and scanner ([`scan`])
//!   extract every atomic operation (with its `Ordering`s), every `unsafe`
//!   site (with its SAFETY coverage), and every Release/Acquire pair, all
//!   `file:line`-precise, without compiling anything.
//! * **Gates** ([`gates`]) — the wait-freedom lint (`analysis/policy.toml`),
//!   the happens-before map check (`analysis/hb_map.toml`, mirroring
//!   DESIGN.md §8/§11), the atomics ratchet (`analysis/atomics.lock`), the
//!   bounded-loop termination check (`analysis/progress.toml`, DESIGN.md
//!   §13), the blocking-construct lint, the false-sharing layout check
//!   (`analysis/layout.toml`, DESIGN.md §16, backed by the conservative
//!   size/offset estimator in [`layout`]), and the loom model-coverage
//!   check (`analysis/coverage.toml`, DESIGN.md §16), plus the
//!   unsafe-coverage pass that replaced
//!   `tools/check_safety_comments.sh`'s 6-line-window heuristic.
//! * **Output** ([`sarif`]) — `check --format sarif` renders the same
//!   diagnostics as SARIF 2.1.0 for CI annotation; `--changed-since REF`
//!   filters them to the files a diff touches.
//!
//! Drift in either direction — an edge in code missing from the map, or a
//! stale map entry with no code behind it — fails `check`, so the docs and
//! the code cannot quietly diverge. See DESIGN.md §12.

pub mod config;
pub mod gates;
pub mod layout;
pub mod lexer;
pub mod minitoml;
pub mod ratchet;
pub mod sarif;
pub mod scan;
pub mod workspace;

use gates::Diag;
use std::collections::BTreeSet;
use std::path::Path;

/// Everything `check` needs, loaded from a workspace root.
pub struct Analysis {
    /// The scanned inventory.
    pub inventory: scan::Inventory,
    /// The wait-freedom policy.
    pub policy: config::Policy,
    /// The happens-before map.
    pub hb_map: config::HbMap,
    /// The atomics ratchet baseline.
    pub lock: ratchet::Lock,
    /// The bounded-loop (termination) declarations.
    pub progress: config::Progress,
    /// The per-struct ownership (false-sharing) table.
    pub layout: config::Layout,
    /// The loom model-coverage table.
    pub coverage: config::Coverage,
}

/// Scans `root` without loading any config (for `inventory`/`baseline`).
pub fn scan_only(root: &Path) -> Result<scan::Inventory, String> {
    workspace::scan_workspace(root).map_err(|e| format!("scan failed: {e}"))
}

/// Reads `analysis/atomics.lock` if present (empty lock otherwise).
pub fn load_lock(root: &Path) -> Result<ratchet::Lock, String> {
    let lock_path = root.join("analysis/atomics.lock");
    if !lock_path.is_file() {
        return Ok(ratchet::Lock::new());
    }
    let text = std::fs::read_to_string(&lock_path)
        .map_err(|e| format!("{}: {e}", lock_path.display()))?;
    ratchet::parse(&text).map_err(|e| format!("{}: {e}", lock_path.display()))
}

/// Loads configs and scans `root`; `Err` strings are fatal config problems
/// (unreadable/unparseable files), distinct from gate violations.
pub fn load(root: &Path) -> Result<Analysis, String> {
    let inventory = scan_only(root)?;
    let policy = config::Policy::load(&root.join("analysis/policy.toml"))
        .map_err(|e| e.to_string())?;
    let hb_map =
        config::HbMap::load(&root.join("analysis/hb_map.toml")).map_err(|e| e.to_string())?;
    let lock = load_lock(root)?;
    let progress = config::Progress::load(&root.join("analysis/progress.toml"))
        .map_err(|e| e.to_string())?;
    let layout = config::Layout::load(&root.join("analysis/layout.toml"))
        .map_err(|e| e.to_string())?;
    let coverage = config::Coverage::load(&root.join("analysis/coverage.toml"))
        .map_err(|e| e.to_string())?;
    Ok(Analysis {
        inventory,
        policy,
        hb_map,
        lock,
        progress,
        layout,
        coverage,
    })
}

/// Runs all seven gates (plus the safety pass) and returns every
/// violation, file:line-sorted.
pub fn check(analysis: &Analysis) -> Vec<Diag> {
    let mut diags = gates::gate_safety(&analysis.inventory);
    diags.extend(gates::gate_waitfree(&analysis.inventory, &analysis.policy));
    diags.extend(gates::gate_hb(
        &analysis.inventory,
        &analysis.hb_map,
        "analysis/hb_map.toml",
    ));
    diags.extend(gates::gate_ratchet(
        &analysis.inventory,
        &analysis.lock,
        "analysis/atomics.lock",
    ));
    diags.extend(gates::gate_waitloop(
        &analysis.inventory,
        &analysis.progress,
        "analysis/progress.toml",
    ));
    diags.extend(gates::gate_noblock(&analysis.inventory, &analysis.policy));
    diags.extend(gates::gate_layout(
        &analysis.inventory,
        &analysis.layout,
        "analysis/layout.toml",
    ));
    diags.extend(gates::gate_modelcov(
        &analysis.inventory,
        &analysis.coverage,
        &analysis.hb_map,
        "analysis/coverage.toml",
    ));
    diags.sort_by(|a, b| (&a.file, a.line, a.gate).cmp(&(&b.file, b.line, b.gate)));
    diags
}

/// `--changed-since` filtering: keeps only diagnostics whose culprit file
/// is in `changed`. This is the single code path every gate's output
/// flows through — config-culprit diags (a stale table entry, say) are
/// kept when the *config* file changed, exactly like source culprits.
pub fn filter_changed(diags: &mut Vec<Diag>, changed: &BTreeSet<String>) {
    diags.retain(|d| changed.contains(&d.file));
}

/// Convenience: load + check in one call (used by tests and the wrapper
/// script path).
pub fn check_root(root: &Path) -> Result<Vec<Diag>, String> {
    Ok(check(&load(root)?))
}
