//! The atomics ratchet: `analysis/atomics.lock`.
//!
//! Every atomic operation in the workspace is summarized into a *signature*
//! — `(crate, file, ctx, receiver, op, orderings)` — and the lock file
//! records the expected count per signature. Line numbers are deliberately
//! not part of the signature, so unrelated edits above a site do not churn
//! the baseline; adding, removing, or re-ordering-changing an atomic site
//! does.
//!
//! `check` fails on *any* drift — a new signature, a vanished one, or a
//! count change — with instructions to re-run `baseline`. Like PR 3's bench
//! regression gate, the point is not to forbid change but to make every
//! change to the concurrency surface an explicit, reviewed diff.
//!
//! Lines may carry a trailing ` # why: ...` justification; `baseline`
//! preserves justifications for signatures that survive regeneration.

use crate::scan::{AtomicSite, Ctx};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated lock entries: signature → (count, optional justification).
pub type Lock = BTreeMap<String, (usize, Option<String>)>;

/// Builds the signature string for one site.
pub fn signature(site: &AtomicSite) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}",
        site.crate_name,
        site.file,
        site.ctx.name(),
        site.receiver,
        site.op,
        site.orderings.join("+"),
    )
}

/// Aggregates scanned sites into signature counts.
pub fn aggregate(sites: &[AtomicSite]) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for s in sites {
        *out.entry(signature(s)).or_insert(0) += 1;
    }
    out
}

/// Parses a lock file's text.
///
/// Format, one entry per line (tab-separated, `x<count>` last):
/// `crate<TAB>file<TAB>ctx<TAB>receiver<TAB>op<TAB>orderings<TAB>x<count>`
/// optionally followed by ` # why: <justification>`.
pub fn parse(text: &str) -> Result<Lock, String> {
    let mut lock = Lock::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (entry, why) = match line.split_once(" # why: ") {
            Some((e, w)) => (e.trim_end(), Some(w.trim().to_owned())),
            None => (line, None),
        };
        let fields: Vec<&str> = entry.split('\t').collect();
        if fields.len() != 7 {
            return Err(format!(
                "line {}: expected 7 tab-separated fields, got {}",
                idx + 1,
                fields.len()
            ));
        }
        let count: usize = fields[6]
            .strip_prefix('x')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("line {}: malformed count `{}`", idx + 1, fields[6]))?;
        let sig = fields[..6].join("\t");
        lock.insert(sig, (count, why));
    }
    Ok(lock)
}

/// Renders a lock file from current sites, preserving justifications from
/// `previous` for signatures that still exist.
pub fn render(sites: &[AtomicSite], previous: &Lock) -> String {
    let counts = aggregate(sites);
    let mut out = String::new();
    out.push_str(
        "# analysis/atomics.lock — the atomics ratchet (generated; do not hand-edit counts).\n\
         #\n\
         # Every atomic operation in crates/ is summarized here as\n\
         # crate<TAB>file<TAB>ctx<TAB>receiver<TAB>op<TAB>orderings<TAB>x<count>.\n\
         # `wfbn-analyze -- check` fails on any drift in either direction; a new\n\
         # atomic site therefore requires a reviewed baseline update:\n\
         #     cargo run -p wfbn-analyze -- baseline\n\
         # Append ` # why: <one line>` to an entry to record its justification\n\
         # (preserved across regeneration). Policy for which ops are even\n\
         # allowed on the hot path lives in analysis/policy.toml; this file\n\
         # only pins the reviewed surface.\n",
    );
    let test_sites = sites.iter().filter(|s| s.ctx == Ctx::Test).count();
    let _ = writeln!(
        out,
        "#\n# {} sites ({} src, {} test) across {} signatures.\n",
        sites.len(),
        sites.len() - test_sites,
        test_sites,
        counts.len(),
    );
    for (sig, count) in &counts {
        let _ = write!(out, "{sig}\tx{count}");
        if let Some((_, Some(why))) = previous.get(sig) {
            let _ = write!(out, " # why: {why}");
        }
        out.push('\n');
    }
    out
}

/// Drift between the current tree and the lock: `(signature, lock count,
/// current count)`; 0 on either side means absent.
pub fn diff(current: &BTreeMap<String, usize>, lock: &Lock) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for (sig, count) in current {
        let locked = lock.get(sig).map_or(0, |(c, _)| *c);
        if locked != *count {
            out.push((sig.clone(), locked, *count));
        }
    }
    for (sig, (count, _)) in lock {
        if !current.contains_key(sig) {
            out.push((sig.clone(), *count, 0));
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(receiver: &str, op: &str, ord: &str, ctx: Ctx) -> AtomicSite {
        AtomicSite {
            file: "src/lib.rs".into(),
            line: 1,
            crate_name: "demo".into(),
            ctx,
            receiver: receiver.into(),
            op: op.into(),
            orderings: vec![ord.into()],
            writer_role: None,
            model: None,
        }
    }

    #[test]
    fn roundtrips_with_justifications() {
        let sites = vec![
            site("len", "store", "Release", Ctx::Src),
            site("len", "store", "Release", Ctx::Src),
            site("live", "fetch_add", "Relaxed", Ctx::Test),
        ];
        let mut prev = Lock::new();
        prev.insert(
            signature(&sites[2]),
            (9, Some("test drop counter".into())),
        );
        let text = render(&sites, &prev);
        let lock = parse(&text).expect("parses");
        assert_eq!(lock.len(), 2);
        assert_eq!(lock[&signature(&sites[0])].0, 2);
        assert_eq!(
            lock[&signature(&sites[2])].1.as_deref(),
            Some("test drop counter")
        );
        assert!(diff(&aggregate(&sites), &lock).is_empty());
    }

    #[test]
    fn diff_flags_both_directions() {
        let sites = vec![site("a", "store", "Release", Ctx::Src)];
        let lock = parse(&render(&sites, &Lock::new())).expect("parses");
        let grown = vec![
            site("a", "store", "Release", Ctx::Src),
            site("b", "load", "Acquire", Ctx::Src),
        ];
        let d = diff(&aggregate(&grown), &lock);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, 0); // not in lock
        let shrunk: Vec<AtomicSite> = Vec::new();
        let d = diff(&aggregate(&shrunk), &lock);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].2, 0); // vanished from tree
    }
}
