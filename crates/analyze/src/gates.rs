//! The five static gates (plus the unsafe-coverage pass) over the
//! inventory.
//!
//! | gate | checks | config |
//! |---|---|---|
//! | `safety` | every `unsafe` site has an adjacent SAFETY comment | — |
//! | `waitfree` | no RMW ops on hot-path crates, no denied orderings | `analysis/policy.toml` |
//! | `hb` | Release/Acquire pairs ⇔ `analysis/hb_map.toml`, one writer role per field | `analysis/hb_map.toml` |
//! | `ratchet` | atomic-site signatures ⇔ `analysis/atomics.lock` | `analysis/atomics.lock` |
//! | `waitloop` | every hot-path poll loop carries a declared `wf-bound` | `analysis/progress.toml` |
//! | `noblock` | no blocking construct on hot-path crates' shipped code | `analysis/policy.toml` |
//!
//! Each violation is a [`Diag`] with a `file:line` culprit; the clean tree
//! produces none, and every seeded fixture under `fixtures/` produces at
//! least one (the negative controls in `tests/gates.rs`).

use crate::config::{HbMap, Policy, Progress};
use crate::ratchet::{self, Lock};
use crate::scan::{AtomicSite, Ctx, Inventory};
use std::collections::BTreeMap;

/// One violation: which gate fired, where, and why.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Gate name: `safety`, `waitfree`, `hb`, `ratchet`, `waitloop`, or
    /// `noblock`.
    pub gate: &'static str,
    /// File the culprit lives in (source file or config file).
    pub file: String,
    /// 1-based culprit line (0 when the culprit is a whole file).
    pub line: u32,
    /// Human-readable explanation with the expected fix.
    pub msg: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}:{}: {}", self.gate, self.file, self.line, self.msg)
    }
}

/// Gate 0: every `unsafe` item carries an adjacent SAFETY comment.
pub fn gate_safety(inv: &Inventory) -> Vec<Diag> {
    inv.unsafes
        .iter()
        .filter(|u| !u.documented)
        .map(|u| Diag {
            gate: "safety",
            file: u.file.clone(),
            line: u.line,
            msg: format!(
                "`unsafe {}` without an adjacent `// SAFETY:` comment; the \
                 comment must sit directly above the item (attributes and \
                 blank-free comment runs only — code in between breaks \
                 adjacency)",
                u.kind
            ),
        })
        .collect()
}

/// Gate 1: the wait-freedom lint.
pub fn gate_waitfree(inv: &Inventory, policy: &Policy) -> Vec<Diag> {
    let mut out = Vec::new();
    for s in &inv.atomics {
        let exempt_crate = policy.exempt_crates.iter().any(|c| c == &s.crate_name);
        let waived = policy.waiver_for(&s.file, &s.receiver, &s.op).is_some();

        // Denied orderings (SeqCst) apply everywhere unless waived.
        if !waived {
            for ord in &s.orderings {
                if policy.deny_orderings.iter().any(|d| d == ord)
                    && (s.ctx == Ctx::Src || policy.deny_orderings_in_tests)
                {
                    out.push(Diag {
                        gate: "waitfree",
                        file: s.file.clone(),
                        line: s.line,
                        msg: format!(
                            "`{}.{}` uses denied ordering `{ord}`; the workspace \
                             carries no {ord} site — use Release/Acquire (or \
                             Relaxed for single-writer bookkeeping) and record \
                             a waiver in analysis/policy.toml if this one is \
                             truly necessary",
                            s.receiver, s.op
                        ),
                    });
                }
            }
        }

        // RMW denial on hot-path crates' shipped code.
        let hot = policy.hot_crates.iter().any(|c| c == &s.crate_name);
        let denied_op = policy.deny_ops.iter().any(|d| d == &s.op);
        if hot && denied_op && !exempt_crate && !waived && !(s.ctx == Ctx::Test && policy.allow_in_tests)
        {
            out.push(Diag {
                gate: "waitfree",
                file: s.file.clone(),
                line: s.line,
                msg: format!(
                    "RMW op `{}.{}({})` on hot-path crate `{}`: the wait-free \
                     protocol permits only single-writer stores and \
                     Release/Acquire loads on this path (DESIGN §8); move the \
                     contended word behind an SPSC hand-off, or add a \
                     reviewed [[waiver]] to analysis/policy.toml",
                    s.receiver,
                    s.op,
                    s.orderings.join(", "),
                    s.crate_name
                ),
            });
        }
    }
    out
}

/// Gate 2: the happens-before map check.
pub fn gate_hb(inv: &Inventory, map: &HbMap, map_path: &str) -> Vec<Diag> {
    let mut out = Vec::new();

    // Group src-context Release stores / Acquire loads / AcqRel RMWs by
    // (file, field).
    #[derive(Default)]
    struct FieldUse<'a> {
        releases: Vec<&'a AtomicSite>,
        acquires: Vec<&'a AtomicSite>,
        rmw_acqrel: Vec<&'a AtomicSite>,
    }
    let mut uses: BTreeMap<(String, String), FieldUse> = BTreeMap::new();
    for s in inv.atomics.iter().filter(|s| s.ctx == Ctx::Src) {
        let key = (s.file.clone(), s.receiver.clone());
        let slot = uses.entry(key).or_default();
        let is_rmw = crate::scan::RMW_OPS.contains(&s.op.as_str());
        // Any acquiring or releasing RMW counts — a CAS with a plain
        // `Acquire` success ordering is still the reader end of an edge
        // and must not slip past the map unclassified.
        if is_rmw
            && (s.has_ordering("AcqRel")
                || s.has_ordering("SeqCst")
                || s.has_ordering("Acquire")
                || s.has_ordering("Release"))
        {
            slot.rmw_acqrel.push(s);
        } else if s.op == "store" && s.has_ordering("Release") {
            slot.releases.push(s);
        } else if s.op == "load" && s.has_ordering("Acquire") {
            slot.acquires.push(s);
        }
    }

    for ((file, field), used) in &uses {
        let edge = map.edge_for(file, field);
        let synchronizing = !used.releases.is_empty()
            || !used.acquires.is_empty()
            || !used.rmw_acqrel.is_empty();
        if !synchronizing {
            continue;
        }
        let Some(edge) = edge else {
            let site = used
                .releases
                .first()
                .or(used.acquires.first())
                .or(used.rmw_acqrel.first())
                .expect("synchronizing implies at least one site");
            out.push(Diag {
                gate: "hb",
                file: file.clone(),
                line: site.line,
                msg: format!(
                    "synchronizing access to `{field}` ({} {}) has no edge in \
                     {map_path}: a new release/acquire pair must be added to \
                     the map AND to DESIGN.md's happens-before table",
                    site.op,
                    site.orderings.join("+")
                ),
            });
            continue;
        };

        // Writer-role discipline: every Release store carries an hb-writer
        // annotation, all agree, and they match the map.
        let mut roles: Vec<(&str, u32)> = Vec::new();
        for r in used.releases.iter().chain(used.rmw_acqrel.iter()) {
            match &r.writer_role {
                None => out.push(Diag {
                    gate: "hb",
                    file: file.clone(),
                    line: r.line,
                    msg: format!(
                        "Release site on `{field}` lacks an adjacent \
                         `// hb-writer: <role>` annotation (expected role \
                         `{}` per {map_path})",
                        edge.writer
                    ),
                }),
                Some(role) => roles.push((role, r.line)),
            }
        }
        for (role, line) in &roles {
            if *role != edge.writer {
                out.push(Diag {
                    gate: "hb",
                    file: file.clone(),
                    line: *line,
                    msg: format!(
                        "two-writer violation on `{field}`: site annotates \
                         writer role `{role}` but {map_path} declares the \
                         single writer `{}` — exactly one role may store \
                         this word",
                        edge.writer
                    ),
                });
            }
        }

        // Shape: a release-acquire edge needs both ends in code.
        if edge.kind == "rmw" {
            if used.rmw_acqrel.is_empty() {
                out.push(Diag {
                    gate: "hb",
                    file: map_path.to_owned(),
                    line: edge.line,
                    msg: format!(
                        "stale edge: {map_path} declares an AcqRel RMW edge \
                         on `{}::{field}` but the code has none",
                        edge.file
                    ),
                });
            }
        } else {
            if used.releases.is_empty() {
                out.push(Diag {
                    gate: "hb",
                    file: file.clone(),
                    line: used.acquires.first().map_or(0, |a| a.line),
                    msg: format!(
                        "orphan Acquire: load(s) on `{field}` have no Release \
                         store counterpart in this file — the declared edge \
                         is one-legged, so the load synchronizes with \
                         nothing; restore the Release publish or drop the \
                         edge from {map_path}"
                    ),
                });
            }
            if used.acquires.is_empty() {
                out.push(Diag {
                    gate: "hb",
                    file: file.clone(),
                    line: used.releases.first().map_or(0, |r| r.line),
                    msg: format!(
                        "orphan Release store on `{field}`: no Acquire load \
                         pairs with it in this file, so the store \
                         synchronizes nothing — either add the consumer or \
                         downgrade to Relaxed and drop the edge from \
                         {map_path}"
                    ),
                });
            }
        }
    }

    // Stale edges: declared in the map, absent from code.
    for edge in &map.edges {
        let key = (edge.file.clone(), edge.field.clone());
        let present = uses.get(&key).is_some_and(|u| {
            !u.releases.is_empty() || !u.acquires.is_empty() || !u.rmw_acqrel.is_empty()
        });
        if !present {
            out.push(Diag {
                gate: "hb",
                file: map_path.to_owned(),
                line: edge.line,
                msg: format!(
                    "stale edge: {map_path} declares `{}::{}` ({}) but the \
                     code no longer has a synchronizing access on that \
                     field — update the map and DESIGN.md together",
                    edge.file, edge.field, edge.design
                ),
            });
        }
    }

    out
}

/// Gate 4: the bounded-loop (termination) check.
///
/// A *poll loop* is any `loop`/`while` whose condition or body re-reads
/// shared state: an atomic `load`, a configured poll method
/// (`try_pop`, ...), or a `spin_loop`/`yield_now` hint. Every such loop in
/// the configured crates' shipped code must carry a contiguous
/// `// wf-bound: <kind>(<arg>)` annotation, and the `(file, bound)`
/// multiset of annotations must equal the `[[loop]]` table in
/// `analysis/progress.toml` — so an unannotated poll loop, an annotation
/// with no reviewed declaration, and a stale declaration all fail.
pub fn gate_waitloop(inv: &Inventory, progress: &Progress, progress_path: &str) -> Vec<Diag> {
    let mut out = Vec::new();
    if progress.crates.is_empty() {
        return out; // gate disabled (no progress.toml)
    }

    // Declared (file, bound) -> the [[loop]] header lines still unmatched.
    let mut decls: BTreeMap<(&str, &str), Vec<u32>> = BTreeMap::new();
    for d in &progress.loops {
        decls
            .entry((d.file.as_str(), d.bound.as_str()))
            .or_default()
            .push(d.line);
    }

    for l in &inv.loops {
        if l.ctx != Ctx::Src || !progress.crates.iter().any(|c| c == &l.crate_name) {
            continue;
        }
        let is_poll = !l.loads.is_empty()
            || !l.spins.is_empty()
            || l.calls
                .iter()
                .any(|(n, _)| progress.poll_methods.iter().any(|m| m == n));
        if !is_poll && l.bound.is_none() {
            continue;
        }
        let Some(bound) = &l.bound else {
            out.push(Diag {
                gate: "waitloop",
                file: l.file.clone(),
                line: l.line,
                msg: format!(
                    "poll loop (`{}` polling {}) has no adjacent \
                     `// wf-bound: <kind>(<arg>)` annotation; every hot-path \
                     poll loop needs a declared termination bound backed by a \
                     [[loop]] entry in {progress_path} (DESIGN §13)",
                    l.kind,
                    l.trigger_summary(&progress.poll_methods),
                ),
            });
            continue;
        };
        let kind = bound.split('(').next().unwrap_or(bound);
        if !progress.kinds.iter().any(|k| k == kind) {
            out.push(Diag {
                gate: "waitloop",
                file: l.file.clone(),
                line: l.line,
                msg: format!(
                    "unknown wf-bound kind `{kind}` (annotation `{bound}`); \
                     accepted kinds are [{}] per {progress_path}",
                    progress.kinds.join(", ")
                ),
            });
            continue;
        }
        let matched = decls
            .get_mut(&(l.file.as_str(), bound.as_str()))
            .and_then(|lines| (!lines.is_empty()).then(|| lines.remove(0)));
        if matched.is_none() {
            out.push(Diag {
                gate: "waitloop",
                file: l.file.clone(),
                line: l.line,
                msg: format!(
                    "wf-bound `{bound}` on this poll loop is not declared in \
                     {progress_path}: add a [[loop]] entry with file/bound \
                     and a one-line `why` proof sketch",
                ),
            });
        }
    }

    // Leftover declarations have no annotated loop behind them.
    for ((file, bound), lines) in decls {
        for line in lines {
            out.push(Diag {
                gate: "waitloop",
                file: progress_path.to_owned(),
                line,
                msg: format!(
                    "stale [[loop]] declaration: {progress_path} declares \
                     bound `{bound}` in `{file}` but no annotated poll loop \
                     matches — update the table and DESIGN §13 together",
                ),
            });
        }
    }

    out
}

/// Gate 5: the blocking-construct lint.
///
/// Denies every recorded blocking construct (lock/condvar/channel types,
/// `park`/`sleep`/`recv` calls, bare `.join()`, `spin_loop` outside any
/// loop) in the `[noblock]` crates' shipped code, minus reviewed
/// `[[noblock_waiver]]` entries.
pub fn gate_noblock(inv: &Inventory, policy: &Policy) -> Vec<Diag> {
    let mut out = Vec::new();
    if policy.noblock_crates.is_empty() {
        return out; // gate disabled (no [noblock] section)
    }
    for b in &inv.blocking {
        if b.ctx != Ctx::Src || !policy.noblock_crates.iter().any(|c| c == &b.crate_name) {
            continue;
        }
        if policy.noblock_waiver_for(&b.file, &b.construct).is_some() {
            continue;
        }
        out.push(Diag {
            gate: "noblock",
            file: b.file.clone(),
            line: b.line,
            msg: format!(
                "blocking construct `{}` on hot-path crate `{}`: the \
                 wait-free path admits no lock, park, sleep, channel recv, \
                 or join (DESIGN §8); move it to setup/teardown scaffolding \
                 or add a reviewed [[noblock_waiver]] with its justification \
                 to analysis/policy.toml",
                b.construct, b.crate_name
            ),
        });
    }
    out
}

/// Gate 3: the atomics ratchet.
pub fn gate_ratchet(inv: &Inventory, lock: &Lock, lock_path: &str) -> Vec<Diag> {
    let current = ratchet::aggregate(&inv.atomics);
    ratchet::diff(&current, lock)
        .into_iter()
        .map(|(sig, locked, now)| {
            let pretty = sig.replace('\t', " ");
            // Point at a concrete culprit line when the site exists in code.
            let site = inv
                .atomics
                .iter()
                .find(|s| ratchet::signature(s) == sig);
            Diag {
                gate: "ratchet",
                file: site.map_or_else(|| lock_path.to_owned(), |s| s.file.clone()),
                line: site.map_or(0, |s| s.line),
                msg: format!(
                    "atomics baseline drift for `{pretty}`: lock has x{locked}, \
                     tree has x{now}; review the change and re-baseline with \
                     `cargo run -p wfbn-analyze -- baseline`",
                ),
            }
        })
        .collect()
}
