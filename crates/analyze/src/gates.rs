//! The seven static gates (plus the unsafe-coverage pass) over the
//! inventory.
//!
//! | gate | checks | config |
//! |---|---|---|
//! | `safety` | every `unsafe` site has an adjacent SAFETY comment | — |
//! | `waitfree` | no RMW ops on hot-path crates, no denied orderings | `analysis/policy.toml` |
//! | `hb` | Release/Acquire pairs ⇔ `analysis/hb_map.toml`, one writer role per field | `analysis/hb_map.toml` |
//! | `ratchet` | atomic-site signatures ⇔ `analysis/atomics.lock` | `analysis/atomics.lock` |
//! | `waitloop` | every hot-path poll loop carries a declared `wf-bound` | `analysis/progress.toml` |
//! | `noblock` | no blocking construct on hot-path crates' shipped code | `analysis/policy.toml` |
//! | `layout` | no two writer roles share a cache line in declared structs | `analysis/layout.toml` |
//! | `modelcov` | every covered atomic site names a declared loom model | `analysis/coverage.toml` |
//!
//! Each violation is a [`Diag`] with a `file:line` culprit; the clean tree
//! produces none, and every seeded fixture under `fixtures/` produces at
//! least one (the negative controls in `tests/gates.rs`).

use crate::config::{Coverage, HbMap, Layout, Policy, Progress};
use crate::ratchet::{self, Lock};
use crate::scan::{AtomicSite, Ctx, Inventory};
use std::collections::{BTreeMap, BTreeSet};

/// One violation: which gate fired, where, and why.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Gate name: `safety`, `waitfree`, `hb`, `ratchet`, `waitloop`,
    /// `noblock`, `layout`, or `modelcov`.
    pub gate: &'static str,
    /// File the culprit lives in (source file or config file).
    pub file: String,
    /// 1-based culprit line (0 when the culprit is a whole file).
    pub line: u32,
    /// Human-readable explanation with the expected fix.
    pub msg: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}:{}: {}", self.gate, self.file, self.line, self.msg)
    }
}

/// Gate 0: every `unsafe` item carries an adjacent SAFETY comment.
pub fn gate_safety(inv: &Inventory) -> Vec<Diag> {
    inv.unsafes
        .iter()
        .filter(|u| !u.documented)
        .map(|u| Diag {
            gate: "safety",
            file: u.file.clone(),
            line: u.line,
            msg: format!(
                "`unsafe {}` without an adjacent `// SAFETY:` comment; the \
                 comment must sit directly above the item (attributes and \
                 blank-free comment runs only — code in between breaks \
                 adjacency)",
                u.kind
            ),
        })
        .collect()
}

/// Gate 1: the wait-freedom lint.
pub fn gate_waitfree(inv: &Inventory, policy: &Policy) -> Vec<Diag> {
    let mut out = Vec::new();
    for s in &inv.atomics {
        let exempt_crate = policy.exempt_crates.iter().any(|c| c == &s.crate_name);
        let waived = policy.waiver_for(&s.file, &s.receiver, &s.op).is_some();

        // Denied orderings (SeqCst) apply everywhere unless waived.
        if !waived {
            for ord in &s.orderings {
                if policy.deny_orderings.iter().any(|d| d == ord)
                    && (s.ctx == Ctx::Src || policy.deny_orderings_in_tests)
                {
                    out.push(Diag {
                        gate: "waitfree",
                        file: s.file.clone(),
                        line: s.line,
                        msg: format!(
                            "`{}.{}` uses denied ordering `{ord}`; the workspace \
                             carries no {ord} site — use Release/Acquire (or \
                             Relaxed for single-writer bookkeeping) and record \
                             a waiver in analysis/policy.toml if this one is \
                             truly necessary",
                            s.receiver, s.op
                        ),
                    });
                }
            }
        }

        // RMW denial on hot-path crates' shipped code.
        let hot = policy.hot_crates.iter().any(|c| c == &s.crate_name);
        let denied_op = policy.deny_ops.iter().any(|d| d == &s.op);
        if hot && denied_op && !exempt_crate && !waived && !(s.ctx == Ctx::Test && policy.allow_in_tests)
        {
            out.push(Diag {
                gate: "waitfree",
                file: s.file.clone(),
                line: s.line,
                msg: format!(
                    "RMW op `{}.{}({})` on hot-path crate `{}`: the wait-free \
                     protocol permits only single-writer stores and \
                     Release/Acquire loads on this path (DESIGN §8); move the \
                     contended word behind an SPSC hand-off, or add a \
                     reviewed [[waiver]] to analysis/policy.toml",
                    s.receiver,
                    s.op,
                    s.orderings.join(", "),
                    s.crate_name
                ),
            });
        }
    }
    out
}

/// Gate 2: the happens-before map check.
pub fn gate_hb(inv: &Inventory, map: &HbMap, map_path: &str) -> Vec<Diag> {
    let mut out = Vec::new();

    // Group src-context Release stores / Acquire loads / AcqRel RMWs by
    // (file, field).
    #[derive(Default)]
    struct FieldUse<'a> {
        releases: Vec<&'a AtomicSite>,
        acquires: Vec<&'a AtomicSite>,
        rmw_acqrel: Vec<&'a AtomicSite>,
    }
    let mut uses: BTreeMap<(String, String), FieldUse> = BTreeMap::new();
    for s in inv.atomics.iter().filter(|s| s.ctx == Ctx::Src) {
        let key = (s.file.clone(), s.receiver.clone());
        let slot = uses.entry(key).or_default();
        let is_rmw = crate::scan::RMW_OPS.contains(&s.op.as_str());
        // Any acquiring or releasing RMW counts — a CAS with a plain
        // `Acquire` success ordering is still the reader end of an edge
        // and must not slip past the map unclassified.
        if is_rmw
            && (s.has_ordering("AcqRel")
                || s.has_ordering("SeqCst")
                || s.has_ordering("Acquire")
                || s.has_ordering("Release"))
        {
            slot.rmw_acqrel.push(s);
        } else if s.op == "store" && s.has_ordering("Release") {
            slot.releases.push(s);
        } else if s.op == "load" && s.has_ordering("Acquire") {
            slot.acquires.push(s);
        }
    }

    for ((file, field), used) in &uses {
        let edge = map.edge_for(file, field);
        let synchronizing = !used.releases.is_empty()
            || !used.acquires.is_empty()
            || !used.rmw_acqrel.is_empty();
        if !synchronizing {
            continue;
        }
        let Some(edge) = edge else {
            let site = used
                .releases
                .first()
                .or(used.acquires.first())
                .or(used.rmw_acqrel.first())
                .expect("synchronizing implies at least one site");
            out.push(Diag {
                gate: "hb",
                file: file.clone(),
                line: site.line,
                msg: format!(
                    "synchronizing access to `{field}` ({} {}) has no edge in \
                     {map_path}: a new release/acquire pair must be added to \
                     the map AND to DESIGN.md's happens-before table",
                    site.op,
                    site.orderings.join("+")
                ),
            });
            continue;
        };

        // Writer-role discipline: every Release store carries an hb-writer
        // annotation, all agree, and they match the map.
        let mut roles: Vec<(&str, u32)> = Vec::new();
        for r in used.releases.iter().chain(used.rmw_acqrel.iter()) {
            match &r.writer_role {
                None => out.push(Diag {
                    gate: "hb",
                    file: file.clone(),
                    line: r.line,
                    msg: format!(
                        "Release site on `{field}` lacks an adjacent \
                         `// hb-writer: <role>` annotation (expected role \
                         `{}` per {map_path})",
                        edge.writer
                    ),
                }),
                Some(role) => roles.push((role, r.line)),
            }
        }
        for (role, line) in &roles {
            if *role != edge.writer {
                out.push(Diag {
                    gate: "hb",
                    file: file.clone(),
                    line: *line,
                    msg: format!(
                        "two-writer violation on `{field}`: site annotates \
                         writer role `{role}` but {map_path} declares the \
                         single writer `{}` — exactly one role may store \
                         this word",
                        edge.writer
                    ),
                });
            }
        }

        // Shape: a release-acquire edge needs both ends in code.
        if edge.kind == "rmw" {
            if used.rmw_acqrel.is_empty() {
                out.push(Diag {
                    gate: "hb",
                    file: map_path.to_owned(),
                    line: edge.line,
                    msg: format!(
                        "stale edge: {map_path} declares an AcqRel RMW edge \
                         on `{}::{field}` but the code has none",
                        edge.file
                    ),
                });
            }
        } else {
            if used.releases.is_empty() {
                out.push(Diag {
                    gate: "hb",
                    file: file.clone(),
                    line: used.acquires.first().map_or(0, |a| a.line),
                    msg: format!(
                        "orphan Acquire: load(s) on `{field}` have no Release \
                         store counterpart in this file — the declared edge \
                         is one-legged, so the load synchronizes with \
                         nothing; restore the Release publish or drop the \
                         edge from {map_path}"
                    ),
                });
            }
            if used.acquires.is_empty() {
                out.push(Diag {
                    gate: "hb",
                    file: file.clone(),
                    line: used.releases.first().map_or(0, |r| r.line),
                    msg: format!(
                        "orphan Release store on `{field}`: no Acquire load \
                         pairs with it in this file, so the store \
                         synchronizes nothing — either add the consumer or \
                         downgrade to Relaxed and drop the edge from \
                         {map_path}"
                    ),
                });
            }
        }
    }

    // Stale edges: declared in the map, absent from code.
    for edge in &map.edges {
        let key = (edge.file.clone(), edge.field.clone());
        let present = uses.get(&key).is_some_and(|u| {
            !u.releases.is_empty() || !u.acquires.is_empty() || !u.rmw_acqrel.is_empty()
        });
        if !present {
            out.push(Diag {
                gate: "hb",
                file: map_path.to_owned(),
                line: edge.line,
                msg: format!(
                    "stale edge: {map_path} declares `{}::{}` ({}) but the \
                     code no longer has a synchronizing access on that \
                     field — update the map and DESIGN.md together",
                    edge.file, edge.field, edge.design
                ),
            });
        }
    }

    out
}

/// Gate 4: the bounded-loop (termination) check.
///
/// A *poll loop* is any `loop`/`while` whose condition or body re-reads
/// shared state: an atomic `load`, a configured poll method
/// (`try_pop`, ...), or a `spin_loop`/`yield_now` hint. Every such loop in
/// the configured crates' shipped code must carry a contiguous
/// `// wf-bound: <kind>(<arg>)` annotation, and the `(file, bound)`
/// multiset of annotations must equal the `[[loop]]` table in
/// `analysis/progress.toml` — so an unannotated poll loop, an annotation
/// with no reviewed declaration, and a stale declaration all fail.
pub fn gate_waitloop(inv: &Inventory, progress: &Progress, progress_path: &str) -> Vec<Diag> {
    let mut out = Vec::new();
    if progress.crates.is_empty() {
        return out; // gate disabled (no progress.toml)
    }

    // Declared (file, bound) -> the [[loop]] header lines still unmatched.
    let mut decls: BTreeMap<(&str, &str), Vec<u32>> = BTreeMap::new();
    for d in &progress.loops {
        decls
            .entry((d.file.as_str(), d.bound.as_str()))
            .or_default()
            .push(d.line);
    }

    for l in &inv.loops {
        if l.ctx != Ctx::Src || !progress.crates.iter().any(|c| c == &l.crate_name) {
            continue;
        }
        let is_poll = !l.loads.is_empty()
            || !l.spins.is_empty()
            || l.calls
                .iter()
                .any(|(n, _)| progress.poll_methods.iter().any(|m| m == n));
        if !is_poll && l.bound.is_none() {
            continue;
        }
        let Some(bound) = &l.bound else {
            out.push(Diag {
                gate: "waitloop",
                file: l.file.clone(),
                line: l.line,
                msg: format!(
                    "poll loop (`{}` polling {}) has no adjacent \
                     `// wf-bound: <kind>(<arg>)` annotation; every hot-path \
                     poll loop needs a declared termination bound backed by a \
                     [[loop]] entry in {progress_path} (DESIGN §13)",
                    l.kind,
                    l.trigger_summary(&progress.poll_methods),
                ),
            });
            continue;
        };
        let kind = bound.split('(').next().unwrap_or(bound);
        if !progress.kinds.iter().any(|k| k == kind) {
            out.push(Diag {
                gate: "waitloop",
                file: l.file.clone(),
                line: l.line,
                msg: format!(
                    "unknown wf-bound kind `{kind}` (annotation `{bound}`); \
                     accepted kinds are [{}] per {progress_path}",
                    progress.kinds.join(", ")
                ),
            });
            continue;
        }
        let matched = decls
            .get_mut(&(l.file.as_str(), bound.as_str()))
            .and_then(|lines| (!lines.is_empty()).then(|| lines.remove(0)));
        if matched.is_none() {
            out.push(Diag {
                gate: "waitloop",
                file: l.file.clone(),
                line: l.line,
                msg: format!(
                    "wf-bound `{bound}` on this poll loop is not declared in \
                     {progress_path}: add a [[loop]] entry with file/bound \
                     and a one-line `why` proof sketch",
                ),
            });
        }
    }

    // Leftover declarations have no annotated loop behind them.
    for ((file, bound), lines) in decls {
        for line in lines {
            out.push(Diag {
                gate: "waitloop",
                file: progress_path.to_owned(),
                line,
                msg: format!(
                    "stale [[loop]] declaration: {progress_path} declares \
                     bound `{bound}` in `{file}` but no annotated poll loop \
                     matches — update the table and DESIGN §13 together",
                ),
            });
        }
    }

    out
}

/// Gate 5: the blocking-construct lint.
///
/// Denies every recorded blocking construct (lock/condvar/channel types,
/// `park`/`sleep`/`recv` calls, bare `.join()`, `spin_loop` outside any
/// loop) in the `[noblock]` crates' shipped code, minus reviewed
/// `[[noblock_waiver]]` entries.
pub fn gate_noblock(inv: &Inventory, policy: &Policy) -> Vec<Diag> {
    let mut out = Vec::new();
    if policy.noblock_crates.is_empty() {
        return out; // gate disabled (no [noblock] section)
    }
    for b in &inv.blocking {
        if b.ctx != Ctx::Src || !policy.noblock_crates.iter().any(|c| c == &b.crate_name) {
            continue;
        }
        if policy.noblock_waiver_for(&b.file, &b.construct).is_some() {
            continue;
        }
        out.push(Diag {
            gate: "noblock",
            file: b.file.clone(),
            line: b.line,
            msg: format!(
                "blocking construct `{}` on hot-path crate `{}`: the \
                 wait-free path admits no lock, park, sleep, channel recv, \
                 or join (DESIGN §8); move it to setup/teardown scaffolding \
                 or add a reviewed [[noblock_waiver]] with its justification \
                 to analysis/policy.toml",
                b.construct, b.crate_name
            ),
        });
    }
    out
}

/// Gate 6: the false-sharing (memory layout) check.
///
/// For every struct declared in `analysis/layout.toml` the gate estimates
/// `#[repr(C)]` offsets (see [`crate::layout`]) and fails when two fields
/// with *different* declared writer roles can occupy the same cache line
/// without a `CachePadded` wrapper. The ownership table itself is
/// drift-checked: missing structs, reordered fields, padded declarations
/// with unpadded code (and vice versa), and roles contradicting the
/// sites' `hb-writer:` annotations all fail — plus a discovery rule: any
/// undeclared struct in the layout crates with two or more inline atomic
/// fields must be added to the table.
pub fn gate_layout(inv: &Inventory, layout: &Layout, layout_path: &str) -> Vec<Diag> {
    let mut out = Vec::new();
    if layout.crates.is_empty() {
        return out; // gate disabled (no layout.toml)
    }

    // Workspace constants, preferring default-build (`cfg(not(..))`-gated
    // or ungated) definitions; `[consts]` pins win but must agree.
    let mut scanned: BTreeMap<&str, (u64, u8)> = BTreeMap::new();
    for c in &inv.consts {
        match scanned.get(c.name.as_str()) {
            Some((_, s)) if *s >= c.score => {}
            _ => {
                scanned.insert(&c.name, (c.value, c.score));
            }
        }
    }
    let mut consts: BTreeMap<String, u64> = scanned
        .iter()
        .map(|(k, (v, _))| ((*k).to_owned(), *v))
        .collect();
    for (name, v) in &layout.consts {
        if let Some(code_v) = consts.get(name) {
            if code_v != v {
                out.push(Diag {
                    gate: "layout",
                    file: layout_path.to_owned(),
                    line: layout.consts_line,
                    msg: format!(
                        "[consts] pins `{name} = {v}` but the code's \
                         default-build definition is {code_v} — update the pin"
                    ),
                });
            }
        }
        consts.insert(name.clone(), *v);
    }

    let mut declared: BTreeSet<(&str, &str)> = BTreeSet::new();
    for d in &layout.structs {
        declared.insert((&d.file, &d.name));
        let Some(site) = inv
            .structs
            .iter()
            .find(|s| s.file == d.file && s.name == d.name)
        else {
            out.push(Diag {
                gate: "layout",
                file: layout_path.to_owned(),
                line: d.line,
                msg: format!(
                    "stale [[struct]] declaration: no struct `{}` with named \
                     fields in `{}` — update the ownership table",
                    d.name, d.file
                ),
            });
            continue;
        };
        if !site.repr_c {
            out.push(Diag {
                gate: "layout",
                file: site.file.clone(),
                line: site.line,
                msg: format!(
                    "layout-declared struct `{}` must be `#[repr(C)]` so \
                     field order and offsets are language-defined, not \
                     rustc-version-dependent (DESIGN §16)",
                    site.name
                ),
            });
            continue;
        }
        let est = crate::layout::estimate(site, &consts);
        let code_names: Vec<&str> = est.fields.iter().map(|f| f.name.as_str()).collect();
        let decl_names: Vec<&str> = d.fields.iter().map(|f| f.name.as_str()).collect();
        if code_names != decl_names {
            out.push(Diag {
                gate: "layout",
                file: layout_path.to_owned(),
                line: d.line,
                msg: format!(
                    "[[struct]] `{}` field drift: table declares [{}] but the \
                     code has [{}] — the table must mirror declaration order",
                    d.name,
                    decl_names.join(", "),
                    code_names.join(", ")
                ),
            });
            continue;
        }
        // Padding drift fails at the table line; pair verdicts from an
        // out-of-sync table would be noise, so the struct stops here.
        let mut padding_drift = false;
        for (fd, fe) in d.fields.iter().zip(&est.fields) {
            if fd.padded != fe.est.padded {
                padding_drift = true;
                out.push(Diag {
                    gate: "layout",
                    file: layout_path.to_owned(),
                    line: d.line,
                    msg: format!(
                        "[[struct]] `{}` declares field `{}` {} but the code \
                         {} — `padded` in the table must mean `CachePadded` \
                         in the struct",
                        d.name,
                        fd.name,
                        if fd.padded { "`padded`" } else { "unpadded" },
                        if fe.est.padded {
                            "wraps it in `CachePadded`"
                        } else {
                            "does not wrap it"
                        },
                    ),
                });
            }
        }
        if padding_drift {
            continue;
        }
        // Declared roles must agree with the sites' hb-writer annotations.
        for fd in &d.fields {
            for s in inv.atomics.iter().filter(|s| {
                s.ctx == Ctx::Src && s.file == d.file && s.receiver == fd.name
            }) {
                if let Some(role) = &s.writer_role {
                    if *role != fd.role {
                        out.push(Diag {
                            gate: "layout",
                            file: s.file.clone(),
                            line: s.line,
                            msg: format!(
                                "role drift on `{}.{}`: the site annotates \
                                 `hb-writer: {role}` but {layout_path} \
                                 declares writer role `{}`",
                                d.name, fd.name, fd.role
                            ),
                        });
                    }
                }
            }
        }
        // The false-sharing pair rule.
        for i in 0..d.fields.len() {
            for j in i + 1..d.fields.len() {
                let (ri, rj) = (&d.fields[i].role, &d.fields[j].role);
                if ri == rj || ri == "ro" || rj == "ro" {
                    continue;
                }
                if crate::layout::lines_disjoint(&est, i, j, layout.line_bytes) {
                    continue;
                }
                let (fi, fj) = (&est.fields[i], &est.fields[j]);
                let extent = match (fi.offset, fj.offset) {
                    (Some(a), Some(b)) => format!(" (offsets {a} and {b})"),
                    _ => " (conservatively — an extent is unknown)".to_owned(),
                };
                out.push(Diag {
                    gate: "layout",
                    file: site.file.clone(),
                    line: fj.line,
                    msg: format!(
                        "possible false sharing in `{}`: fields `{}` (role \
                         `{ri}`) and `{}` (role `{rj}`) can occupy the same \
                         {}-byte cache line{extent}; wrap one in \
                         `CachePadded` or separate them by a full line",
                        d.name, fi.name, fj.name, layout.line_bytes
                    ),
                });
            }
        }
    }

    // Discovery: undeclared structs with ≥2 inline atomic fields.
    for s in &inv.structs {
        if s.ctx != Ctx::Src
            || !layout.crates.iter().any(|c| c == &s.crate_name)
            || declared.contains(&(s.file.as_str(), s.name.as_str()))
        {
            continue;
        }
        let est = crate::layout::estimate(s, &consts);
        let n_atomic = est.fields.iter().filter(|f| f.est.atomic).count();
        if n_atomic >= 2 {
            out.push(Diag {
                gate: "layout",
                file: s.file.clone(),
                line: s.line,
                msg: format!(
                    "struct `{}` holds {n_atomic} inline atomic fields but \
                     {layout_path} has no [[struct]] entry for it — declare \
                     per-field writer roles so the false-sharing check can \
                     run",
                    s.name
                ),
            });
        }
    }

    out
}

/// Gate 7: the loom model-coverage check.
///
/// Every non-test atomic site in the covered crates — plus every
/// edge-carrying site (Release store or acquiring/releasing RMW) on a
/// field mapped in `analysis/hb_map.toml`, whatever its crate — must
/// carry a contiguous `// loom-model: <test>[,<test>…]` annotation naming
/// models declared in `analysis/coverage.toml`. Each `[[model]]` must
/// name an existing `#[test]` function in its declared file, and each
/// must be referenced by at least one annotation.
pub fn gate_modelcov(inv: &Inventory, cov: &Coverage, map: &HbMap, cov_path: &str) -> Vec<Diag> {
    let mut out = Vec::new();
    if cov.crates.is_empty() {
        return out; // gate disabled (no coverage.toml)
    }

    let mut bad_decl: BTreeSet<&str> = BTreeSet::new();
    for m in &cov.models {
        let exists = inv
            .tests
            .iter()
            .any(|t| t.name == m.test && t.file == m.file);
        if !exists {
            bad_decl.insert(&m.test);
            out.push(Diag {
                gate: "modelcov",
                file: cov_path.to_owned(),
                line: m.line,
                msg: format!(
                    "[[model]] names `{}` in `{}` but no `#[test]` function \
                     with that name exists there — fix the table or restore \
                     the loom test",
                    m.test, m.file
                ),
            });
        }
    }

    let declared: BTreeSet<&str> = cov.models.iter().map(|m| m.test.as_str()).collect();
    let mut referenced: BTreeSet<String> = BTreeSet::new();

    for s in inv.atomics.iter().filter(|s| s.ctx == Ctx::Src) {
        let covered_crate = cov.crates.iter().any(|c| c == &s.crate_name);
        let is_rmw = crate::scan::RMW_OPS.contains(&s.op.as_str());
        let edge_carrying = (s.op == "store" && s.has_ordering("Release"))
            || (is_rmw
                && (s.has_ordering("AcqRel")
                    || s.has_ordering("SeqCst")
                    || s.has_ordering("Acquire")
                    || s.has_ordering("Release")));
        let required =
            covered_crate || (edge_carrying && map.edge_for(&s.file, &s.receiver).is_some());
        match &s.model {
            Some(names) => {
                for name in names.split(',').filter(|n| !n.is_empty()) {
                    if declared.contains(name) {
                        referenced.insert(name.to_owned());
                    } else {
                        out.push(Diag {
                            gate: "modelcov",
                            file: s.file.clone(),
                            line: s.line,
                            msg: format!(
                                "stale loom-model annotation: `{name}` is not \
                                 declared in {cov_path} — add a [[model]] \
                                 entry or fix the name"
                            ),
                        });
                    }
                }
            }
            None if required => {
                out.push(Diag {
                    gate: "modelcov",
                    file: s.file.clone(),
                    line: s.line,
                    msg: format!(
                        "atomic site `{}.{}({})` has no adjacent \
                         `// loom-model: <test>` annotation naming the loom \
                         suite that drives this interleaving — every \
                         shipped atomic in the covered crates needs a model \
                         declared in {cov_path}",
                        s.receiver,
                        s.op,
                        s.orderings.join(", ")
                    ),
                });
            }
            None => {}
        }
    }

    for m in &cov.models {
        if !referenced.contains(&m.test) && !bad_decl.contains(m.test.as_str()) {
            out.push(Diag {
                gate: "modelcov",
                file: cov_path.to_owned(),
                line: m.line,
                msg: format!(
                    "stale [[model]] `{}`: no loom-model annotation \
                     references it — delete the entry or annotate the sites \
                     it covers",
                    m.test
                ),
            });
        }
    }

    out
}

/// Gate 3: the atomics ratchet.
pub fn gate_ratchet(inv: &Inventory, lock: &Lock, lock_path: &str) -> Vec<Diag> {
    let current = ratchet::aggregate(&inv.atomics);
    ratchet::diff(&current, lock)
        .into_iter()
        .map(|(sig, locked, now)| {
            let pretty = sig.replace('\t', " ");
            // Point at a concrete culprit line when the site exists in code.
            let site = inv
                .atomics
                .iter()
                .find(|s| ratchet::signature(s) == sig);
            Diag {
                gate: "ratchet",
                file: site.map_or_else(|| lock_path.to_owned(), |s| s.file.clone()),
                line: site.map_or(0, |s| s.line),
                msg: format!(
                    "atomics baseline drift for `{pretty}`: lock has x{locked}, \
                     tree has x{now}; review the change and re-baseline with \
                     `cargo run -p wfbn-analyze -- baseline`",
                ),
            }
        })
        .collect()
}
