//! Workspace walker: finds every `.rs` file under `crates/`, resolves the
//! owning crate from the nearest `Cargo.toml`, and runs the scanner.
//!
//! Skipped subtrees: `target/` (build products) and any `fixtures/`
//! directory (the analyzer's own seeded-violation corpora must not trip the
//! real tree's gates).

use crate::config;
use crate::scan::{self, Ctx, Inventory};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Scans every crate under `root/crates` and returns the merged inventory.
///
/// Paths in the inventory are workspace-relative (`crates/...`) with `/`
/// separators, so diagnostics and config files are host-independent.
pub fn scan_workspace(root: &Path) -> std::io::Result<Inventory> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files)?;
    files.sort();

    let mut crate_names: BTreeMap<PathBuf, String> = BTreeMap::new();
    let mut inv = Inventory::default();
    for path in files {
        let crate_dir = nearest_crate_dir(&path, &crates_dir);
        let crate_name = crate_names
            .entry(crate_dir.clone())
            .or_insert_with(|| {
                config::crate_name(&crate_dir.join("Cargo.toml")).unwrap_or_else(|| {
                    crate_dir
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "unknown".to_owned())
                })
            })
            .clone();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = if rel.contains("/tests/") || rel.contains("/benches/") {
            Ctx::Test
        } else {
            Ctx::Src
        };
        let src = std::fs::read_to_string(&path)?;
        inv.absorb(scan::scan_file(&src, &rel, &crate_name, ctx));
    }
    Ok(inv)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks up from `file` to the closest directory containing `Cargo.toml`,
/// stopping at `crates_dir`.
fn nearest_crate_dir(file: &Path, crates_dir: &Path) -> PathBuf {
    let mut dir = file.parent();
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() || d == crates_dir {
            return d.to_path_buf();
        }
        dir = d.parent();
    }
    crates_dir.to_path_buf()
}
