//! A hand-rolled Rust lexer, just deep enough for concurrency analysis.
//!
//! The analyzer needs to find `unsafe` keywords, atomic operations, and
//! `Ordering::*` paths *in code* — never inside comments, doc examples,
//! strings, raw strings, or char literals. Full parsing is unnecessary (and
//! would drag in a registry dependency, against the vendored-deps policy);
//! what is necessary is a lexer that classifies every byte of the file
//! correctly, because a doc-comment example containing `fetch_add` must not
//! count as an atomic site, and a SAFETY note inside a string must not
//! document an `unsafe` block.
//!
//! The lexer emits a flat token stream plus a separate comment list. Tokens
//! carry line numbers so every downstream diagnostic is `file:line`-precise.

/// What a token is; only the classes the analyzer distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `fetch_add`, ...).
    Ident(String),
    /// A single punctuation byte (`.`, `(`, `:`, `#`, `{`, ...).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, number. Carries
    /// the raw source text so downstream passes can read numeric values
    /// (array lengths, `repr(align(N))` arguments) without re-slicing the
    /// file.
    Lit(String),
    /// A lifetime such as `'static` (kept distinct from char literals).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class and payload.
    pub kind: TokKind,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

/// One comment (line, block, or doc) with its line span and text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the first byte of the comment.
    pub start_line: u32,
    /// 1-based line of the last byte of the comment.
    pub end_line: u32,
    /// Raw comment text including the marker.
    pub text: String,
}

/// Output of [`lex`]: the token stream and the comments beside it.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments.
///
/// Malformed input (unterminated string/comment) never panics: the open
/// literal simply swallows the rest of the file, which is the same recovery
/// rustc's lexer performs before reporting the error.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' => self.slash(),
                b'"' => self.string(),
                b'\'' => self.quote(),
                b'b' | b'r' => self.maybe_prefixed(),
                _ if is_ident_start(c) => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    // Multi-byte UTF-8 only occurs inside comments/strings in
                    // real Rust source; if it leaks here, skip the whole
                    // scalar so we never split a code point.
                    let n = utf8_len(c);
                    if n == 1 {
                        self.push(TokKind::Punct(c as char));
                    }
                    self.i += n;
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind) {
        self.out.toks.push(Tok {
            kind,
            line: self.line,
        });
    }

    fn slash(&mut self) {
        match self.b.get(self.i + 1) {
            Some(b'/') => {
                let start_line = self.line;
                let start = self.i;
                while self.i < self.b.len() && self.b[self.i] != b'\n' {
                    self.i += 1;
                }
                self.out.comments.push(Comment {
                    start_line,
                    end_line: start_line,
                    text: String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
                });
            }
            Some(b'*') => {
                let start_line = self.line;
                let start = self.i;
                self.i += 2;
                let mut depth = 1usize;
                while self.i < self.b.len() && depth > 0 {
                    match (self.b[self.i], self.b.get(self.i + 1)) {
                        (b'/', Some(b'*')) => {
                            depth += 1;
                            self.i += 2;
                        }
                        (b'*', Some(b'/')) => {
                            depth -= 1;
                            self.i += 2;
                        }
                        (b'\n', _) => {
                            self.line += 1;
                            self.i += 1;
                        }
                        _ => self.i += 1,
                    }
                }
                self.out.comments.push(Comment {
                    start_line,
                    end_line: self.line,
                    text: String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
                });
            }
            _ => {
                self.push(TokKind::Punct('/'));
                self.i += 1;
            }
        }
    }

    /// Ordinary string literal, `self.i` at the opening quote.
    fn string(&mut self) {
        let line = self.line;
        let start = self.i;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.push_lit(start, line);
    }

    fn push_lit(&mut self, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.out.toks.push(Tok {
            kind: TokKind::Lit(text),
            line,
        });
    }

    /// Raw string body, `self.i` at the first `#` or `"` after `r`/`br`.
    fn raw_string(&mut self) {
        let line = self.line;
        let start = self.i;
        let mut hashes = 0usize;
        while self.b.get(self.i) == Some(&b'#') {
            hashes += 1;
            self.i += 1;
        }
        debug_assert_eq!(self.b.get(self.i), Some(&b'"'));
        self.i += 1;
        while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.b[self.i] == b'"' {
                let after = &self.b[self.i + 1..];
                if after.len() >= hashes && after[..hashes].iter().all(|&c| c == b'#') {
                    self.i += 1 + hashes;
                    break;
                }
            }
            self.i += 1;
        }
        self.push_lit(start, line);
    }

    /// Char literal or lifetime, `self.i` at the `'`.
    fn quote(&mut self) {
        let next = self.b.get(self.i + 1).copied();
        let after = self.b.get(self.i + 2).copied();
        // `'a'` is a char literal, `'a` (no closing quote after one ident
        // char) starts a lifetime; `'\...'` is always a char literal.
        let is_lifetime = match next {
            Some(c) if is_ident_start(c) => after != Some(b'\''),
            _ => false,
        };
        if is_lifetime {
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            self.push(TokKind::Lifetime);
            return;
        }
        let line = self.line;
        let start = self.i;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\'' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    // Unterminated char literal; bail out at end of line so
                    // one stray quote cannot swallow the rest of the file.
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.push_lit(start, line);
    }

    /// `b`/`r` may prefix strings (`b".."`, `r".."`, `r#".."#`, `br".."`),
    /// char literals (`b'x'`), or raw identifiers (`r#type`).
    fn maybe_prefixed(&mut self) {
        let c0 = self.b[self.i];
        let c1 = self.b.get(self.i + 1).copied();
        let c2 = self.b.get(self.i + 2).copied();
        match (c0, c1, c2) {
            (b'r', Some(b'"'), _) | (b'r', Some(b'#'), Some(b'"' | b'#')) => {
                self.i += 1;
                self.raw_string();
            }
            (b'r', Some(b'#'), Some(c)) if is_ident_start(c) => {
                // Raw identifier r#ident: emit the ident without the prefix.
                self.i += 2;
                self.ident();
            }
            (b'b', Some(b'"'), _) => {
                self.i += 1;
                self.string();
            }
            (b'b', Some(b'\''), _) => {
                self.i += 1;
                self.quote();
            }
            (b'b', Some(b'r'), Some(b'"' | b'#')) => {
                self.i += 2;
                self.raw_string();
            }
            _ => self.ident(),
        }
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .unwrap_or_default()
            .to_owned();
        self.push(TokKind::Ident(text));
    }

    fn number(&mut self) {
        // Consume digits and alphanumeric suffixes (0xFF, 1_000u64, 5e3);
        // `.` stays a separate punct so `0..N` and method calls tokenize
        // unambiguously. Floats split into two Lit tokens, which is fine —
        // the layout pass only interprets integer values.
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        self.push_lit(start, self.line);
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn doc_comment_examples_are_not_code() {
        let src = "/// ```\n/// hits.fetch_add(1, Ordering::SeqCst);\n/// ```\nfn f() {}\n";
        assert!(!idents(src).iter().any(|s| s == "fetch_add"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
    }

    #[test]
    fn strings_and_raw_strings_hide_keywords() {
        let src = r###"let a = "unsafe { Ordering::SeqCst }"; let b = r#"unsafe"#;"###;
        assert!(!idents(src).iter().any(|s| s == "unsafe"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* a /* unsafe */ still comment */ fn g() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "g"]);
    }

    #[test]
    fn lifetimes_do_not_eat_the_following_ident() {
        let ids = idents("fn f<'a>(x: &'a str) {}");
        assert!(ids.contains(&"str".to_owned()));
    }

    #[test]
    fn char_literals_with_escapes() {
        let ids = idents(r"let q = '\''; let u = 'u'; let n = '\n'; done();");
        assert_eq!(ids, vec!["let", "q", "let", "u", "let", "n", "done"]);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        assert!(idents("let r#type = 1;").contains(&"type".to_owned()));
    }

    #[test]
    fn nested_generics_are_plain_puncts() {
        let ids = idents("let x: Foo<Bar<Baz, Ordering>> = y;");
        assert!(ids.contains(&"Ordering".to_owned()));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "/* one\ntwo */\nlet x = \"a\nb\";\nunsafe {}\n";
        let lexed = lex(src);
        let unsafe_tok = lexed
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("unsafe".into()))
            .expect("unsafe token");
        assert_eq!(unsafe_tok.line, 5);
    }
}
