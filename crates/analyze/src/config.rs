//! Policy and happens-before map models, loaded from `analysis/*.toml`.

use crate::minitoml::{self, Doc};
use std::path::Path;

/// `analysis/policy.toml`: the wait-freedom lint configuration.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Crates whose non-test code must stay RMW-free (the hot path).
    pub hot_crates: Vec<String>,
    /// Operation names denied on the hot path (`fetch_*`, `swap`, ...).
    pub deny_ops: Vec<String>,
    /// Orderings denied everywhere (`SeqCst`).
    pub deny_orderings: Vec<String>,
    /// Crates exempt from the hot-path op denial (`wfbn-baselines`).
    pub exempt_crates: Vec<String>,
    /// Whether test-context sites are exempt from the op denial.
    pub allow_in_tests: bool,
    /// Whether the ordering denial also covers test-context sites.
    pub deny_orderings_in_tests: bool,
    /// Reviewed exceptions, each with a justification.
    pub waivers: Vec<Waiver>,
    /// Crates whose non-test code may hold no blocking construct
    /// (`[noblock]` section; empty = gate disabled).
    pub noblock_crates: Vec<String>,
    /// Reviewed blocking-construct exceptions (`[[noblock_waiver]]`).
    pub noblock_waivers: Vec<NoblockWaiver>,
}

/// One reviewed blocking-construct exception (e.g. the builders'
/// setup/teardown `.join()`, or the ownership-audit shadow Mutex).
#[derive(Debug, Clone)]
pub struct NoblockWaiver {
    /// Workspace-relative file the waived construct lives in.
    pub file: String,
    /// Construct name (`Mutex`, `join`, `sleep`, ...); covers every
    /// occurrence of that construct in the file.
    pub construct: String,
    /// One-line reviewed justification (required).
    pub why: String,
}

/// One reviewed policy exception (e.g. the barrier's arrival RMW).
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Workspace-relative file the waived site lives in.
    pub file: String,
    /// Receiver (field) name at the site.
    pub field: String,
    /// Operation name at the site.
    pub op: String,
    /// One-line reviewed justification (required).
    pub why: String,
}

/// One edge of the happens-before map (`analysis/hb_map.toml`),
/// mirroring a row of DESIGN.md §8/§11.
#[derive(Debug, Clone)]
pub struct HbEdge {
    /// Workspace-relative file holding both ends of the edge.
    pub file: String,
    /// Field (receiver) the Release/Acquire pair synchronizes on.
    pub field: String,
    /// `release-acquire` (default) or `rmw` for AcqRel edges.
    pub kind: String,
    /// Unique writer role; must match the sites' `hb-writer:` annotations.
    pub writer: String,
    /// Which DESIGN.md row this edge mirrors (free text, required).
    pub design: String,
    /// 1-based line of the `[[edge]]` header in hb_map.toml.
    pub line: u32,
}

/// The parsed happens-before map.
#[derive(Debug, Clone, Default)]
pub struct HbMap {
    /// All declared edges.
    pub edges: Vec<HbEdge>,
}

/// Configuration load error: file plus line/message.
#[derive(Debug)]
pub struct ConfigError {
    /// Path the error came from.
    pub file: String,
    /// 1-based line (0 when the file itself is missing).
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.msg)
    }
}

fn load_doc(path: &Path) -> Result<Doc, ConfigError> {
    let text = std::fs::read_to_string(path).map_err(|e| ConfigError {
        file: path.display().to_string(),
        line: 0,
        msg: format!("cannot read: {e}"),
    })?;
    minitoml::parse(&text).map_err(|(line, msg)| ConfigError {
        file: path.display().to_string(),
        line,
        msg,
    })
}

impl Policy {
    /// Loads `analysis/policy.toml`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let doc = load_doc(path)?;
        let hot = doc.first("hot_path").cloned().unwrap_or_default();
        let exempt = doc.first("exempt").cloned().unwrap_or_default();
        let mut waivers = Vec::new();
        for w in doc.all("waiver") {
            let field = |key: &str| -> Result<String, ConfigError> {
                w.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: w.line,
                    msg: format!("[[waiver]] missing required `{key}`"),
                })
            };
            waivers.push(Waiver {
                file: field("file")?,
                field: field("field")?,
                op: field("op")?,
                why: field("why")?,
            });
        }
        let noblock = doc.first("noblock").cloned().unwrap_or_default();
        let mut noblock_waivers = Vec::new();
        for w in doc.all("noblock_waiver") {
            let field = |key: &str| -> Result<String, ConfigError> {
                w.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: w.line,
                    msg: format!("[[noblock_waiver]] missing required `{key}`"),
                })
            };
            noblock_waivers.push(NoblockWaiver {
                file: field("file")?,
                construct: field("construct")?,
                why: field("why")?,
            });
        }
        Ok(Policy {
            hot_crates: hot.list("crates"),
            deny_ops: hot.list("deny_ops"),
            deny_orderings: hot.list("deny_orderings"),
            exempt_crates: exempt.list("crates"),
            allow_in_tests: exempt.bool_or("allow_in_tests", true),
            deny_orderings_in_tests: hot.bool_or("deny_orderings_in_tests", true),
            waivers,
            noblock_crates: noblock.list("crates"),
            noblock_waivers,
        })
    }

    /// The waiver covering `(file, field, op)`, if any.
    pub fn waiver_for(&self, file: &str, field: &str, op: &str) -> Option<&Waiver> {
        self.waivers
            .iter()
            .find(|w| w.file == file && w.field == field && w.op == op)
    }

    /// The blocking-construct waiver covering `(file, construct)`, if any.
    pub fn noblock_waiver_for(&self, file: &str, construct: &str) -> Option<&NoblockWaiver> {
        self.noblock_waivers
            .iter()
            .find(|w| w.file == file && w.construct == construct)
    }
}

/// `analysis/progress.toml`: the bounded-loop (termination) declarations
/// for gate `waitloop`. A missing file disables the gate (fixtures that
/// predate it stay valid).
#[derive(Debug, Clone, Default)]
pub struct Progress {
    /// Crates whose non-test poll loops must carry a `wf-bound`.
    pub crates: Vec<String>,
    /// Method names whose call inside a loop marks it as polling
    /// (`try_pop`, `pop_block`, `is_closed`, ...).
    pub poll_methods: Vec<String>,
    /// Accepted bound kinds (`iters`, `backlog`, `rendezvous`, ...).
    pub kinds: Vec<String>,
    /// Declared loops, cross-checked against the annotations.
    pub loops: Vec<LoopDecl>,
}

/// One declared poll loop: `[[loop]]` in `analysis/progress.toml`.
///
/// Matching is by `(file, bound)` multiset, not line number, so ordinary
/// edits that shift lines never churn the table.
#[derive(Debug, Clone)]
pub struct LoopDecl {
    /// Workspace-relative file the loop lives in.
    pub file: String,
    /// The exact `wf-bound` annotation text, e.g. `backlog(segments)`.
    pub bound: String,
    /// One-line termination proof sketch (required; mirrored in
    /// DESIGN.md §13).
    pub why: String,
    /// 1-based line of the `[[loop]]` header in progress.toml.
    pub line: u32,
}

impl Progress {
    /// Loads `analysis/progress.toml`; a missing file yields the empty
    /// (disabled) configuration.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        if !path.is_file() {
            return Ok(Progress::default());
        }
        let doc = load_doc(path)?;
        let wl = doc.first("waitloop").cloned().unwrap_or_default();
        let mut loops = Vec::new();
        for l in doc.all("loop") {
            let field = |key: &str| -> Result<String, ConfigError> {
                l.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: l.line,
                    msg: format!("[[loop]] missing required `{key}`"),
                })
            };
            loops.push(LoopDecl {
                file: field("file")?,
                bound: field("bound")?,
                why: field("why")?,
                line: l.line,
            });
        }
        Ok(Progress {
            crates: wl.list("crates"),
            poll_methods: wl.list("poll_methods"),
            kinds: wl.list("kinds"),
            loops,
        })
    }
}

/// `analysis/layout.toml`: the false-sharing gate's per-struct ownership
/// table. A missing file disables the gate.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    /// Crates whose non-test structs are subject to the layout rules.
    pub crates: Vec<String>,
    /// Assumed cache-line size in bytes (default 64). Must divide
    /// `CachePadded`'s 128-byte alignment for the padding shortcut.
    pub line_bytes: u64,
    /// Constant pins from `[consts]`, for array lengths the scanner
    /// resolves ambiguously (cross-checked against the scanned values).
    pub consts: std::collections::BTreeMap<String, u64>,
    /// 1-based line of the `[consts]` header (0 when absent).
    pub consts_line: u32,
    /// Declared structs with per-field writer roles.
    pub structs: Vec<StructDecl>,
}

/// One `[[struct]]` ownership declaration in `analysis/layout.toml`.
#[derive(Debug, Clone)]
pub struct StructDecl {
    /// Workspace-relative file the struct is defined in.
    pub file: String,
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDecl>,
    /// One-line layout rationale (required).
    pub why: String,
    /// 1-based line of the `[[struct]]` header.
    pub line: u32,
}

/// One field spec: `"name: role"` or `"name: role: padded"`.
///
/// The role names the unique writer (matching `hb-writer:` annotations
/// where the field has Release stores); the special role `ro` marks a
/// field read-only after construction, which conflicts with nothing.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Writer role (`producer`, `consumer`, `ro`, ...).
    pub role: String,
    /// Whether the table declares the field `CachePadded`.
    pub padded: bool,
}

impl Layout {
    /// Loads `analysis/layout.toml`; a missing file yields the empty
    /// (disabled) configuration.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        if !path.is_file() {
            return Ok(Layout::default());
        }
        let doc = load_doc(path)?;
        let head = doc.first("layout").cloned().unwrap_or_default();
        let consts_sec = doc.first("consts");
        let mut consts = std::collections::BTreeMap::new();
        if let Some(sec) = consts_sec {
            for (name, v) in &sec.entries {
                let val = v.as_int().filter(|i| *i >= 0).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: sec.line,
                    msg: format!("[consts] `{name}` must be a non-negative integer"),
                })?;
                consts.insert(name.clone(), val as u64);
            }
        }
        let mut structs = Vec::new();
        for s in doc.all("struct") {
            let field = |key: &str| -> Result<String, ConfigError> {
                s.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: s.line,
                    msg: format!("[[struct]] missing required `{key}`"),
                })
            };
            let mut fields = Vec::new();
            for spec in s.list("fields") {
                let parts: Vec<&str> = spec.split(':').map(str::trim).collect();
                let ok = matches!(parts.len(), 2 | 3)
                    && !parts[0].is_empty()
                    && !parts[1].is_empty()
                    && (parts.len() == 2 || parts[2] == "padded");
                if !ok {
                    return Err(ConfigError {
                        file: path.display().to_string(),
                        line: s.line,
                        msg: format!(
                            "[[struct]] field spec `{spec}` must be `name: role[: padded]`"
                        ),
                    });
                }
                fields.push(FieldDecl {
                    name: parts[0].to_owned(),
                    role: parts[1].to_owned(),
                    padded: parts.len() == 3,
                });
            }
            structs.push(StructDecl {
                file: field("file")?,
                name: field("name")?,
                fields,
                why: field("why")?,
                line: s.line,
            });
        }
        Ok(Layout {
            crates: head.list("crates"),
            line_bytes: head.int_or("line_bytes", 64).max(1) as u64,
            consts,
            consts_line: consts_sec.map_or(0, |s| s.line),
            structs,
        })
    }
}

/// `analysis/coverage.toml`: the loom model-coverage table for gate
/// `modelcov`. A missing file disables the gate.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// Crates whose every non-test atomic site must carry a
    /// `loom-model:` annotation.
    pub crates: Vec<String>,
    /// Declared models, cross-checked against `#[test]` functions.
    pub models: Vec<ModelDecl>,
}

/// One `[[model]]` declaration in `analysis/coverage.toml`.
#[derive(Debug, Clone)]
pub struct ModelDecl {
    /// The `#[test]` function name.
    pub test: String,
    /// Workspace-relative file holding the test.
    pub file: String,
    /// One-line statement of what the model proves (required).
    pub why: String,
    /// 1-based line of the `[[model]]` header.
    pub line: u32,
}

impl Coverage {
    /// Loads `analysis/coverage.toml`; a missing file yields the empty
    /// (disabled) configuration.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        if !path.is_file() {
            return Ok(Coverage::default());
        }
        let doc = load_doc(path)?;
        let head = doc.first("modelcov").cloned().unwrap_or_default();
        let mut models = Vec::new();
        for m in doc.all("model") {
            let field = |key: &str| -> Result<String, ConfigError> {
                m.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: m.line,
                    msg: format!("[[model]] missing required `{key}`"),
                })
            };
            models.push(ModelDecl {
                test: field("test")?,
                file: field("file")?,
                why: field("why")?,
                line: m.line,
            });
        }
        Ok(Coverage {
            crates: head.list("crates"),
            models,
        })
    }
}

impl HbMap {
    /// Loads `analysis/hb_map.toml`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let doc = load_doc(path)?;
        let mut edges = Vec::new();
        for e in doc.all("edge") {
            let field = |key: &str| -> Result<String, ConfigError> {
                e.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: e.line,
                    msg: format!("[[edge]] missing required `{key}`"),
                })
            };
            edges.push(HbEdge {
                file: field("file")?,
                field: field("field")?,
                kind: e.str("kind").unwrap_or("release-acquire").to_owned(),
                writer: field("writer")?,
                design: field("design")?,
                line: e.line,
            });
        }
        Ok(HbMap { edges })
    }

    /// The edge covering `(file, field)`, if any.
    pub fn edge_for(&self, file: &str, field: &str) -> Option<&HbEdge> {
        self.edges
            .iter()
            .find(|e| e.file == file && e.field == field)
    }
}

/// Reads the `name` from a crate's `Cargo.toml` (fallback: directory name).
pub fn crate_name(manifest: &Path) -> Option<String> {
    let doc = load_doc(manifest).ok()?;
    doc.first("package")
        .and_then(|p| p.str("name"))
        .map(str::to_owned)
}
