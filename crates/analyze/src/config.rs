//! Policy and happens-before map models, loaded from `analysis/*.toml`.

use crate::minitoml::{self, Doc};
use std::path::Path;

/// `analysis/policy.toml`: the wait-freedom lint configuration.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Crates whose non-test code must stay RMW-free (the hot path).
    pub hot_crates: Vec<String>,
    /// Operation names denied on the hot path (`fetch_*`, `swap`, ...).
    pub deny_ops: Vec<String>,
    /// Orderings denied everywhere (`SeqCst`).
    pub deny_orderings: Vec<String>,
    /// Crates exempt from the hot-path op denial (`wfbn-baselines`).
    pub exempt_crates: Vec<String>,
    /// Whether test-context sites are exempt from the op denial.
    pub allow_in_tests: bool,
    /// Whether the ordering denial also covers test-context sites.
    pub deny_orderings_in_tests: bool,
    /// Reviewed exceptions, each with a justification.
    pub waivers: Vec<Waiver>,
}

/// One reviewed policy exception (e.g. the barrier's arrival RMW).
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Workspace-relative file the waived site lives in.
    pub file: String,
    /// Receiver (field) name at the site.
    pub field: String,
    /// Operation name at the site.
    pub op: String,
    /// One-line reviewed justification (required).
    pub why: String,
}

/// One edge of the happens-before map (`analysis/hb_map.toml`),
/// mirroring a row of DESIGN.md §8/§11.
#[derive(Debug, Clone)]
pub struct HbEdge {
    /// Workspace-relative file holding both ends of the edge.
    pub file: String,
    /// Field (receiver) the Release/Acquire pair synchronizes on.
    pub field: String,
    /// `release-acquire` (default) or `rmw` for AcqRel edges.
    pub kind: String,
    /// Unique writer role; must match the sites' `hb-writer:` annotations.
    pub writer: String,
    /// Which DESIGN.md row this edge mirrors (free text, required).
    pub design: String,
    /// 1-based line of the `[[edge]]` header in hb_map.toml.
    pub line: u32,
}

/// The parsed happens-before map.
#[derive(Debug, Clone, Default)]
pub struct HbMap {
    /// All declared edges.
    pub edges: Vec<HbEdge>,
}

/// Configuration load error: file plus line/message.
#[derive(Debug)]
pub struct ConfigError {
    /// Path the error came from.
    pub file: String,
    /// 1-based line (0 when the file itself is missing).
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.msg)
    }
}

fn load_doc(path: &Path) -> Result<Doc, ConfigError> {
    let text = std::fs::read_to_string(path).map_err(|e| ConfigError {
        file: path.display().to_string(),
        line: 0,
        msg: format!("cannot read: {e}"),
    })?;
    minitoml::parse(&text).map_err(|(line, msg)| ConfigError {
        file: path.display().to_string(),
        line,
        msg,
    })
}

impl Policy {
    /// Loads `analysis/policy.toml`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let doc = load_doc(path)?;
        let hot = doc.first("hot_path").cloned().unwrap_or_default();
        let exempt = doc.first("exempt").cloned().unwrap_or_default();
        let mut waivers = Vec::new();
        for w in doc.all("waiver") {
            let field = |key: &str| -> Result<String, ConfigError> {
                w.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: w.line,
                    msg: format!("[[waiver]] missing required `{key}`"),
                })
            };
            waivers.push(Waiver {
                file: field("file")?,
                field: field("field")?,
                op: field("op")?,
                why: field("why")?,
            });
        }
        Ok(Policy {
            hot_crates: hot.list("crates"),
            deny_ops: hot.list("deny_ops"),
            deny_orderings: hot.list("deny_orderings"),
            exempt_crates: exempt.list("crates"),
            allow_in_tests: exempt.bool_or("allow_in_tests", true),
            deny_orderings_in_tests: hot.bool_or("deny_orderings_in_tests", true),
            waivers,
        })
    }

    /// The waiver covering `(file, field, op)`, if any.
    pub fn waiver_for(&self, file: &str, field: &str, op: &str) -> Option<&Waiver> {
        self.waivers
            .iter()
            .find(|w| w.file == file && w.field == field && w.op == op)
    }
}

impl HbMap {
    /// Loads `analysis/hb_map.toml`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let doc = load_doc(path)?;
        let mut edges = Vec::new();
        for e in doc.all("edge") {
            let field = |key: &str| -> Result<String, ConfigError> {
                e.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: e.line,
                    msg: format!("[[edge]] missing required `{key}`"),
                })
            };
            edges.push(HbEdge {
                file: field("file")?,
                field: field("field")?,
                kind: e.str("kind").unwrap_or("release-acquire").to_owned(),
                writer: field("writer")?,
                design: field("design")?,
                line: e.line,
            });
        }
        Ok(HbMap { edges })
    }

    /// The edge covering `(file, field)`, if any.
    pub fn edge_for(&self, file: &str, field: &str) -> Option<&HbEdge> {
        self.edges
            .iter()
            .find(|e| e.file == file && e.field == field)
    }
}

/// Reads the `name` from a crate's `Cargo.toml` (fallback: directory name).
pub fn crate_name(manifest: &Path) -> Option<String> {
    let doc = load_doc(manifest).ok()?;
    doc.first("package")
        .and_then(|p| p.str("name"))
        .map(str::to_owned)
}
