//! Policy and happens-before map models, loaded from `analysis/*.toml`.

use crate::minitoml::{self, Doc};
use std::path::Path;

/// `analysis/policy.toml`: the wait-freedom lint configuration.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Crates whose non-test code must stay RMW-free (the hot path).
    pub hot_crates: Vec<String>,
    /// Operation names denied on the hot path (`fetch_*`, `swap`, ...).
    pub deny_ops: Vec<String>,
    /// Orderings denied everywhere (`SeqCst`).
    pub deny_orderings: Vec<String>,
    /// Crates exempt from the hot-path op denial (`wfbn-baselines`).
    pub exempt_crates: Vec<String>,
    /// Whether test-context sites are exempt from the op denial.
    pub allow_in_tests: bool,
    /// Whether the ordering denial also covers test-context sites.
    pub deny_orderings_in_tests: bool,
    /// Reviewed exceptions, each with a justification.
    pub waivers: Vec<Waiver>,
    /// Crates whose non-test code may hold no blocking construct
    /// (`[noblock]` section; empty = gate disabled).
    pub noblock_crates: Vec<String>,
    /// Reviewed blocking-construct exceptions (`[[noblock_waiver]]`).
    pub noblock_waivers: Vec<NoblockWaiver>,
}

/// One reviewed blocking-construct exception (e.g. the builders'
/// setup/teardown `.join()`, or the ownership-audit shadow Mutex).
#[derive(Debug, Clone)]
pub struct NoblockWaiver {
    /// Workspace-relative file the waived construct lives in.
    pub file: String,
    /// Construct name (`Mutex`, `join`, `sleep`, ...); covers every
    /// occurrence of that construct in the file.
    pub construct: String,
    /// One-line reviewed justification (required).
    pub why: String,
}

/// One reviewed policy exception (e.g. the barrier's arrival RMW).
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Workspace-relative file the waived site lives in.
    pub file: String,
    /// Receiver (field) name at the site.
    pub field: String,
    /// Operation name at the site.
    pub op: String,
    /// One-line reviewed justification (required).
    pub why: String,
}

/// One edge of the happens-before map (`analysis/hb_map.toml`),
/// mirroring a row of DESIGN.md §8/§11.
#[derive(Debug, Clone)]
pub struct HbEdge {
    /// Workspace-relative file holding both ends of the edge.
    pub file: String,
    /// Field (receiver) the Release/Acquire pair synchronizes on.
    pub field: String,
    /// `release-acquire` (default) or `rmw` for AcqRel edges.
    pub kind: String,
    /// Unique writer role; must match the sites' `hb-writer:` annotations.
    pub writer: String,
    /// Which DESIGN.md row this edge mirrors (free text, required).
    pub design: String,
    /// 1-based line of the `[[edge]]` header in hb_map.toml.
    pub line: u32,
}

/// The parsed happens-before map.
#[derive(Debug, Clone, Default)]
pub struct HbMap {
    /// All declared edges.
    pub edges: Vec<HbEdge>,
}

/// Configuration load error: file plus line/message.
#[derive(Debug)]
pub struct ConfigError {
    /// Path the error came from.
    pub file: String,
    /// 1-based line (0 when the file itself is missing).
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.msg)
    }
}

fn load_doc(path: &Path) -> Result<Doc, ConfigError> {
    let text = std::fs::read_to_string(path).map_err(|e| ConfigError {
        file: path.display().to_string(),
        line: 0,
        msg: format!("cannot read: {e}"),
    })?;
    minitoml::parse(&text).map_err(|(line, msg)| ConfigError {
        file: path.display().to_string(),
        line,
        msg,
    })
}

impl Policy {
    /// Loads `analysis/policy.toml`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let doc = load_doc(path)?;
        let hot = doc.first("hot_path").cloned().unwrap_or_default();
        let exempt = doc.first("exempt").cloned().unwrap_or_default();
        let mut waivers = Vec::new();
        for w in doc.all("waiver") {
            let field = |key: &str| -> Result<String, ConfigError> {
                w.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: w.line,
                    msg: format!("[[waiver]] missing required `{key}`"),
                })
            };
            waivers.push(Waiver {
                file: field("file")?,
                field: field("field")?,
                op: field("op")?,
                why: field("why")?,
            });
        }
        let noblock = doc.first("noblock").cloned().unwrap_or_default();
        let mut noblock_waivers = Vec::new();
        for w in doc.all("noblock_waiver") {
            let field = |key: &str| -> Result<String, ConfigError> {
                w.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: w.line,
                    msg: format!("[[noblock_waiver]] missing required `{key}`"),
                })
            };
            noblock_waivers.push(NoblockWaiver {
                file: field("file")?,
                construct: field("construct")?,
                why: field("why")?,
            });
        }
        Ok(Policy {
            hot_crates: hot.list("crates"),
            deny_ops: hot.list("deny_ops"),
            deny_orderings: hot.list("deny_orderings"),
            exempt_crates: exempt.list("crates"),
            allow_in_tests: exempt.bool_or("allow_in_tests", true),
            deny_orderings_in_tests: hot.bool_or("deny_orderings_in_tests", true),
            waivers,
            noblock_crates: noblock.list("crates"),
            noblock_waivers,
        })
    }

    /// The waiver covering `(file, field, op)`, if any.
    pub fn waiver_for(&self, file: &str, field: &str, op: &str) -> Option<&Waiver> {
        self.waivers
            .iter()
            .find(|w| w.file == file && w.field == field && w.op == op)
    }

    /// The blocking-construct waiver covering `(file, construct)`, if any.
    pub fn noblock_waiver_for(&self, file: &str, construct: &str) -> Option<&NoblockWaiver> {
        self.noblock_waivers
            .iter()
            .find(|w| w.file == file && w.construct == construct)
    }
}

/// `analysis/progress.toml`: the bounded-loop (termination) declarations
/// for gate `waitloop`. A missing file disables the gate (fixtures that
/// predate it stay valid).
#[derive(Debug, Clone, Default)]
pub struct Progress {
    /// Crates whose non-test poll loops must carry a `wf-bound`.
    pub crates: Vec<String>,
    /// Method names whose call inside a loop marks it as polling
    /// (`try_pop`, `pop_block`, `is_closed`, ...).
    pub poll_methods: Vec<String>,
    /// Accepted bound kinds (`iters`, `backlog`, `rendezvous`, ...).
    pub kinds: Vec<String>,
    /// Declared loops, cross-checked against the annotations.
    pub loops: Vec<LoopDecl>,
}

/// One declared poll loop: `[[loop]]` in `analysis/progress.toml`.
///
/// Matching is by `(file, bound)` multiset, not line number, so ordinary
/// edits that shift lines never churn the table.
#[derive(Debug, Clone)]
pub struct LoopDecl {
    /// Workspace-relative file the loop lives in.
    pub file: String,
    /// The exact `wf-bound` annotation text, e.g. `backlog(segments)`.
    pub bound: String,
    /// One-line termination proof sketch (required; mirrored in
    /// DESIGN.md §13).
    pub why: String,
    /// 1-based line of the `[[loop]]` header in progress.toml.
    pub line: u32,
}

impl Progress {
    /// Loads `analysis/progress.toml`; a missing file yields the empty
    /// (disabled) configuration.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        if !path.is_file() {
            return Ok(Progress::default());
        }
        let doc = load_doc(path)?;
        let wl = doc.first("waitloop").cloned().unwrap_or_default();
        let mut loops = Vec::new();
        for l in doc.all("loop") {
            let field = |key: &str| -> Result<String, ConfigError> {
                l.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: l.line,
                    msg: format!("[[loop]] missing required `{key}`"),
                })
            };
            loops.push(LoopDecl {
                file: field("file")?,
                bound: field("bound")?,
                why: field("why")?,
                line: l.line,
            });
        }
        Ok(Progress {
            crates: wl.list("crates"),
            poll_methods: wl.list("poll_methods"),
            kinds: wl.list("kinds"),
            loops,
        })
    }
}

impl HbMap {
    /// Loads `analysis/hb_map.toml`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let doc = load_doc(path)?;
        let mut edges = Vec::new();
        for e in doc.all("edge") {
            let field = |key: &str| -> Result<String, ConfigError> {
                e.str(key).map(str::to_owned).ok_or_else(|| ConfigError {
                    file: path.display().to_string(),
                    line: e.line,
                    msg: format!("[[edge]] missing required `{key}`"),
                })
            };
            edges.push(HbEdge {
                file: field("file")?,
                field: field("field")?,
                kind: e.str("kind").unwrap_or("release-acquire").to_owned(),
                writer: field("writer")?,
                design: field("design")?,
                line: e.line,
            });
        }
        Ok(HbMap { edges })
    }

    /// The edge covering `(file, field)`, if any.
    pub fn edge_for(&self, file: &str, field: &str) -> Option<&HbEdge> {
        self.edges
            .iter()
            .find(|e| e.file == file && e.field == field)
    }
}

/// Reads the `name` from a crate's `Cargo.toml` (fallback: directory name).
pub fn crate_name(manifest: &Path) -> Option<String> {
    let doc = load_doc(manifest).ok()?;
    doc.first("package")
        .and_then(|p| p.str("name"))
        .map(str::to_owned)
}
