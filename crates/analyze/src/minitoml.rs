//! A minimal TOML-subset reader for the analyzer's config files.
//!
//! Supports exactly what `analysis/policy.toml`, `analysis/hb_map.toml`,
//! and `crates/*/Cargo.toml` need: `[table]` headers, `[[array-of-table]]`
//! headers, `key = "string"`, `key = ["a", "b"]`, `key = 123`,
//! `key = true|false`, and `#` comments. No registry dependency — the
//! workspace's vendored-deps policy applies to the analyzer too.
//!
//! Every entry remembers its source line so config-side diagnostics
//! (a stale happens-before edge, say) point at the offending entry.

use std::collections::BTreeMap;

/// A scalar or string-array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `"..."`.
    Str(String),
    /// `[...]` of strings.
    List(Vec<String>),
    /// Integer literal.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The list payload, if this is a list.
    pub fn as_list(&self) -> Option<&[String]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

/// One `[header]` or `[[header]]` section with its keys.
#[derive(Debug, Clone, Default)]
pub struct Section {
    /// Header path (e.g. `package`, `hot_path`, `edge`).
    pub name: String,
    /// 1-based line of the header (0 for the implicit root section).
    pub line: u32,
    /// Key/value pairs in order of appearance.
    pub entries: BTreeMap<String, Value>,
}

impl Section {
    /// String value for `key`, if present.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.entries.get(key).and_then(Value::as_str)
    }

    /// List value for `key`, or empty.
    pub fn list(&self, key: &str) -> Vec<String> {
        self.entries
            .get(key)
            .and_then(Value::as_list)
            .map(<[String]>::to_vec)
            .unwrap_or_default()
    }

    /// Bool value for `key`, or `default`.
    pub fn bool_or(&self, key: &str, default: bool) -> bool {
        self.entries
            .get(key)
            .and_then(Value::as_bool)
            .unwrap_or(default)
    }

    /// Integer value for `key`, or `default`.
    pub fn int_or(&self, key: &str, default: i64) -> i64 {
        self.entries
            .get(key)
            .and_then(Value::as_int)
            .unwrap_or(default)
    }
}

/// Parsed document: every section in file order (including repeated
/// `[[name]]` sections, one `Section` each).
#[derive(Debug, Default)]
pub struct Doc {
    /// Sections in order; index 0 is the implicit root.
    pub sections: Vec<Section>,
}

impl Doc {
    /// All sections named `name` (for `[[name]]` arrays).
    pub fn all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Section> + 'a {
        self.sections.iter().filter(move |s| s.name == name)
    }

    /// First section named `name`.
    pub fn first(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }
}

/// Parses the subset; returns `Err(line, message)` on anything outside it.
pub fn parse(src: &str) -> Result<Doc, (u32, String)> {
    let mut doc = Doc {
        sections: vec![Section::default()],
    };
    let lines: Vec<&str> = src.lines().collect();
    let mut idx = 0;
    while idx < lines.len() {
        let lineno = idx as u32 + 1;
        let mut line = strip_comment(lines[idx]).trim().to_owned();
        idx += 1;
        // Multi-line arrays: accumulate until the closing bracket.
        while line.contains('[')
            && !line.starts_with('[')
            && line.matches('[').count() > line.matches(']').count()
            && idx < lines.len()
        {
            line.push(' ');
            line.push_str(strip_comment(lines[idx]).trim());
            idx += 1;
        }
        let line = line.as_str();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line
            .strip_prefix("[[")
            .and_then(|s| s.strip_suffix("]]"))
            .or_else(|| line.strip_prefix('[').and_then(|s| s.strip_suffix(']')))
        {
            doc.sections.push(Section {
                name: inner.trim().to_owned(),
                line: lineno,
                entries: BTreeMap::new(),
            });
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err((lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = line[..eq].trim().to_owned();
        let value = parse_value(line[eq + 1..].trim())
            .ok_or_else(|| (lineno, format!("unsupported value for `{key}`")))?;
        doc.sections
            .last_mut()
            .expect("root section always present")
            .entries
            .insert(key, value);
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting `"` string boundaries.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_value(v: &str) -> Option<Value> {
    if let Some(inner) = v.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Some(Value::Str(unescape(inner)));
    }
    if let Some(inner) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        let trimmed = inner.trim();
        if trimmed.is_empty() {
            return Some(Value::List(items));
        }
        for part in split_top_level(trimmed) {
            let part = part.trim();
            let s = part.strip_prefix('"')?.strip_suffix('"')?;
            items.push(unescape(s));
        }
        return Some(Value::List(items));
    }
    if v.starts_with('{') && v.ends_with('}') {
        // Inline tables (Cargo.toml dependency specs) are tolerated as
        // opaque strings — the analyzer never reads into them.
        return Some(Value::Str(v.to_owned()));
    }
    if v == "true" {
        return Some(Value::Bool(true));
    }
    if v == "false" {
        return Some(Value::Bool(false));
    }
    v.parse::<i64>().ok().map(Value::Int)
}

/// Splits list items on commas outside quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !s[start..].trim().is_empty() {
        parts.push(&s[start..]);
    }
    parts
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_scalars() {
        let doc = parse(
            "# header\n[hot_path]\ncrates = [\"wfbn-core\", \"wfbn-serve\"]\n\n\
             [[edge]]\nfield = \"len\" # inline\ncount = 2\nstrict = true\n\
             [[edge]]\nfield = \"next\"\n",
        )
        .expect("parses");
        assert_eq!(
            doc.first("hot_path").expect("section").list("crates"),
            vec!["wfbn-core", "wfbn-serve"]
        );
        let edges: Vec<_> = doc.all("edge").collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].str("field"), Some("len"));
        assert_eq!(edges[0].entries.get("count"), Some(&Value::Int(2)));
        assert!(edges[0].bool_or("strict", false));
        assert!(edges[1].line > edges[0].line);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("why = \"per-segment # not per element\"\n").expect("parses");
        assert_eq!(
            doc.sections[0].str("why"),
            Some("per-segment # not per element")
        );
    }

    #[test]
    fn rejects_unsupported_syntax_with_line() {
        let err = parse("ok = 1\nbroken 2\n").expect_err("rejects");
        assert_eq!(err.0, 2);
    }
}
