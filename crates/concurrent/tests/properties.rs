//! Property-based tests for the concurrency substrate.

use proptest::prelude::*;
use wfbn_concurrent::{channel, mix64, pair_count, pairs_for_thread, row_chunks, SEG_CAP};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn spsc_preserves_arbitrary_interleavings(
        ops in prop::collection::vec(prop::option::of(0u64..1000), 0..400)
    ) {
        // `Some(v)` = push v, `None` = try_pop. Model with a VecDeque.
        let (mut tx, mut rx) = channel::<u64>();
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    tx.push(v);
                    model.push_back(v);
                }
                None => {
                    prop_assert_eq!(rx.try_pop(), model.pop_front());
                }
            }
        }
        // Drain the rest.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(rx.try_pop(), Some(expected));
        }
        prop_assert_eq!(rx.try_pop(), None);
        prop_assert_eq!(tx.pushed(), rx.popped() + model.len() as u64);
    }

    #[test]
    fn spsc_matches_model_at_segment_boundaries(
        segs in 0usize..3,
        around in 0usize..3,
        pop_stride in 1usize..5,
    ) {
        // Push counts pinned to SEG_CAP−1 / SEG_CAP / SEG_CAP+1 per multiple
        // of the segment capacity: the seams where the producer links a new
        // segment and the consumer frees an exhausted one — exactly where an
        // off-by-one in the publication protocol would hide from uniformly
        // random sizes. Pops are interleaved every `pop_stride` pushes so
        // the consumer crosses boundaries at a different phase than the
        // producer.
        let n = (SEG_CAP * segs + around).saturating_sub(1);
        let (mut tx, mut rx) = channel::<u64>();
        let mut model = std::collections::VecDeque::new();
        for i in 0..n as u64 {
            tx.push(i);
            model.push_back(i);
            if (i + 1) % pop_stride as u64 == 0 {
                prop_assert_eq!(rx.try_pop(), model.pop_front());
            }
        }
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(rx.try_pop(), Some(expected));
        }
        prop_assert_eq!(rx.try_pop(), None);
        prop_assert_eq!(tx.pushed(), n as u64);
        prop_assert_eq!(rx.popped(), n as u64);
    }

    #[test]
    fn spsc_cross_thread_totals(n in 1u64..5000, threads_delay in 0usize..3) {
        let (mut tx, mut rx) = channel::<u64>();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..n {
                    tx.push(i);
                    if threads_delay > 0 && i % 512 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            let handle = s.spawn(move || {
                let mut sum = 0u64;
                let mut count = 0u64;
                loop {
                    let closed = rx.is_closed();
                    while let Some(v) = rx.try_pop() {
                        sum += v;
                        count += 1;
                    }
                    if closed {
                        break;
                    }
                }
                (sum, count)
            });
            let (sum, count) = handle.join().unwrap();
            assert_eq!(count, n);
            assert_eq!(sum, n * (n - 1) / 2);
        });
    }

    #[test]
    fn row_chunks_partition_exactly(m in 0usize..10_000, p in 1usize..64) {
        let chunks = row_chunks(m, p);
        prop_assert_eq!(chunks.len(), p);
        let mut pos = 0;
        for c in &chunks {
            prop_assert_eq!(c.start, pos);
            prop_assert!(c.end >= c.start);
            pos = c.end;
        }
        prop_assert_eq!(pos, m);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        let min = sizes.iter().min().copied().unwrap();
        let max = sizes.iter().max().copied().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn pair_dealing_partitions_the_triangle(n in 0usize..40, p in 1usize..16) {
        let mut seen = std::collections::HashSet::new();
        for t in 0..p {
            for pair in pairs_for_thread(n, t, p) {
                prop_assert!(pair.0 < pair.1 && pair.1 < n);
                prop_assert!(seen.insert(pair));
            }
        }
        prop_assert_eq!(seen.len(), pair_count(n));
    }

    #[test]
    fn mix64_is_bijective_on_samples(xs in prop::collection::hash_set(any::<u64>(), 0..200)) {
        let mixed: std::collections::HashSet<u64> = xs.iter().map(|&x| mix64(x)).collect();
        prop_assert_eq!(mixed.len(), xs.len());
    }
}
