//! Model-checked interleaving tests (run with `--features loom`).
//!
//! Each test wraps a tiny instance of a primitive in `loom::model`, which
//! re-executes the closure under every thread schedule within the preemption
//! bound. `SEG_CAP` is 2 under this feature, so a handful of pushes exercises
//! the segment-linking path that a 512-slot segment would hide from the
//! explorer. After each model the test asserts that more than one schedule
//! was actually explored — a guard against silently running outside the model.
#![cfg(feature = "loom")]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
// All counters in this file use Relaxed: they are test scaffolding whose
// visibility rides on the edges under test (the queue's Release/Acquire
// publication, the barrier's sense edge, `join`'s synchronization) — never
// on the counter's own ordering. If a primitive's edge broke, the Relaxed
// counters would expose it; SeqCst would paper over exactly the bugs these
// models exist to find. (The vendored explorer executes all orderings as
// SeqCst anyway — DESIGN.md §8 — so the models prove the downgrade safe at
// the interleaving level, and TSan covers the real memory model.)
use wfbn_concurrent::{channel, cluster_epoch_channel, epoch_channel, SpinBarrier, SEG_CAP};

/// The explorer silently degrades to a single std-thread execution if the
/// code under test never hits a modeled scheduling point; every test calls
/// this to prove the schedules were genuinely enumerated.
fn assert_explored() {
    assert!(
        loom::explored_interleavings() >= 2,
        "model explored only {} schedule(s); the code under test bypassed the shim",
        loom::explored_interleavings()
    );
}

#[test]
fn queue_transfer_crosses_segment_boundaries() {
    // 2 * SEG_CAP + 1 elements forces two segment links, so the producer's
    // Release store of `next` races the consumer's Acquire load of it in
    // every explored schedule.
    const N: usize = SEG_CAP * 2 + 1;
    loom::model(|| {
        let (mut tx, mut rx) = channel::<usize>();
        let t = loom::thread::spawn(move || {
            for i in 0..N {
                tx.push(i);
            }
            // tx drops here, closing the queue.
        });
        let mut got = Vec::new();
        loop {
            let closed = rx.is_closed();
            while let Some(v) = rx.try_pop() {
                got.push(v);
            }
            if closed {
                break;
            }
            loom::thread::yield_now();
        }
        t.join().unwrap();
        assert_eq!(got, (0..N).collect::<Vec<_>>(), "lost or reordered element");
    });
    assert_explored();
}

#[test]
fn queue_drop_with_unconsumed_elements_frees_exactly_once() {
    // The consumer walks away mid-stream; Shared::drop must destroy exactly
    // the elements in [consumed, len) of each surviving segment — no leak,
    // no double free — under every schedule of pushes vs. the early drop.
    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    loom::model(|| {
        let live = Arc::new(AtomicUsize::new(0));
        let (mut tx, mut rx) = channel::<Tracked>();
        let l2 = Arc::clone(&live);
        let t = loom::thread::spawn(move || {
            for _ in 0..(SEG_CAP + 1) {
                l2.fetch_add(1, Ordering::Relaxed);
                tx.push(Tracked(Arc::clone(&l2)));
            }
        });
        // Consume at most one element, then abandon the queue.
        drop(rx.try_pop());
        drop(rx);
        t.join().unwrap();
        // Producer has dropped tx; the last Shared ref is gone on one side or
        // the other, and the chain was destroyed there.
        assert_eq!(live.load(Ordering::Relaxed), 0, "leak or double drop");
    });
    assert_explored();
}

#[test]
fn barrier_reuse_across_generations() {
    // Two threads cross the same barrier twice. The sense-reversing design
    // must (a) elect exactly one leader per round, (b) make every pre-wait
    // write visible post-wait, and (c) not let a fast thread's second wait
    // observe the first round's stale sense.
    const ROUNDS: usize = 2;
    loom::model(|| {
        let barrier = Arc::new(SpinBarrier::new(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let leaders = Arc::new(AtomicUsize::new(0));
        let (b2, h2, l2) = (
            Arc::clone(&barrier),
            Arc::clone(&hits),
            Arc::clone(&leaders),
        );
        let t = loom::thread::spawn(move || {
            for round in 1..=ROUNDS {
                h2.fetch_add(1, Ordering::Relaxed);
                if b2.wait() {
                    l2.fetch_add(1, Ordering::Relaxed);
                }
                assert!(
                    h2.load(Ordering::Relaxed) >= round * 2,
                    "stale pre-barrier write"
                );
            }
        });
        for round in 1..=ROUNDS {
            hits.fetch_add(1, Ordering::Relaxed);
            if barrier.wait() {
                leaders.fetch_add(1, Ordering::Relaxed);
            }
            assert!(
                hits.load(Ordering::Relaxed) >= round * 2,
                "stale pre-barrier write"
            );
        }
        t.join().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2 * ROUNDS);
        assert_eq!(
            leaders.load(Ordering::Relaxed),
            ROUNDS,
            "leader election must be exactly-once per round"
        );
    });
    assert_explored();
}

#[test]
fn queue_close_then_drain_protocol_is_complete() {
    // The termination handshake stage 2 relies on: after is_closed() returns
    // true, drain-until-None must observe every element ever pushed.
    loom::model(|| {
        let (mut tx, mut rx) = channel::<usize>();
        let t = loom::thread::spawn(move || {
            tx.push(1);
            tx.push(2);
            tx.push(3);
        });
        let mut seen = 0usize;
        loop {
            let closed = rx.is_closed();
            while let Some(v) = rx.try_pop() {
                seen += v;
            }
            if closed {
                break;
            }
            loom::thread::yield_now();
        }
        t.join().unwrap();
        assert_eq!(seen, 6, "close/drain handshake lost an element");
    });
    assert_explored();
}

#[test]
fn push_block_segment_linking_is_published_under_every_schedule() {
    // One push_block spanning two segment links (SEG_CAP is 2 here): the
    // producer's chunked Release stores of `len` and `next` race the
    // consumer's Acquire loads in every explored schedule. FIFO order and
    // losslessness must survive all of them.
    const N: usize = SEG_CAP * 2 + 1;
    loom::model(|| {
        let (mut tx, mut rx) = channel::<usize>();
        let block: Vec<usize> = (0..N).collect();
        let t = loom::thread::spawn(move || {
            tx.push_block(&block);
            // tx drops here, closing the queue.
        });
        let mut got = Vec::new();
        loop {
            let closed = rx.is_closed();
            while let Some(v) = rx.try_pop() {
                got.push(v);
            }
            if closed {
                break;
            }
            loom::thread::yield_now();
        }
        t.join().unwrap();
        assert_eq!(got, (0..N).collect::<Vec<_>>(), "lost or reordered element");
    });
    assert_explored();
}

#[test]
fn pop_block_sees_complete_prefix_under_every_schedule() {
    // Scalar producer, block consumer: each pop_block must take a prefix of
    // what was pushed (never a gap, never a reorder), and close-then-drain
    // with pop_block must still observe everything.
    const N: usize = SEG_CAP + 2; // crosses one segment link
    loom::model(|| {
        let (mut tx, mut rx) = channel::<usize>();
        let t = loom::thread::spawn(move || {
            for i in 0..N {
                tx.push(i);
            }
        });
        let mut got = Vec::new();
        loop {
            let closed = rx.is_closed();
            rx.pop_block(&mut got);
            if closed {
                break;
            }
            loom::thread::yield_now();
        }
        t.join().unwrap();
        assert_eq!(got, (0..N).collect::<Vec<_>>(), "pop_block missed a prefix");
    });
    assert_explored();
}

#[test]
fn epoch_reader_never_observes_torn_or_unpublished_epoch() {
    // The serving layer's publication invariant: epoch `e` always carries a
    // value constructed *before* the counter advanced to `e`. Each published
    // vector has length == its epoch, so a reader that ever pins a
    // half-built snapshot, or pins an epoch older than one it already saw in
    // `published()`, fails deterministically in some explored schedule.
    loom::model(|| {
        let (mut publisher, mut readers) = epoch_channel::<Vec<u64>>(1);
        let mut reader = readers.pop().unwrap();
        let t = loom::thread::spawn(move || {
            publisher.publish(vec![1]);
            publisher.publish(vec![1, 2]);
        });
        let observed = reader.published();
        match reader.pin() {
            Some((epoch, snap)) => {
                assert!(
                    epoch >= observed,
                    "pin returned epoch {epoch} after published() showed {observed}"
                );
                assert_eq!(snap.len() as u64, epoch, "torn snapshot at epoch {epoch}");
            }
            None => assert_eq!(observed, 0, "epoch {observed} visible but not pinnable"),
        }
        t.join().unwrap();
        // The publisher is gone: the final pin must land on the last epoch.
        let (epoch, snap) = reader.pin().expect("both epochs published");
        assert_eq!(epoch, 2);
        assert_eq!(snap.as_slice(), &[1, 2]);
    });
    assert_explored();
}

#[test]
fn epoch_pins_are_monotone_under_every_schedule() {
    // Two pins around a racing publish: the second pin may stay or advance,
    // never regress, and each pinned value must match its epoch.
    loom::model(|| {
        let (mut publisher, mut readers) = epoch_channel::<u64>(2);
        let mut r0 = readers.remove(0);
        let mut r1 = readers.remove(0);
        publisher.publish(1);
        let t = loom::thread::spawn(move || {
            publisher.publish(2);
        });
        let t1 = loom::thread::spawn(move || {
            if let Some((epoch, snap)) = r1.pin() {
                assert_eq!(**snap, epoch, "value does not match its epoch");
            }
        });
        let first = r0.pin().expect("epoch 1 was published before the race");
        let first_epoch = first.0;
        let (second_epoch, snap) = r0.pin().expect("pin never forgets");
        assert!(second_epoch >= first_epoch, "pin regressed");
        assert_eq!(**snap, second_epoch);
        t.join().unwrap();
        t1.join().unwrap();
    });
    assert_explored();
}

#[test]
fn cluster_epoch_publishes_complete_cuts() {
    // The cluster tier's publication invariant: a reader that observes
    // cluster epoch `e` (Acquire on the cluster-epoch word) must be able to
    // pin a cut of epoch >= e whose per-shard snapshots are all fully
    // constructed. Each shard's epoch-`e` value is `e`, so a missing shard
    // or a torn cut fails deterministically in some explored schedule.
    loom::model(|| {
        let (mut publisher, mut readers) = cluster_epoch_channel::<u64>(2, 1);
        let mut reader = readers.pop().unwrap();
        let t = loom::thread::spawn(move || {
            assert_eq!(publisher.offer(0, 1u64.into()), None);
            assert_eq!(publisher.offer(1, 1u64.into()), Some(1));
            assert_eq!(publisher.offer(0, 2u64.into()), None);
            assert_eq!(publisher.offer(1, 2u64.into()), Some(2));
        });
        let observed = reader.published();
        match reader.pin() {
            Some((epoch, cut)) => {
                assert!(
                    epoch >= observed,
                    "pin returned epoch {epoch} after published() showed {observed}"
                );
                assert_eq!(cut.len(), 2, "cut missing a shard at epoch {epoch}");
                for shard in cut.iter() {
                    assert_eq!(**shard, epoch, "torn cut at epoch {epoch}");
                }
            }
            None => assert_eq!(observed, 0, "epoch {observed} visible but not pinnable"),
        }
        t.join().unwrap();
        // The coordinator is gone: the final pin must land on the last cut.
        let (epoch, cut) = reader.pin().expect("both cuts published");
        assert_eq!(epoch, 2);
        assert_eq!((*cut[0], *cut[1]), (2, 2));
    });
    assert_explored();
}

#[test]
fn next_epoch_walks_the_sequence_without_skipping() {
    // The coordinator's consumption discipline: `next_epoch` must deliver a
    // shard's local epochs 1, 2, … in order with none skipped, under every
    // schedule of the publisher racing ahead.
    loom::model(|| {
        let (mut publisher, mut readers) = epoch_channel::<u64>(1);
        let mut lane = readers.pop().unwrap();
        let t = loom::thread::spawn(move || {
            publisher.publish(1);
            publisher.publish(2);
        });
        let mut expected = 1u64;
        loop {
            let closed = lane.is_closed();
            while let Some((epoch, snap)) = lane.next_epoch() {
                assert_eq!(epoch, expected, "next_epoch skipped an epoch");
                assert_eq!(*snap, expected, "value does not match its epoch");
                expected += 1;
            }
            if closed {
                break;
            }
            loom::thread::yield_now();
        }
        t.join().unwrap();
        assert_eq!(expected, 3, "an epoch was lost");
    });
    assert_explored();
}

#[test]
fn block_to_block_transfer_is_complete_under_every_schedule() {
    // Both endpoints batched — the exact shape of the batched stage-1 →
    // stage-2 handoff: write-combining flush on one side, block drain on
    // the other.
    loom::model(|| {
        let (mut tx, mut rx) = channel::<usize>();
        let t = loom::thread::spawn(move || {
            tx.push_block(&[1, 2, 3]); // SEG_CAP=2: spans a segment link
            tx.push_block(&[4, 5]);
        });
        let mut got = Vec::new();
        loop {
            let closed = rx.is_closed();
            rx.pop_block(&mut got);
            if closed {
                break;
            }
            loom::thread::yield_now();
        }
        t.join().unwrap();
        assert_eq!(got, vec![1, 2, 3, 4, 5], "block handoff lost an element");
    });
    assert_explored();
}
