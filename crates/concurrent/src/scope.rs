//! Fork–join execution of one closure per thread index.
//!
//! The PRAM program model of the paper is "`for p = 0 to P−1 in parallel do`".
//! [`run_on_threads`] is exactly that statement: it forks `p` scoped threads,
//! passes each its index, joins them all, and returns the per-thread results
//! in index order. Scoped threads let the closures borrow the training data
//! and the shared queue matrix without `Arc`s or `'static` bounds.

/// Runs `f(0), f(1), …, f(p-1)` on `p` parallel threads and returns their
/// results in thread-index order.
///
/// For `p == 1` the closure is invoked on the calling thread — no spawn —
/// so single-threaded baselines measured through the same entry point pay no
/// threading overhead (important for honest speedup denominators).
///
/// # Panics
///
/// Panics if `p == 0`, or propagates a panic from any worker thread.
///
/// # Examples
///
/// ```
/// use wfbn_concurrent::run_on_threads;
/// let squares = run_on_threads(4, |t| t * t);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
pub fn run_on_threads<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(p > 0, "need at least one thread");
    if p == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|t| {
                let f = &f;
                std::thread::Builder::new()
                    .name(format!("wfbn-worker-{t}"))
                    .spawn_scoped(s, move || f(t))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_index_order() {
        let out = run_on_threads(8, |t| t * 10);
        assert_eq!(out, (0..8).map(|t| t * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let caller = std::thread::current().id();
        let ids = run_on_threads(1, |_| std::thread::current().id());
        assert_eq!(ids[0], caller);
    }

    #[test]
    fn closures_can_borrow_shared_state() {
        let data = vec![1u64; 1000];
        let counter = AtomicUsize::new(0);
        let sums = run_on_threads(4, |t| {
            counter.fetch_add(1, Ordering::Relaxed);
            let chunk = &data[t * 250..(t + 1) * 250];
            chunk.iter().sum::<u64>()
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(sums.iter().sum::<u64>(), 1000);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = run_on_threads(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panic_propagates() {
        let _ = run_on_threads(2, |t| {
            if t == 1 {
                panic!("boom");
            }
        });
    }
}
