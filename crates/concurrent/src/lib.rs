//! Low-level concurrency substrate for the `wfbn` workspace.
//!
//! This crate contains the building blocks the wait-free table-construction
//! primitive (Chu et al., IPPS 2014) is assembled from:
//!
//! * [`spsc`] — an unbounded, wait-free single-producer/single-consumer
//!   segmented queue. One such queue exists for every ordered pair of
//!   cooperating threads in the primitive's first stage ("Algorithm 1" in the
//!   paper), carrying the keys that fall outside the producing thread's key
//!   partition.
//! * [`pad`] — [`CachePadded`], which keeps per-thread hot
//!   state on distinct cache lines so that the "disjoint memory" property the
//!   paper relies on also holds at cache-line granularity (no false sharing).
//! * [`barrier`] — a sense-reversing spin barrier implementing the single
//!   synchronization step between the two construction stages.
//! * [`hash`] — a fast multiplicative (Fx-style) hasher and a `splitmix64`
//!   finalizer used by the open-addressed count tables; `SipHash` would
//!   dominate the profile for 8-byte integer keys.
//! * [`partition`] — contiguous range partitioning of `m` rows over `P`
//!   threads (the row split of Algorithm 1) plus strided pair scheduling
//!   (the pair split of Algorithm 4).
//! * [`scope`] — a thin wrapper over [`std::thread::scope`] that runs a
//!   closure once per thread index and collects the results in index order.
//! * [`epoch`] — single-writer epoch publication of immutable snapshots over
//!   per-reader SPSC lanes: the serving layer's bridge from the wait-free
//!   build (one absorbing writer) to lock-free readers, with the publication
//!   ordering proven torn-read-free under loom.
//! * [`cluster_epoch`] — the same discipline lifted one tier: a coordinator
//!   assembles per-shard snapshots into a *cluster cut* and publishes the
//!   cluster epoch with one Release store only once every shard has
//!   delivered its local epoch (also loom-modeled).
//!
//! Everything here is dependency-free in normal builds; the only `unsafe`
//! lives in the SPSC queue and is documented inline (each block carries a
//! `// SAFETY:` comment, enforced by `tools/check_safety_comments.sh`).
//!
//! Two opt-in cargo features back the verification layer:
//!
//! * `loom` — swaps the [`sync`]-module shim from `core`/`std` primitives to
//!   the loom model checker's instrumented doubles and shrinks
//!   [`spsc::SEG_CAP`] to 2, enabling the interleaving-exploring suites in
//!   `tests/loom.rs`.
//! * `ownership-audit` — enables the [`audit`] shadow map, which panics the
//!   moment any shared word is written by two cores in the same stage.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

#[cfg(feature = "ownership-audit")]
pub mod audit;
pub mod barrier;
pub mod cluster_epoch;
pub mod epoch;
pub mod hash;
pub mod pad;
pub mod partition;
pub mod scope;
pub mod spsc;
mod sync;

pub use barrier::SpinBarrier;
pub use cluster_epoch::{cluster_epoch_channel, ClusterCut, ClusterPublisher, ClusterReader};
pub use epoch::{epoch_channel, EpochPublisher, EpochReader};
pub use hash::{mix64, FxBuildHasher, FxHasher};
pub use pad::CachePadded;
pub use partition::{pair_count, pairs_for_thread, row_chunks, RowChunk};
pub use scope::run_on_threads;
pub use spsc::{channel, Consumer, Producer, SEG_CAP};
