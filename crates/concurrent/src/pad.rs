//! Cache-line padding.
//!
//! The wait-free construction primitive's correctness argument is that every
//! memory word is written by exactly one core per stage. For that argument to
//! translate into the *performance* the paper reports, per-core state must
//! also live on distinct cache lines — otherwise the coherence protocol
//! serializes logically-independent writes (false sharing).

use core::fmt;
use core::ops::{Deref, DerefMut};

/// One rustc-computed struct layout — name, `size_of`, and each field's
/// `offset_of!` — exported by the `layout_probes()` functions so the
/// `wfbn-analyze` layout estimator can be cross-checked against reality
/// without making the probed structs public.
pub type LayoutProbe = (&'static str, usize, Vec<(&'static str, usize)>);

/// Pads and aligns a value to (at least) one cache line.
///
/// 128 bytes is used rather than 64 because recent x86-64 parts prefetch
/// cache lines in pairs (the "spatial prefetcher"), so two values 64 bytes
/// apart can still ping-pong between cores.
///
/// # Examples
///
/// ```
/// use wfbn_concurrent::CachePadded;
///
/// let slots: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
/// assert!(core::mem::size_of::<CachePadded<u64>>() >= 128);
/// assert_eq!(*slots[2], 2);
/// ```
#[derive(Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a padded cell.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded cell, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_at_least_128_bytes_and_aligned() {
        assert!(core::mem::size_of::<CachePadded<u8>>() >= 128);
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        let v = CachePadded::new(7u8);
        assert_eq!(core::ptr::from_ref(&v) as usize % 128, 0);
    }

    #[test]
    fn deref_round_trip() {
        let mut c = CachePadded::new(vec![1, 2, 3]);
        c.push(4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let slots: Vec<CachePadded<u64>> = (0..8).map(CachePadded::new).collect();
        for pair in slots.windows(2) {
            let a = core::ptr::from_ref(&*pair[0]) as usize;
            let b = core::ptr::from_ref(&*pair[1]) as usize;
            assert!(b - a >= 128);
        }
    }

    #[test]
    fn default_and_from() {
        let d: CachePadded<u32> = CachePadded::default();
        assert_eq!(*d, 0);
        let f: CachePadded<u32> = 9.into();
        assert_eq!(*f, 9);
    }
}
