//! Facade over the synchronization primitives the crate's lock-free code is
//! written against.
//!
//! Everything in [`spsc`](crate::spsc) and [`barrier`](crate::barrier) imports
//! its atomics, spin hints, and yield calls from here instead of from
//! `core`/`std` directly. In a normal build the re-exports below *are* the
//! standard types, so there is zero abstraction cost. Under
//! `--features loom` they swap to the `loom` model checker's instrumented
//! doubles, whose every shared-memory access is a scheduling point — which is
//! what lets `tests/loom.rs` drive the queue and barrier through every
//! interleaving within the preemption bound rather than the one the host
//! scheduler happened to pick.
//!
//! Rules for code using this module:
//!
//! * never name `core::sync::atomic` / `std::thread` directly in the
//!   primitives — always go through `crate::sync`;
//! * spin loops must call [`hint::spin_loop`] or [`thread::yield_now`] from
//!   here, so that under the model (which serializes threads) the spin cedes
//!   the scheduler baton instead of spinning forever.

#[cfg(feature = "loom")]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
#[cfg(feature = "loom")]
pub(crate) use loom::{hint, thread};

#[cfg(not(feature = "loom"))]
pub(crate) use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(feature = "loom"))]
pub(crate) use std::{hint, thread};
