//! Fast non-cryptographic hashing for integer keys.
//!
//! The potential table maps `u64` state-string keys to counts. The default
//! std hasher (SipHash 1-3) is designed to resist hash-flooding from
//! adversarial inputs, which training data is not; for 8-byte integer keys it
//! costs more than the table probe itself. We use the Fx multiplicative hash
//! (the scheme rustc uses internally) for general `Hasher` consumers and a
//! `splitmix64` finalizer ([`mix64`]) where a full-avalanche mix of a single
//! `u64` is needed — e.g. slot selection in the open-addressed count table,
//! where low-entropy keys (small radix products) would otherwise cluster.

use core::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio multiplier used by the Fx hash (64-bit variant).
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A full-avalanche mix of a single `u64` (the `splitmix64` finalizer).
///
/// Every input bit affects every output bit, so sequential keys — the common
/// case for mixed-radix state encodings of correlated data — spread uniformly
/// over table slots.
///
/// # Examples
///
/// ```
/// use wfbn_concurrent::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// // Mixing is a bijection: distinct inputs give distinct outputs.
/// assert_ne!(mix64(0), mix64(u64::MAX));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fx-style multiplicative hasher.
///
/// Extremely fast for short integer keys; not collision-resistant against
/// adversarial input (acceptable: keys are derived from training data, not
/// from untrusted parties).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; drop-in for `HashMap`'s default.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::BuildHasher;

    #[test]
    fn mix64_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_avalanches_low_bits() {
        // Sequential inputs must not map to sequential outputs.
        let a = mix64(100);
        let b = mix64(101);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn fx_hasher_distinguishes_u64s() {
        let bh = FxBuildHasher::default();
        assert_ne!(bh.hash_one(1u64), bh.hash_one(2u64));
        assert_ne!(bh.hash_one(0u64), bh.hash_one(u64::MAX));
    }

    #[test]
    fn fx_hasher_handles_unaligned_byte_tails() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let tail = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(tail, h2.finish());
    }

    #[test]
    fn usable_as_hashmap_hasher() {
        let mut map: HashMap<u64, u64, FxBuildHasher> = HashMap::default();
        for k in 0..1000 {
            *map.entry(k % 37).or_insert(0) += 1;
        }
        assert_eq!(map.len(), 37);
        assert_eq!(map.values().sum::<u64>(), 1000);
    }
}
