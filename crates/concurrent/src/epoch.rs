//! Single-writer epoch publication of immutable snapshots.
//!
//! The serving layer needs one writer to hand out successive versions
//! ("epochs") of an immutable value — a published potential-table snapshot —
//! to `N` reader threads without any reader ever blocking the writer or each
//! other. This module extends the paper's exactly-one-owner discipline from
//! table construction to publication:
//!
//! * the **epoch counter** is a single [`AtomicU64`] written only by the
//!   publisher (plain store, no read-modify-write — the same no-RMW property
//!   the SPSC queue's `len` counter has);
//! * each reader gets a private **lane** — one of the crate's wait-free
//!   [`spsc`](crate::spsc) queues — carrying `(epoch, Arc<T>)` pairs. The
//!   publisher is the unique producer of every lane and each reader the
//!   unique consumer of its own, so publication inherits the queue's
//!   verified single-writer structure wholesale.
//!
//! # Protocol and memory ordering
//!
//! [`EpochPublisher::publish`] pushes the new `(epoch, Arc)` into every lane
//! *first*, then Release-stores the shared epoch counter. A reader that
//! Acquire-loads the counter ([`EpochReader::published`]) and observes epoch
//! `e` therefore synchronizes-with that store, which makes every earlier lane
//! push visible: a subsequent [`EpochReader::pin`] is guaranteed to return an
//! epoch `>= e` with its value fully constructed — a reader can never observe
//! a torn or unpublished epoch. (The loom model in
//! `crates/concurrent/tests/loom.rs` checks exactly this claim under every
//! interleaving.)
//!
//! Reclamation is free: a reader's `pin` drains its lane to the newest entry,
//! dropping the `Arc`s of the epochs it skipped; once every reader has moved
//! on and the publisher has replaced its own copy, the old snapshot's
//! reference count reaches zero and it is freed. No hazard pointers, no
//! deferred reclamation lists.
//!
//! # Examples
//!
//! ```
//! use wfbn_concurrent::epoch_channel;
//!
//! let (mut publisher, mut readers) = epoch_channel::<Vec<u64>>(2);
//! assert!(readers[0].pin().is_none()); // nothing published yet
//! publisher.publish(vec![1, 2, 3]);
//! let (epoch, snap) = readers[1].pin().expect("published");
//! assert_eq!(epoch, 1);
//! assert_eq!(snap.as_slice(), &[1, 2, 3]);
//! ```

use crate::spsc::{channel, Consumer, Producer};
use crate::sync::{AtomicU64, Ordering};
use std::sync::Arc;

/// The publishing (writer) endpoint; see the [module docs](self).
///
/// `publish` is wait-free: one `Arc` clone + one queue push per reader, then
/// a single Release store — no step waits on any reader.
pub struct EpochPublisher<T> {
    lanes: Vec<Producer<(u64, Arc<T>)>>,
    shared: Arc<AtomicU64>,
    epoch: u64,
    current: Option<Arc<T>>,
}

/// One reader's endpoint; see the [module docs](self).
///
/// `pin` is wait-free: it drains the private lane (bounded by the number of
/// epochs published since the last pin) and keeps the newest.
pub struct EpochReader<T> {
    lane: Consumer<(u64, Arc<T>)>,
    shared: Arc<AtomicU64>,
    pinned_epoch: u64,
    pinned: Option<Arc<T>>,
}

/// Creates an epoch-publication channel with `readers` reader endpoints.
///
/// Epoch 0 means "nothing published"; the first [`publish`]
/// (`EpochPublisher::publish`) creates epoch 1.
pub fn epoch_channel<T>(readers: usize) -> (EpochPublisher<T>, Vec<EpochReader<T>>) {
    let shared = Arc::new(AtomicU64::new(0));
    let mut lanes = Vec::with_capacity(readers);
    let mut ends = Vec::with_capacity(readers);
    for _ in 0..readers {
        let (tx, rx) = channel();
        lanes.push(tx);
        ends.push(EpochReader {
            lane: rx,
            shared: Arc::clone(&shared),
            pinned_epoch: 0,
            pinned: None,
        });
    }
    (
        EpochPublisher {
            lanes,
            shared,
            epoch: 0,
            current: None,
        },
        ends,
    )
}

impl<T> EpochPublisher<T> {
    /// Publishes `value` as the next epoch and returns its number.
    ///
    /// Order matters: the `(epoch, Arc)` pairs go into every reader lane
    /// *before* the Release store of the shared counter, so any reader that
    /// observes the new counter value can already pin the new epoch.
    pub fn publish(&mut self, value: T) -> u64 {
        let snap = Arc::new(value);
        self.epoch += 1;
        for lane in &mut self.lanes {
            lane.push((self.epoch, Arc::clone(&snap)));
        }
        // The epoch slot is single-writer: only the publisher ever stores it.
        #[cfg(feature = "ownership-audit")]
        crate::audit::record_write(
            Arc::as_ptr(&self.shared).cast::<u8>(),
            core::mem::size_of::<u64>(),
        );
        // Release: pairs with the readers' Acquire load in `published`;
        // everything pushed above is visible to a reader that sees this epoch.
        // hb-writer: publisher
        // loom-model: epoch_reader_never_observes_torn_or_unpublished_epoch
        self.shared.store(self.epoch, Ordering::Release);
        self.current = Some(snap);
        self.epoch
    }

    /// The most recently published epoch (0 if none yet).
    pub fn published(&self) -> u64 {
        self.epoch
    }

    /// The most recently published value, if any (the publisher's own
    /// handle; readers get theirs through their lanes).
    pub fn latest(&self) -> Option<&Arc<T>> {
        self.current.as_ref()
    }

    /// Number of reader lanes this publisher feeds.
    pub fn readers(&self) -> usize {
        self.lanes.len()
    }
}

impl<T> EpochReader<T> {
    /// The newest epoch the publisher has made visible (Acquire).
    ///
    /// After this returns `e`, [`pin`](Self::pin) is guaranteed to return an
    /// epoch `>= e` — the module-level happens-before argument.
    pub fn published(&self) -> u64 {
        // loom-model: epoch_reader_never_observes_torn_or_unpublished_epoch,epoch_pins_are_monotone_under_every_schedule
        self.shared.load(Ordering::Acquire)
    }

    /// Advances to the newest published epoch and returns it with its value;
    /// `None` until the first publication reaches this lane.
    ///
    /// The returned epoch never decreases across calls, and the reference
    /// stays valid (and its contents immutable) until the next `pin`.
    pub fn pin(&mut self) -> Option<(u64, &Arc<T>)> {
        // wf-bound: backlog(lane) — each iteration pops one epoch already
        // committed to the SPSC lane; the publisher pushes at most one per
        // publish, so the drain is bounded by the backlog at entry.
        while let Some((epoch, snap)) = self.lane.try_pop() {
            debug_assert!(epoch > self.pinned_epoch, "epochs arrive in order");
            self.pinned_epoch = epoch;
            self.pinned = Some(snap);
        }
        self.pinned.as_ref().map(|snap| (self.pinned_epoch, snap))
    }

    /// Consumes exactly one epoch from the lane — the *oldest* not yet
    /// consumed — and pins it. `None` if the lane is currently empty.
    ///
    /// Where [`pin`](Self::pin) drains to the newest epoch (a reader that
    /// only ever wants the latest snapshot), `next_epoch` walks the epoch
    /// sequence 1, 2, 3, … without skipping: the cluster coordinator uses it
    /// to obtain every shard's epoch-`e` snapshot even while shards run
    /// ahead, which is what makes cross-shard cuts align epoch-for-epoch.
    /// Wait-free: one `try_pop`, no loop.
    pub fn next_epoch(&mut self) -> Option<(u64, Arc<T>)> {
        let (epoch, snap) = self.lane.try_pop()?;
        debug_assert!(epoch > self.pinned_epoch, "epochs arrive in order");
        self.pinned_epoch = epoch;
        self.pinned = Some(Arc::clone(&snap));
        Some((epoch, snap))
    }

    /// The epoch currently pinned (0 before the first successful
    /// [`pin`](Self::pin)).
    pub fn pinned_epoch(&self) -> u64 {
        self.pinned_epoch
    }

    /// The currently pinned value without advancing (None before the first
    /// successful [`pin`](Self::pin)).
    pub fn pinned(&self) -> Option<&Arc<T>> {
        self.pinned.as_ref()
    }

    /// `true` once the publisher endpoint has been dropped; combined with a
    /// final [`pin`](Self::pin), the reader then holds the last epoch there
    /// will ever be.
    pub fn is_closed(&self) -> bool {
        self.lane.is_closed()
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn publishes_reach_every_reader_in_order() {
        let (mut publisher, mut readers) = epoch_channel::<u64>(3);
        assert_eq!(publisher.readers(), 3);
        for r in &mut readers {
            assert!(r.pin().is_none());
            assert_eq!(r.published(), 0);
        }
        assert_eq!(publisher.publish(10), 1);
        assert_eq!(publisher.publish(20), 2);
        assert_eq!(publisher.published(), 2);
        assert_eq!(**publisher.latest().unwrap(), 20);
        for r in &mut readers {
            assert_eq!(r.published(), 2);
            let (epoch, snap) = r.pin().expect("two epochs published");
            assert_eq!(epoch, 2, "pin lands on the newest epoch");
            assert_eq!(**snap, 20);
            assert_eq!(r.pinned_epoch(), 2);
        }
    }

    #[test]
    fn pin_is_monotone_and_stable_between_publishes() {
        let (mut publisher, mut readers) = epoch_channel::<String>(1);
        let r = &mut readers[0];
        publisher.publish("a".into());
        assert_eq!(r.pin().unwrap().0, 1);
        // No new publish: pin stays where it was.
        assert_eq!(r.pin().unwrap().0, 1);
        assert_eq!(r.pinned().map(|s| s.as_str()), Some("a"));
        publisher.publish("b".into());
        let (epoch, snap) = r.pin().unwrap();
        assert_eq!((epoch, snap.as_str()), (2, "b"));
    }

    #[test]
    fn skipped_epochs_are_reclaimed() {
        let (mut publisher, mut readers) = epoch_channel::<Vec<u8>>(2);
        let first = publisher.publish(vec![1]);
        assert_eq!(first, 1);
        let held = Arc::clone(readers[0].pin().unwrap().1);
        for i in 2..=5u8 {
            publisher.publish(vec![i]);
        }
        // Reader 0 advances, dropping epochs 2..=4; reader 1 jumps straight
        // to 5. Epoch 1 survives only through the clone we kept.
        assert_eq!(readers[0].pin().unwrap().0, 5);
        assert_eq!(readers[1].pin().unwrap().0, 5);
        assert_eq!(Arc::strong_count(&held), 1, "epoch 1 fully released");
    }

    #[test]
    fn closed_publisher_leaves_last_epoch_pinnable() {
        let (mut publisher, mut readers) = epoch_channel::<u64>(1);
        publisher.publish(7);
        drop(publisher);
        let r = &mut readers[0];
        assert!(r.is_closed());
        assert_eq!(r.pin().map(|(e, s)| (e, **s)), Some((1, 7)));
    }

    #[test]
    fn concurrent_readers_only_see_fully_published_epochs() {
        // Stress (non-loom) version of the publication invariant: an epoch
        // `e` always carries a vector of length `e`, so any torn observation
        // would fail the length check.
        const EPOCHS: u64 = 1_000;
        const READERS: usize = 4;
        let (mut publisher, readers) = epoch_channel::<Vec<u64>>(READERS);
        std::thread::scope(|s| {
            for mut r in readers {
                s.spawn(move || {
                    let mut last = 0u64;
                    loop {
                        let observed = r.published();
                        let closed = r.is_closed();
                        if let Some((epoch, snap)) = r.pin() {
                            assert!(epoch >= observed, "pin lagged a visible epoch");
                            assert!(epoch >= last, "epoch went backwards");
                            assert_eq!(snap.len() as u64, epoch, "torn snapshot");
                            last = epoch;
                        }
                        if closed {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    assert_eq!(r.pin().unwrap().0, EPOCHS);
                });
            }
            s.spawn(move || {
                let mut v = Vec::new();
                for e in 1..=EPOCHS {
                    v.push(e);
                    publisher.publish(v.clone());
                }
            });
        });
    }
}
