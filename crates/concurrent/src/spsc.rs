//! An unbounded, wait-free single-producer/single-consumer segmented queue.
//!
//! Algorithm 1 of the paper equips every core `p` with `P − 1` queues, one
//! per foreign core; during stage 1, core `p` *produces* keys into
//! `Q[p][owner]` and during stage 2 core `owner` *consumes* them. Every queue
//! therefore has exactly one producer thread and exactly one consumer thread
//! for its whole lifetime, which is the precondition for this queue type.
//!
//! # Design
//!
//! The queue is a singly-linked list of fixed-capacity *segments*. The
//! producer owns the tail segment and a local write index; publishing an
//! element is a plain slot write followed by a release store of the segment's
//! committed length — no read-modify-write, no CAS loop, so `push` completes
//! in a bounded number of its own steps regardless of what the consumer does
//! (*wait-freedom*). The consumer owns the head segment and a local read
//! index; `try_pop` acquires the committed length and reads slots below it.
//! Fully-consumed segments are freed by the consumer as it advances.
//!
//! Because the producer writes only the tail and the consumer reads only the
//! head, the two threads touch the same cache line only when they operate on
//! the same segment — the `len` counter — which is the minimum communication
//! any queue must perform.

use crate::pad::CachePadded;
use crate::sync::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::ptr::{self, NonNull};
use std::sync::Arc;

/// Number of element slots per segment.
///
/// Large enough to amortize allocation (one allocation per 512 pushes),
/// small enough that a nearly-empty queue wastes little memory when a
/// construction run forwards few foreign keys.
///
/// Public so tests can construct inputs that land exactly on segment
/// boundaries — the seams where the publication protocol does real work.
#[cfg(not(feature = "loom"))]
pub const SEG_CAP: usize = 512;

/// Under the loom model the segment capacity shrinks to 2 so that a handful
/// of pushes crosses segment boundaries and the explorer reaches the
/// segment-linking code within its preemption bound.
#[cfg(feature = "loom")]
pub const SEG_CAP: usize = 2;

/// `repr(C)` so the declared field order is the stored field order — the
/// false-sharing table in `analysis/layout.toml` reasons about byte offsets,
/// and `repr(Rust)` would be free to reorder. `len` (producer-written) and
/// `consumed` (consumer-written) each get their own cache line pair; the
/// producer-owned tail words (`next`, `slots`) share lines freely.
#[repr(C)]
struct Segment<T> {
    /// Slots `[0, len)` are committed by the producer.
    len: CachePadded<AtomicUsize>,
    /// Slots `[0, consumed)` have been taken by the consumer. Written only by
    /// the consumer; read by the final drop to destroy leftovers exactly once.
    consumed: CachePadded<AtomicUsize>,
    /// Next segment in the chain, linked by the producer before it publishes
    /// any element in it.
    next: AtomicPtr<Segment<T>>,
    slots: [UnsafeCell<MaybeUninit<T>>; SEG_CAP],
}

impl<T> Segment<T> {
    fn boxed() -> NonNull<Segment<T>> {
        let seg = Box::new(Segment {
            len: CachePadded::new(AtomicUsize::new(0)),
            consumed: CachePadded::new(AtomicUsize::new(0)),
            next: AtomicPtr::new(ptr::null_mut()),
            slots: core::array::from_fn(|_| UnsafeCell::new(MaybeUninit::uninit())),
        });
        // SAFETY: Box::into_raw never returns null.
        unsafe { NonNull::new_unchecked(Box::into_raw(seg)) }
    }
}

/// State shared by the two endpoints; owns the segment chain on final drop.
///
/// `repr(C)` + per-field padding for the same reason as [`Segment`]: `head`
/// is consumer-written, `closed` is producer-written, and letting them share
/// a line would make every queue-advance invalidate the producer's close
/// flag (and vice versa).
#[repr(C)]
struct Shared<T> {
    /// First segment that may still hold live elements. Advanced by the
    /// consumer; read by the final drop.
    head: CachePadded<AtomicPtr<Segment<T>>>,
    /// Set by `Producer::drop`, meaning no further elements will arrive.
    closed: CachePadded<AtomicBool>,
}

// SAFETY: the chain is freed exactly once (by whichever endpoint drops the
// last Arc), and Arc's reference counting provides the necessary ordering.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: the only shared mutation goes through atomics; slot access is
// partitioned between the unique producer and unique consumer.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both endpoints are gone; we have exclusive access to the chain.
        let mut seg_ptr = *self.head.get_mut();
        while !seg_ptr.is_null() {
            // Hand the segment's words back to the ownership auditor before
            // the allocator can recycle them for another core.
            #[cfg(feature = "ownership-audit")]
            crate::audit::retire_range(seg_ptr.cast::<u8>(), core::mem::size_of::<Segment<T>>());
            // SAFETY: the pointer came from Box::into_raw and no endpoint can
            // touch it any more.
            let mut seg = unsafe { Box::from_raw(seg_ptr) };
            let len = *seg.len.get_mut();
            let consumed = *seg.consumed.get_mut();
            for slot in &mut seg.slots[consumed..len] {
                // SAFETY: slots in [consumed, len) were committed by the
                // producer and never read by the consumer.
                unsafe { slot.get_mut().assume_init_drop() };
            }
            seg_ptr = *seg.next.get_mut();
        }
    }
}

/// The sending endpoint. `push` is wait-free. Dropping it closes the queue.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    tail: NonNull<Segment<T>>,
    /// Local mirror of `tail.len` (only this thread ever writes it).
    idx: usize,
    pushed: u64,
    segments_linked: u64,
}

// SAFETY: the producer is the unique writer of the tail segment; moving it to
// another thread is fine as long as T can move between threads.
unsafe impl<T: Send> Send for Producer<T> {}

/// The receiving endpoint. `try_pop` is wait-free.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    head: NonNull<Segment<T>>,
    idx: usize,
    popped: u64,
}

// SAFETY: the consumer is the unique reader of the head segment.
unsafe impl<T: Send> Send for Consumer<T> {}

/// Creates a new unbounded SPSC queue, returning its two endpoints.
///
/// # Examples
///
/// ```
/// let (mut tx, mut rx) = wfbn_concurrent::channel::<u64>();
/// std::thread::scope(|s| {
///     s.spawn(move || {
///         for k in 0..10_000 {
///             tx.push(k);
///         }
///     }); // tx dropped here => queue closes
///     s.spawn(move || {
///         let mut sum = 0u64;
///         let mut done = false;
///         while !done {
///             done = rx.is_closed();
///             while let Some(k) = rx.try_pop() {
///                 sum += k;
///             }
///         }
///         assert_eq!(sum, (0..10_000u64).sum());
///     });
/// });
/// ```
pub fn channel<T>() -> (Producer<T>, Consumer<T>) {
    let first = Segment::boxed();
    let shared = Arc::new(Shared {
        head: CachePadded::new(AtomicPtr::new(first.as_ptr())),
        closed: CachePadded::new(AtomicBool::new(false)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: first,
            idx: 0,
            pushed: 0,
            segments_linked: 0,
        },
        Consumer {
            shared,
            head: first,
            idx: 0,
            popped: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Appends `value`; completes in O(1) steps independent of the consumer.
    pub fn push(&mut self, value: T) {
        if self.idx == SEG_CAP {
            let next = Segment::boxed();
            // SAFETY: self.tail is a live segment owned (for writing) by us.
            let tail = unsafe { self.tail.as_ref() };
            // Release: the consumer's Acquire load of `next` must see the new
            // segment fully initialized.
            // hb-writer: producer
            // loom-model: queue_transfer_crosses_segment_boundaries
            tail.next.store(next.as_ptr(), Ordering::Release);
            self.tail = next;
            self.idx = 0;
            self.segments_linked += 1;
        }
        // SAFETY: slots at and above `idx` have never been published, so the
        // consumer does not read them; we are the only writer.
        unsafe {
            let tail = self.tail.as_ref();
            let slot = tail.slots[self.idx].get();
            (*slot).write(value);
            #[cfg(feature = "ownership-audit")]
            crate::audit::record_write(slot.cast::<u8>(), core::mem::size_of::<T>());
            // Release: publish the slot write above.
            // hb-writer: producer
            // loom-model: queue_transfer_crosses_segment_boundaries,queue_close_then_drain_protocol_is_complete
            tail.len.store(self.idx + 1, Ordering::Release);
        }
        self.idx += 1;
        self.pushed += 1;
    }

    /// Total number of elements pushed through this endpoint.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Number of segments this endpoint allocated and linked beyond the
    /// initial one — i.e. how many times the queue outgrew [`SEG_CAP`].
    /// Telemetry for the observability layer; local state, wait-free to read.
    pub fn segments_linked(&self) -> u64 {
        self.segments_linked
    }
}

impl<T: Copy> Producer<T> {
    /// Appends every element of `block` in order, amortizing the release
    /// store of the segment's committed length to **once per segment chunk**
    /// instead of once per element (the write-combining fast path of the
    /// batched builders).
    ///
    /// Equivalent to `for &v in block { self.push(v) }` — same FIFO order,
    /// same segment-linking protocol, same wait-freedom (the number of steps
    /// is bounded by `block.len()` plus the number of segments crossed,
    /// independent of the consumer). Restricted to `T: Copy` so a caller's
    /// write-combining buffer can be re-flushed from a slice without moves.
    pub fn push_block(&mut self, block: &[T]) {
        let mut rest = block;
        while !rest.is_empty() {
            if self.idx == SEG_CAP {
                let next = Segment::boxed();
                // SAFETY: self.tail is a live segment owned (for writing) by us.
                let tail = unsafe { self.tail.as_ref() };
                // Release: the consumer's Acquire load of `next` must see the
                // new segment fully initialized.
                // hb-writer: producer
                // loom-model: push_block_segment_linking_is_published_under_every_schedule
                tail.next.store(next.as_ptr(), Ordering::Release);
                self.tail = next;
                self.idx = 0;
                self.segments_linked += 1;
            }
            let take = rest.len().min(SEG_CAP - self.idx);
            // SAFETY: slots at and above `idx` have never been published, so
            // the consumer does not read them; we are the only writer. The
            // single Release store of `len` after the chunk publishes every
            // slot write before it (same pairing as the scalar `push`).
            unsafe {
                let tail = self.tail.as_ref();
                for (offset, &value) in rest[..take].iter().enumerate() {
                    (*tail.slots[self.idx + offset].get()).write(value);
                }
                #[cfg(feature = "ownership-audit")]
                crate::audit::record_write(
                    tail.slots[self.idx].get().cast::<u8>(),
                    take * core::mem::size_of::<T>(),
                );
                // hb-writer: producer
                // loom-model: push_block_segment_linking_is_published_under_every_schedule,block_to_block_transfer_is_complete_under_every_schedule
                tail.len.store(self.idx + take, Ordering::Release);
            }
            self.idx += take;
            self.pushed += take as u64;
            rest = &rest[take..];
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // Release: a consumer that observes `closed` also observes every push.
        // hb-writer: producer
        // loom-model: queue_close_then_drain_protocol_is_complete
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Removes and returns the oldest element, or `None` if none is visible.
    ///
    /// `None` does **not** mean the producer is finished — pair with
    /// [`is_closed`](Self::is_closed) for termination (see [`channel`]).
    pub fn try_pop(&mut self) -> Option<T> {
        // wf-bound: backlog(segments) — each iteration either returns,
        // or frees the exhausted head segment and advances to a `next`
        // link that existed at entry; the chain is finite.
        loop {
            // SAFETY: `head` is alive until we free it below.
            let head = unsafe { self.head.as_ref() };
            // loom-model: queue_transfer_crosses_segment_boundaries
            let committed = head.len.load(Ordering::Acquire);
            if self.idx < committed {
                // SAFETY: slot `idx` was committed (Acquire above pairs with
                // the producer's Release), and each slot is read once.
                let value = unsafe { (*head.slots[self.idx].get()).assume_init_read() };
                self.idx += 1;
                self.popped += 1;
                // Publish progress for the final-drop bookkeeping.
                // loom-model: queue_drop_with_unconsumed_elements_frees_exactly_once
                head.consumed.store(self.idx, Ordering::Relaxed);
                return Some(value);
            }
            if self.idx < SEG_CAP {
                // Caught up with the producer inside this segment.
                return None;
            }
            // Segment exhausted: move to the next one if it exists.
            // loom-model: queue_transfer_crosses_segment_boundaries
            let next = head.next.load(Ordering::Acquire);
            let next = NonNull::new(next)?;
            let old = self.head;
            self.head = next;
            self.idx = 0;
            // loom-model: queue_drop_with_unconsumed_elements_frees_exactly_once
            self.shared.head.store(next.as_ptr(), Ordering::Relaxed);
            // The segment's slots go back to the allocator; a later
            // allocation owned by any core may legitimately reuse them.
            #[cfg(feature = "ownership-audit")]
            crate::audit::retire_range(
                old.as_ptr().cast::<u8>(),
                core::mem::size_of::<Segment<T>>(),
            );
            // SAFETY: every slot of `old` was consumed, the producer moved on
            // when it linked `next`, and no other thread can reach `old`
            // (shared.head now points past it).
            drop(unsafe { Box::from_raw(old.as_ptr()) });
        }
    }

    /// Moves every element that is currently visible into `out` (appending,
    /// FIFO order) and returns how many were taken.
    ///
    /// The batched counterpart of a `try_pop` drain loop: the committed
    /// length is Acquire-loaded **once per segment visit** instead of once
    /// per element, and consumer progress is published with one store per
    /// chunk. A return of `0` means no element was visible — as with
    /// [`try_pop`](Self::try_pop) it does *not* mean the producer is
    /// finished; pair with [`is_closed`](Self::is_closed) for termination.
    pub fn pop_block(&mut self, out: &mut Vec<T>) -> usize {
        let mut taken = 0usize;
        // wf-bound: backlog(segments) — per segment visit: drain the
        // committed chunk, or follow the `next` link, or return; bounded
        // by the segments linked at entry.
        loop {
            // SAFETY: `head` is alive until we free it below.
            let head = unsafe { self.head.as_ref() };
            // loom-model: pop_block_sees_complete_prefix_under_every_schedule
            let committed = head.len.load(Ordering::Acquire);
            if self.idx < committed {
                let chunk = committed - self.idx;
                out.reserve(chunk);
                for i in self.idx..committed {
                    // SAFETY: slots `[idx, committed)` were committed (the
                    // Acquire above pairs with the producer's Release), and
                    // each slot is read exactly once.
                    out.push(unsafe { (*head.slots[i].get()).assume_init_read() });
                }
                self.idx = committed;
                self.popped += chunk as u64;
                taken += chunk;
                // Publish progress for the final-drop bookkeeping.
                // loom-model: pop_block_sees_complete_prefix_under_every_schedule
                head.consumed.store(self.idx, Ordering::Relaxed);
            }
            if self.idx < SEG_CAP {
                // Caught up with the producer inside this segment.
                return taken;
            }
            // Segment exhausted: move to the next one if it exists.
            // loom-model: pop_block_sees_complete_prefix_under_every_schedule
            let next = head.next.load(Ordering::Acquire);
            let Some(next) = NonNull::new(next) else {
                return taken;
            };
            let old = self.head;
            self.head = next;
            self.idx = 0;
            // loom-model: pop_block_sees_complete_prefix_under_every_schedule
            self.shared.head.store(next.as_ptr(), Ordering::Relaxed);
            // The segment's slots go back to the allocator; a later
            // allocation owned by any core may legitimately reuse them.
            #[cfg(feature = "ownership-audit")]
            crate::audit::retire_range(
                old.as_ptr().cast::<u8>(),
                core::mem::size_of::<Segment<T>>(),
            );
            // SAFETY: every slot of `old` was consumed, the producer moved on
            // when it linked `next`, and no other thread can reach `old`
            // (shared.head now points past it).
            drop(unsafe { Box::from_raw(old.as_ptr()) });
        }
    }

    /// `true` once the producer has been dropped.
    ///
    /// If this returns `true`, every element the producer ever pushed is
    /// already visible to `try_pop`, so `drain-until-None` after a `true`
    /// observation empties the queue completely.
    pub fn is_closed(&self) -> bool {
        // loom-model: queue_close_then_drain_protocol_is_complete
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Total number of elements popped through this endpoint.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of committed-but-unconsumed elements visible in the *head*
    /// segment right now — a wait-free lower bound on the queue's backlog
    /// (elements in later segments are not counted; walking the chain would
    /// not be O(1)).
    ///
    /// One Acquire load of the head's committed length plus local arithmetic;
    /// safe to call from the consumer's drain loop at any time. The
    /// observability layer samples this to maintain queue-depth high-water
    /// marks.
    pub fn visible_backlog(&self) -> u64 {
        // SAFETY: `head` stays alive until this consumer advances past it.
        // loom-model: queue_transfer_crosses_segment_boundaries
        let committed = unsafe { self.head.as_ref() }.len.load(Ordering::Acquire);
        committed.saturating_sub(self.idx) as u64
    }

    /// Drains every element that is currently visible.
    pub fn drain_visible(&mut self) -> DrainVisible<'_, T> {
        DrainVisible { consumer: self }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Record where consumption stopped inside the head segment so the
        // Shared drop destroys only live elements.
        // SAFETY: head is alive; we are its unique reader.
        unsafe { self.head.as_ref() }
            .consumed
            .store(self.idx, Ordering::Relaxed); // loom-model: queue_drop_with_unconsumed_elements_frees_exactly_once
        // Ownership of the chain transfers to Shared::drop via the Arc.
    }
}

/// Iterator returned by [`Consumer::drain_visible`].
pub struct DrainVisible<'a, T> {
    consumer: &'a mut Consumer<T>,
}

impl<T> Iterator for DrainVisible<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.consumer.try_pop()
    }
}

/// Rustc's own layout of the queue's shared structs — name, size, and the
/// byte offset of every field — for cross-checking the conservative
/// estimator in `wfbn-analyze` (crates/analyze/tests/layout_check.rs).
/// Instantiated at `T = u64`; the padded header offsets do not depend on `T`.
#[doc(hidden)]
#[cfg(not(feature = "loom"))]
pub fn layout_probes() -> Vec<crate::pad::LayoutProbe> {
    use core::mem::{offset_of, size_of};
    vec![
        (
            "Segment",
            size_of::<Segment<u64>>(),
            vec![
                ("len", offset_of!(Segment<u64>, len)),
                ("consumed", offset_of!(Segment<u64>, consumed)),
                ("next", offset_of!(Segment<u64>, next)),
                ("slots", offset_of!(Segment<u64>, slots)),
            ],
        ),
        (
            "Shared",
            size_of::<Shared<u64>>(),
            vec![
                ("head", offset_of!(Shared<u64>, head)),
                ("closed", offset_of!(Shared<u64>, closed)),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_fifo() {
        let (mut tx, mut rx) = channel();
        for i in 0..1000u64 {
            tx.push(i);
        }
        for i in 0..1000u64 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
        assert!(!rx.is_closed());
        drop(tx);
        assert!(rx.is_closed());
    }

    #[test]
    fn crosses_many_segment_boundaries() {
        let (mut tx, mut rx) = channel();
        let n = SEG_CAP as u64 * 7 + 13;
        for i in 0..n {
            tx.push(i);
        }
        let got: Vec<u64> = rx.drain_visible().collect();
        assert_eq!(got.len() as u64, n);
        assert!(got.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let (mut tx, mut rx) = channel();
        let mut expected = 0u64;
        for round in 0..200u64 {
            for i in 0..round % 17 {
                tx.push(round * 100 + i);
            }
            while let Some(_v) = rx.try_pop() {
                expected += 1;
            }
        }
        drop(tx);
        let rest = rx.drain_visible().count() as u64;
        let total: u64 = (0..200u64).map(|r| r % 17).sum();
        assert_eq!(expected + rest, total);
    }

    #[test]
    fn concurrent_transfer_is_lossless_and_ordered() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = channel();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    tx.push(i);
                }
            });
            s.spawn(move || {
                let mut next = 0u64;
                loop {
                    let closed = rx.is_closed();
                    while let Some(v) = rx.try_pop() {
                        assert_eq!(v, next);
                        next += 1;
                    }
                    if closed {
                        break;
                    }
                    std::hint::spin_loop();
                }
                assert_eq!(next, N);
            });
        });
    }

    #[test]
    fn drops_unconsumed_elements_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        // Relaxed suffices: the whole test runs on one thread, so every
        // counter access is program-ordered (the workspace carries no SeqCst
        // site; analysis/policy.toml denies the ordering outright).
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Tracked {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::Relaxed);
                Tracked
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::Relaxed);
            }
        }

        let (mut tx, mut rx) = channel();
        for _ in 0..(SEG_CAP * 3 + 5) {
            tx.push(Tracked::new());
        }
        // Consume a prefix spanning one segment boundary (SEG_CAP + 1 stays
        // below the 3 * SEG_CAP + 5 pushed for every SEG_CAP, including the
        // loom-shrunk one).
        for _ in 0..(SEG_CAP + 1) {
            drop(rx.try_pop().expect("committed element"));
        }
        drop(tx);
        drop(rx);
        assert_eq!(LIVE.load(Ordering::Relaxed), 0, "leak or double drop");
    }

    #[test]
    fn consumer_dropped_first_then_producer_keeps_pushing() {
        let (mut tx, rx) = channel();
        tx.push(String::from("a"));
        drop(rx);
        for i in 0..(SEG_CAP * 2) {
            tx.push(format!("x{i}"));
        }
        drop(tx); // Shared::drop must free everything without leaking.
    }

    #[test]
    fn pushed_and_popped_counters() {
        let (mut tx, mut rx) = channel();
        for i in 0..100u32 {
            tx.push(i);
        }
        assert_eq!(tx.pushed(), 100);
        let _ = rx.drain_visible().count();
        assert_eq!(rx.popped(), 100);
    }

    #[test]
    fn segments_linked_counts_capacity_overflows() {
        let (mut tx, _rx) = channel();
        assert_eq!(tx.segments_linked(), 0);
        for i in 0..SEG_CAP as u64 {
            tx.push(i);
        }
        // The initial segment is exactly full; nothing linked yet.
        assert_eq!(tx.segments_linked(), 0);
        tx.push(0);
        assert_eq!(tx.segments_linked(), 1);
        for i in 0..(3 * SEG_CAP) as u64 {
            tx.push(i);
        }
        assert_eq!(tx.segments_linked(), 4);
    }

    #[test]
    fn visible_backlog_tracks_head_segment_occupancy() {
        let (mut tx, mut rx) = channel();
        assert_eq!(rx.visible_backlog(), 0);
        tx.push(1u64);
        tx.push(2u64);
        assert_eq!(rx.visible_backlog(), 2);
        let _ = rx.try_pop();
        assert_eq!(rx.visible_backlog(), 1);
        let _ = rx.try_pop();
        assert_eq!(rx.visible_backlog(), 0);
        // A full head segment plus spill into the next: the backlog reports
        // only the head segment's remainder (documented lower bound).
        for i in 0..(SEG_CAP as u64 + 5) {
            tx.push(i);
        }
        assert_eq!(rx.visible_backlog(), (SEG_CAP - 2) as u64);
        while rx.try_pop().is_some() {}
        assert_eq!(rx.visible_backlog(), 0);
    }

    #[test]
    fn push_block_matches_scalar_pushes_at_segment_seams() {
        // Block sizes straddling the segment boundary are the seams where
        // the chunked publication protocol does real work.
        for len in [
            0,
            1,
            SEG_CAP - 1,
            SEG_CAP,
            SEG_CAP + 1,
            3 * SEG_CAP + 7,
        ] {
            let block: Vec<u64> = (0..len as u64).collect();
            let (mut tx, mut rx) = channel();
            tx.push(u64::MAX); // non-empty start: block begins mid-segment
            tx.push_block(&block);
            tx.push(u64::MAX - 1); // scalar pushes still work afterwards
            assert_eq!(tx.pushed(), len as u64 + 2);
            let got: Vec<u64> = rx.drain_visible().collect();
            assert_eq!(got.len(), len + 2);
            assert_eq!(got[0], u64::MAX);
            assert_eq!(&got[1..=len], &block[..]);
            assert_eq!(got[len + 1], u64::MAX - 1);
        }
    }

    #[test]
    fn pop_block_takes_everything_visible_and_appends() {
        let (mut tx, mut rx) = channel();
        let n = 2 * SEG_CAP + 3;
        let block: Vec<u64> = (0..n as u64).collect();
        tx.push_block(&block);
        let mut out = vec![999u64]; // pre-existing contents must survive
        assert_eq!(rx.pop_block(&mut out), n);
        assert_eq!(out[0], 999);
        assert_eq!(&out[1..], &block[..]);
        assert_eq!(rx.popped(), n as u64);
        // Nothing visible now; a second call is a cheap no-op.
        assert_eq!(rx.pop_block(&mut out), 0);
        tx.push(7);
        assert_eq!(rx.pop_block(&mut out), 1);
        assert_eq!(*out.last().unwrap(), 7);
    }

    #[test]
    fn block_endpoints_interoperate_with_scalar_endpoints() {
        let (mut tx, mut rx) = channel();
        tx.push_block(&[1u64, 2, 3]);
        assert_eq!(rx.try_pop(), Some(1));
        tx.push(4);
        let mut out = Vec::new();
        assert_eq!(rx.pop_block(&mut out), 3);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn concurrent_block_transfer_is_lossless_and_ordered() {
        const BLOCKS: u64 = 2_000;
        let width = SEG_CAP as u64 / 2 + 1; // co-prime-ish with SEG_CAP
        let (mut tx, mut rx) = channel();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut next = 0u64;
                for _ in 0..BLOCKS {
                    let block: Vec<u64> = (next..next + width).collect();
                    tx.push_block(&block);
                    next += width;
                }
            });
            s.spawn(move || {
                let mut out = Vec::new();
                loop {
                    let closed = rx.is_closed();
                    rx.pop_block(&mut out);
                    if closed {
                        break;
                    }
                    std::hint::spin_loop();
                }
                assert_eq!(out.len() as u64, BLOCKS * width);
                assert!(out.windows(2).all(|w| w[1] == w[0] + 1));
            });
        });
    }

    #[test]
    fn pop_block_then_drop_frees_remaining_elements_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        // Relaxed: single-threaded test, program order is enough.
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone, Copy)]
        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::Relaxed);
                Counted
            }
        }
        // Copy types get no drop glue, so account for pops explicitly: what
        // matters is that Shared::drop destroys only the unconsumed suffix.
        let (mut tx, mut rx) = channel();
        let block: Vec<Counted> = (0..SEG_CAP + 3).map(|_| Counted::new()).collect();
        tx.push_block(&block);
        let mut out = Vec::new();
        let taken = rx.pop_block(&mut out);
        assert_eq!(taken, SEG_CAP + 3);
        drop(tx);
        drop(rx);
        assert_eq!(LIVE.load(Ordering::Relaxed), SEG_CAP + 3);
    }

    #[test]
    fn close_then_drain_sees_every_element() {
        // The termination protocol used by the pipelined builder.
        for _ in 0..50 {
            let (mut tx, mut rx) = channel();
            let n = 1543u64;
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..n {
                        tx.push(i);
                    }
                });
                s.spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        let closed = rx.is_closed();
                        seen += rx.drain_visible().count() as u64;
                        if closed {
                            break;
                        }
                    }
                    assert_eq!(seen, n);
                });
            });
        }
    }
}
