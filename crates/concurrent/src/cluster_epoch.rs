//! Cluster-epoch publication: one Release store per *cluster* epoch, made
//! only once every shard has delivered its local epoch.
//!
//! The sharded serving tier (wfbn-cluster) runs `S` independent wfbn-serve
//! engines, each publishing its own local epochs through an
//! [`epoch_channel`](crate::epoch). A cross-shard query is only meaningful
//! against a *consistent cut*: shard 0's epoch-`e` table together with shard
//! 1's epoch-`e` table, never a mix of prefixes. This module is the
//! coordinator's half of that guarantee:
//!
//! * the coordinator (a single thread, the unique writer) collects each
//!   shard's epoch-`e` snapshot via [`ClusterPublisher::offer`]. Offers are
//!   staged in plain single-writer fields — no shared state is touched until
//!   the set is complete;
//! * when the `S`-th shard's snapshot for epoch `e` arrives, the assembled
//!   `Vec<Arc<T>>` (one entry per shard, index = shard id) is pushed into
//!   every reader lane and then — exactly once per cluster epoch — the shared
//!   cluster-epoch word is Release-stored.
//!
//! # Protocol and memory ordering
//!
//! The ordering argument is the same as [`epoch`](crate::epoch)'s, lifted one
//! level: lane pushes happen before the Release store of the cluster-epoch
//! word, so a reader that Acquire-loads the word
//! ([`ClusterReader::published`]) and observes cluster epoch `e` is
//! guaranteed that a subsequent [`ClusterReader::pin`] returns an epoch
//! `>= e` whose per-shard snapshots are all fully constructed — a reader can
//! never observe a cluster epoch with a missing or torn shard. The loom model
//! in `crates/concurrent/tests/loom.rs` (`cluster_epoch_publishes_complete_cuts`)
//! checks this under every interleaving of one coordinator and one reader.
//!
//! The "only once every shard has published" rule is structural, not checked
//! at runtime by readers: [`ClusterPublisher::offer`] simply cannot reach the
//! store until `staged == shards`. A shard that never publishes therefore
//! never advances the cluster epoch; the coordinator surfaces that as a
//! stalled epoch (see wfbn-cluster's starve-shard negative control) — the
//! primitive itself never spins.
//!
//! # Examples
//!
//! ```
//! use wfbn_concurrent::cluster_epoch_channel;
//!
//! let (mut publisher, mut readers) = cluster_epoch_channel::<u64>(2, 1);
//! assert_eq!(publisher.offer(0, 10.into()), None); // shard 1 still missing
//! assert_eq!(publisher.offer(1, 20.into()), Some(1));
//! let (epoch, cut) = readers[0].pin().expect("published");
//! assert_eq!(epoch, 1);
//! assert_eq!((*cut[0], *cut[1]), (10, 20));
//! ```

use crate::spsc::{channel, Consumer, Producer};
use crate::sync::{AtomicU64, Ordering};
use std::sync::Arc;

/// A published cluster cut: one snapshot per shard, indexed by shard id.
pub type ClusterCut<T> = Arc<Vec<Arc<T>>>;

/// The coordinator's (single-writer) endpoint; see the [module docs](self).
///
/// `offer` is wait-free: staging is a plain slot write; the completing offer
/// additionally does one lane push per reader and a single Release store.
pub struct ClusterPublisher<T> {
    staging: Vec<Option<Arc<T>>>,
    staged: usize,
    lanes: Vec<Producer<(u64, ClusterCut<T>)>>,
    shared: Arc<AtomicU64>,
    epoch: u64,
    current: Option<ClusterCut<T>>,
}

/// One reader's endpoint; see the [module docs](self).
///
/// `pin` is wait-free: it drains the private lane (bounded by the number of
/// cluster epochs published since the last pin) and keeps the newest.
pub struct ClusterReader<T> {
    lane: Consumer<(u64, ClusterCut<T>)>,
    shared: Arc<AtomicU64>,
    pinned_epoch: u64,
    pinned: Option<ClusterCut<T>>,
}

/// Creates a cluster-epoch channel assembling cuts over `shards` shards with
/// `readers` reader endpoints.
///
/// Cluster epoch 0 means "no complete cut yet"; the first complete offer set
/// publishes cluster epoch 1.
///
/// # Panics
///
/// Panics if `shards` is zero — an empty cut can never complete.
pub fn cluster_epoch_channel<T>(
    shards: usize,
    readers: usize,
) -> (ClusterPublisher<T>, Vec<ClusterReader<T>>) {
    assert!(shards > 0, "a cluster needs at least one shard");
    let shared = Arc::new(AtomicU64::new(0));
    let mut lanes = Vec::with_capacity(readers);
    let mut ends = Vec::with_capacity(readers);
    for _ in 0..readers {
        let (tx, rx) = channel();
        lanes.push(tx);
        ends.push(ClusterReader {
            lane: rx,
            shared: Arc::clone(&shared),
            pinned_epoch: 0,
            pinned: None,
        });
    }
    (
        ClusterPublisher {
            staging: (0..shards).map(|_| None).collect(),
            staged: 0,
            lanes,
            shared,
            epoch: 0,
            current: None,
        },
        ends,
    )
}

impl<T> ClusterPublisher<T> {
    /// Stages shard `shard`'s snapshot for the cluster epoch being assembled
    /// (`published() + 1`). Returns the new cluster epoch if this offer
    /// completed the cut, `None` while shards are still missing.
    ///
    /// Offers must arrive in local-epoch order, one per shard per cluster
    /// epoch — the coordinator consumes each shard's lane sequentially
    /// (`EpochReader::next_epoch`), which guarantees exactly that.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or has already offered a snapshot
    /// for the in-flight epoch (a protocol violation by the coordinator).
    pub fn offer(&mut self, shard: usize, value: Arc<T>) -> Option<u64> {
        let slot = &mut self.staging[shard];
        assert!(
            slot.is_none(),
            "shard {shard} offered twice for cluster epoch {}",
            self.epoch + 1
        );
        *slot = Some(value);
        self.staged += 1;
        if self.staged < self.staging.len() {
            return None;
        }
        // Every shard has delivered its local epoch: assemble the cut and
        // publish it — the only path to the Release store below.
        let cut: ClusterCut<T> = Arc::new(
            self.staging
                .iter_mut()
                .map(|slot| slot.take().expect("cut is complete"))
                .collect(),
        );
        self.staged = 0;
        self.epoch += 1;
        for lane in &mut self.lanes {
            lane.push((self.epoch, Arc::clone(&cut)));
        }
        // The cluster-epoch word is single-writer: only the coordinator
        // ever stores it.
        #[cfg(feature = "ownership-audit")]
        crate::audit::record_write(
            Arc::as_ptr(&self.shared).cast::<u8>(),
            core::mem::size_of::<u64>(),
        );
        // Release: pairs with the readers' Acquire load in `published`;
        // every lane push above (and every per-shard snapshot inside the
        // cut) is visible to a reader that sees this cluster epoch.
        // hb-writer: coordinator
        // loom-model: cluster_epoch_publishes_complete_cuts
        self.shared.store(self.epoch, Ordering::Release);
        self.current = Some(cut);
        Some(self.epoch)
    }

    /// The most recently published cluster epoch (0 if none yet).
    pub fn published(&self) -> u64 {
        self.epoch
    }

    /// The most recently published cut, if any (the coordinator's own
    /// handle; readers get theirs through their lanes).
    pub fn latest(&self) -> Option<&ClusterCut<T>> {
        self.current.as_ref()
    }

    /// Number of shards a cut assembles over.
    pub fn shards(&self) -> usize {
        self.staging.len()
    }

    /// Number of reader lanes this publisher feeds.
    pub fn readers(&self) -> usize {
        self.lanes.len()
    }

    /// `true` if `shard` has already staged a snapshot for the in-flight
    /// cluster epoch. The coordinator polls this before consuming more of a
    /// shard's local-epoch lane, so a fast shard can never overwrite (or
    /// double-offer into) a cut still waiting on a slow one.
    pub fn offered(&self, shard: usize) -> bool {
        self.staging[shard].is_some()
    }

    /// Number of shards staged for the in-flight cluster epoch (0 right
    /// after a publication).
    pub fn staged(&self) -> usize {
        self.staged
    }

    /// The lowest shard id that has *not* yet offered a snapshot for the
    /// in-flight cluster epoch, or `None` if nothing is pending (the cut
    /// just published, or no offers arrived yet and none are missing —
    /// i.e. never, since a fresh cut is missing shard 0).
    ///
    /// This is what the coordinator reports when a cluster epoch stalls:
    /// "waiting on shard `s` for epoch `published() + 1`".
    pub fn waiting_on(&self) -> Option<usize> {
        self.staging.iter().position(Option::is_none)
    }
}

impl<T> ClusterReader<T> {
    /// The newest cluster epoch the coordinator has made visible (Acquire).
    ///
    /// After this returns `e`, [`pin`](Self::pin) is guaranteed to return an
    /// epoch `>= e` — the module-level happens-before argument.
    pub fn published(&self) -> u64 {
        // loom-model: cluster_epoch_publishes_complete_cuts,next_epoch_walks_the_sequence_without_skipping
        self.shared.load(Ordering::Acquire)
    }

    /// Advances to the newest published cluster cut and returns it with its
    /// epoch; `None` until the first complete cut reaches this lane.
    ///
    /// The returned epoch never decreases across calls, and the cut (every
    /// per-shard snapshot in it) stays valid and immutable until the next
    /// `pin`.
    pub fn pin(&mut self) -> Option<(u64, &ClusterCut<T>)> {
        // wf-bound: backlog(lane) — each iteration pops one cluster epoch
        // already committed to the SPSC lane; the coordinator pushes at most
        // one per completed cut, so the drain is bounded by the backlog at
        // entry.
        while let Some((epoch, cut)) = self.lane.try_pop() {
            debug_assert!(epoch > self.pinned_epoch, "cluster epochs arrive in order");
            self.pinned_epoch = epoch;
            self.pinned = Some(cut);
        }
        self.pinned.as_ref().map(|cut| (self.pinned_epoch, cut))
    }

    /// The cluster epoch currently pinned (0 before the first successful
    /// [`pin`](Self::pin)).
    pub fn pinned_epoch(&self) -> u64 {
        self.pinned_epoch
    }

    /// The currently pinned cut without advancing (None before the first
    /// successful [`pin`](Self::pin)).
    pub fn pinned(&self) -> Option<&ClusterCut<T>> {
        self.pinned.as_ref()
    }

    /// `true` once the coordinator endpoint has been dropped; combined with
    /// a final [`pin`](Self::pin), the reader then holds the last cluster
    /// epoch there will ever be.
    pub fn is_closed(&self) -> bool {
        self.lane.is_closed()
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn publishes_only_complete_cuts() {
        let (mut publisher, mut readers) = cluster_epoch_channel::<u64>(3, 2);
        assert_eq!(publisher.shards(), 3);
        assert_eq!(publisher.readers(), 2);
        assert_eq!(publisher.waiting_on(), Some(0));
        assert_eq!(publisher.offer(1, 11.into()), None);
        assert_eq!(publisher.waiting_on(), Some(0));
        assert_eq!(publisher.offer(0, 10.into()), None);
        assert_eq!(publisher.waiting_on(), Some(2));
        for r in &mut readers {
            assert_eq!(r.published(), 0, "no cut before the last shard");
            assert!(r.pin().is_none());
        }
        assert_eq!(publisher.offer(2, 12.into()), Some(1));
        assert_eq!(publisher.published(), 1);
        assert_eq!(publisher.waiting_on(), Some(0), "next cut starts empty");
        for r in &mut readers {
            assert_eq!(r.published(), 1);
            let (epoch, cut) = r.pin().expect("complete cut published");
            assert_eq!(epoch, 1);
            let values: Vec<u64> = cut.iter().map(|s| **s).collect();
            assert_eq!(values, [10, 11, 12], "cut is indexed by shard id");
        }
    }

    #[test]
    #[should_panic(expected = "offered twice")]
    fn double_offer_is_a_protocol_violation() {
        let (mut publisher, _readers) = cluster_epoch_channel::<u64>(2, 1);
        publisher.offer(0, 1.into());
        publisher.offer(0, 2.into());
    }

    #[test]
    fn pin_drains_to_newest_cut_and_reclaims_old_ones() {
        let (mut publisher, mut readers) = cluster_epoch_channel::<u64>(1, 1);
        assert_eq!(publisher.offer(0, 1.into()), Some(1));
        let held = Arc::clone(readers[0].pin().unwrap().1);
        for v in 2..=4u64 {
            assert_eq!(publisher.offer(0, v.into()), Some(v));
        }
        let (epoch, cut) = readers[0].pin().unwrap();
        assert_eq!((epoch, *cut[0]), (4, 4));
        assert_eq!(readers[0].pinned_epoch(), 4);
        assert_eq!(Arc::strong_count(&held), 1, "cut 1 fully released");
    }

    #[test]
    fn closed_coordinator_leaves_last_cut_pinnable() {
        let (mut publisher, mut readers) = cluster_epoch_channel::<u64>(2, 1);
        publisher.offer(0, 5.into());
        publisher.offer(1, 6.into());
        drop(publisher);
        let r = &mut readers[0];
        assert!(r.is_closed());
        let (epoch, cut) = r.pin().expect("published before close");
        assert_eq!(epoch, 1);
        assert_eq!((*cut[0], *cut[1]), (5, 6));
        assert_eq!(r.pinned().map(|c| c.len()), Some(2));
    }

    #[test]
    fn concurrent_readers_only_see_complete_cuts() {
        // Stress (non-loom) version of the publication invariant: cluster
        // epoch `e` carries the value `e` on every shard, so any torn or
        // partial observation would fail the per-shard check.
        const EPOCHS: u64 = 1_000;
        const SHARDS: usize = 4;
        const READERS: usize = 3;
        let (mut publisher, readers) = cluster_epoch_channel::<u64>(SHARDS, READERS);
        std::thread::scope(|s| {
            for mut r in readers {
                s.spawn(move || {
                    let mut last = 0u64;
                    loop {
                        let observed = r.published();
                        let closed = r.is_closed();
                        if let Some((epoch, cut)) = r.pin() {
                            assert!(epoch >= observed, "pin lagged a visible epoch");
                            assert!(epoch >= last, "cluster epoch went backwards");
                            assert_eq!(cut.len(), SHARDS, "cut missing a shard");
                            for shard in cut.iter() {
                                assert_eq!(**shard, epoch, "torn cut");
                            }
                            last = epoch;
                        }
                        if closed {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    assert_eq!(r.pin().unwrap().0, EPOCHS);
                });
            }
            s.spawn(move || {
                for e in 1..=EPOCHS {
                    for shard in 0..SHARDS {
                        let published = publisher.offer(shard, e.into());
                        if shard + 1 < SHARDS {
                            assert_eq!(published, None);
                        } else {
                            assert_eq!(published, Some(e));
                        }
                    }
                }
            });
        });
    }
}
