//! Static work partitioning.
//!
//! Two splits appear in the paper:
//!
//! * Algorithm 1 splits the `m` training rows into `P` contiguous chunks
//!   ([`row_chunks`]). Contiguity matters: each thread then streams its chunk
//!   with perfect spatial locality.
//! * Algorithm 4 deals pairs `(i, j)`, `i < j`, round-robin over the `P`
//!   cores with stride `P` ([`pairs_for_thread`]). Strided dealing balances
//!   the triangular iteration space without a shared work counter.

/// A half-open row range `[start, end)` assigned to one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowChunk {
    /// First row (inclusive).
    pub start: usize,
    /// One past the last row.
    pub end: usize,
}

impl RowChunk {
    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the chunk contains no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `m` rows into `p` contiguous chunks whose sizes differ by at most 1.
///
/// The first `m % p` chunks get the extra row, so no trailing thread is left
/// with a pathologically small or large share.
///
/// # Panics
///
/// Panics if `p == 0`.
///
/// # Examples
///
/// ```
/// use wfbn_concurrent::row_chunks;
/// let chunks = row_chunks(10, 4);
/// assert_eq!(chunks.len(), 4);
/// assert_eq!(chunks.iter().map(|c| c.len()).collect::<Vec<_>>(), [3, 3, 2, 2]);
/// assert_eq!(chunks[0].start, 0);
/// assert_eq!(chunks[3].end, 10);
/// ```
pub fn row_chunks(m: usize, p: usize) -> Vec<RowChunk> {
    assert!(p > 0, "cannot partition over zero threads");
    let base = m / p;
    let extra = m % p;
    let mut chunks = Vec::with_capacity(p);
    let mut start = 0;
    for t in 0..p {
        let len = base + usize::from(t < extra);
        chunks.push(RowChunk {
            start,
            end: start + len,
        });
        start += len;
    }
    debug_assert_eq!(start, m);
    chunks
}

/// Number of unordered pairs over `n` items: `n·(n−1)/2`.
pub fn pair_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// The unordered pairs `(i, j)`, `i < j < n`, assigned to thread `t` of `p`
/// by strided (round-robin) dealing, in deterministic order.
///
/// The union over all `t` is exactly the set of all pairs, with no overlap.
///
/// # Panics
///
/// Panics if `p == 0` or `t >= p`.
///
/// # Examples
///
/// ```
/// use wfbn_concurrent::{pair_count, pairs_for_thread};
/// let all: usize = (0..3).map(|t| pairs_for_thread(5, t, 3).len()).sum();
/// assert_eq!(all, pair_count(5));
/// ```
pub fn pairs_for_thread(n: usize, t: usize, p: usize) -> Vec<(usize, usize)> {
    assert!(p > 0, "cannot partition over zero threads");
    assert!(t < p, "thread index {t} out of range for {p} threads");
    let mut pairs = Vec::new();
    let mut flat = t;
    let total = pair_count(n);
    while flat < total {
        pairs.push(unflatten_pair(flat, n));
        flat += p;
    }
    pairs
}

/// Maps a flat index in `[0, n(n-1)/2)` to the pair `(i, j)`, `i < j`, in
/// row-major order of the strict upper triangle.
fn unflatten_pair(flat: usize, n: usize) -> (usize, usize) {
    // Row i contributes (n - 1 - i) pairs; walk rows until flat fits.
    let mut i = 0;
    let mut remaining = flat;
    loop {
        let row = n - 1 - i;
        if remaining < row {
            return (i, i + 1 + remaining);
        }
        remaining -= row;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn chunks_cover_exactly_once() {
        for m in [0usize, 1, 7, 100, 101] {
            for p in [1usize, 2, 3, 8, 32] {
                let chunks = row_chunks(m, p);
                assert_eq!(chunks.len(), p);
                let mut pos = 0;
                for c in &chunks {
                    assert_eq!(c.start, pos);
                    pos = c.end;
                }
                assert_eq!(pos, m);
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        for m in [5usize, 64, 1000, 1001, 1023] {
            for p in [1usize, 3, 7, 16] {
                let sizes: Vec<usize> = row_chunks(m, p).iter().map(RowChunk::len).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "m={m} p={p} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn more_threads_than_rows_gives_empty_chunks() {
        let chunks = row_chunks(2, 5);
        assert_eq!(chunks.iter().filter(|c| !c.is_empty()).count(), 2);
        assert_eq!(chunks.iter().map(RowChunk::len).sum::<usize>(), 2);
    }

    #[test]
    #[should_panic(expected = "zero threads")]
    fn zero_threads_panics() {
        let _ = row_chunks(10, 0);
    }

    #[test]
    fn pair_dealing_is_a_partition() {
        for n in [0usize, 1, 2, 5, 10, 30] {
            for p in [1usize, 2, 3, 7] {
                let mut seen = HashSet::new();
                for t in 0..p {
                    for pair in pairs_for_thread(n, t, p) {
                        assert!(pair.0 < pair.1 && pair.1 < n);
                        assert!(seen.insert(pair), "duplicate pair {pair:?}");
                    }
                }
                assert_eq!(seen.len(), pair_count(n), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn pair_dealing_is_balanced() {
        let n = 50;
        let p = 8;
        let sizes: Vec<usize> = (0..p).map(|t| pairs_for_thread(n, t, p).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes={sizes:?}");
    }

    #[test]
    fn unflatten_matches_enumeration() {
        let n = 9;
        let mut flat = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(unflatten_pair(flat, n), (i, j));
                flat += 1;
            }
        }
        assert_eq!(flat, pair_count(n));
    }
}
