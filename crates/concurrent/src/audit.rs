//! Runtime auditor for the single-writer ownership discipline
//! (`--features ownership-audit`).
//!
//! The paper's construction primitive is race-free by *design*, not by
//! locking: within each stage every word of shared memory — count-table
//! slots, queue segment slots — has exactly one writing core. Nothing in the
//! type system enforces that discipline; a refactor could silently hand two
//! cores the same partition and the tests would still pass most of the time.
//!
//! This module makes the discipline checkable. Instrumented writers report
//! every write as a `(word range, stage, writer core)` triple into a shadow
//! map shared by all threads of one build. The auditor panics the moment any
//! word is written by two distinct cores in the same stage — turning a
//! probabilistic data race into a deterministic failure with a precise
//! culprit.
//!
//! # Protocol
//!
//! 1. The orchestrator creates one [`BuildAudit`] per build.
//! 2. Each worker calls [`enter`] with its core index; the returned guard
//!    keeps the thread-local context installed for the worker's lifetime.
//! 3. Workers call [`set_stage`] when they cross a stage boundary (the
//!    barrier).
//! 4. Instrumented data structures call [`record_write`] on every shared-word
//!    write and [`retire_range`] when an allocation is freed or recycled (so
//!    allocator address reuse cannot produce false conflicts).
//!
//! Threads that never call [`enter`] pay nothing and record nothing, so
//! un-instrumented tests are unaffected even when the feature is on.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Stage identifier; the two-stage primitive uses 1 and 2.
pub type Stage = u8;

/// Last-writer record per 8-byte word address.
type Shadow = HashMap<usize, (Stage, usize)>;

/// Shadow map shared by every worker of one construction run.
///
/// Cloning is cheap (an `Arc` bump); give each worker thread a clone and let
/// it [`enter`].
#[derive(Clone, Debug, Default)]
pub struct BuildAudit {
    shadow: Arc<Mutex<Shadow>>,
}

impl BuildAudit {
    /// Creates an empty shadow map for one build.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct words recorded so far (diagnostic).
    pub fn words_recorded(&self) -> usize {
        lock(&self.shadow).len()
    }
}

struct Ctx {
    shadow: Arc<Mutex<Shadow>>,
    core: usize,
    stage: Stage,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn lock(m: &Mutex<Shadow>) -> std::sync::MutexGuard<'_, Shadow> {
    // A panic in one worker (e.g. a reported conflict) must not cascade into
    // opaque poison errors on the others.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `audit` as this thread's recorder, acting as core `core`,
/// starting in stage 1. Recording stops when the returned guard drops.
#[must_use = "dropping the guard immediately uninstalls the audit context"]
pub fn enter(audit: &BuildAudit, core: usize) -> CoreGuard {
    CTX.with(|c| {
        let prev = c.borrow_mut().replace(Ctx {
            shadow: Arc::clone(&audit.shadow),
            core,
            stage: 1,
        });
        assert!(
            prev.is_none(),
            "audit::enter called twice on one thread without dropping the guard"
        );
    });
    CoreGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// Uninstalls the thread's audit context on drop (returned by [`enter`]).
pub struct CoreGuard {
    /// The guard must drop on the thread that entered.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for CoreGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.borrow_mut().take());
    }
}

/// Marks the calling worker as having crossed into `stage`. No-op on
/// un-entered threads.
pub fn set_stage(stage: Stage) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.stage = stage;
        }
    });
}

/// Reports a write of `bytes` bytes at `ptr` by the calling worker.
///
/// No-op on un-entered threads. Word granularity is 8 bytes: two cores
/// writing distinct bytes of one word is still a violation (and on real
/// hardware, still a race on the containing cache word).
///
/// # Panics
///
/// Panics if any touched word was already written by a *different* core in
/// the *same* stage of this build.
pub fn record_write(ptr: *const u8, bytes: usize) {
    if bytes == 0 {
        return;
    }
    CTX.with(|c| {
        let borrow = c.borrow();
        let Some(ctx) = borrow.as_ref() else { return };
        let start = (ptr as usize) & !7;
        let end = ptr as usize + bytes;
        let mut shadow = lock(&ctx.shadow);
        let mut word = start;
        while word < end {
            match shadow.insert(word, (ctx.stage, ctx.core)) {
                Some((stage, core)) if stage == ctx.stage && core != ctx.core => {
                    panic!(
                        "single-writer violation: word {word:#x} written by core {core} \
                         and core {} in stage {stage}",
                        ctx.core
                    );
                }
                _ => {}
            }
            word += 8;
        }
    });
}

/// Forgets every record overlapping `[ptr, ptr + bytes)`.
///
/// Call when an audited allocation is freed or handed back to the allocator
/// (table growth, queue segment reclamation): a later allocation may reuse
/// the address range for memory owned by a different core, which must not be
/// mistaken for a conflict. No-op on un-entered threads.
pub fn retire_range(ptr: *const u8, bytes: usize) {
    if bytes == 0 {
        return;
    }
    CTX.with(|c| {
        let borrow = c.borrow();
        let Some(ctx) = borrow.as_ref() else { return };
        let start = (ptr as usize) & !7;
        let end = ptr as usize + bytes;
        let mut shadow = lock(&ctx.shadow);
        let mut word = start;
        while word < end {
            shadow.remove(&word);
            word += 8;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_as(audit: &BuildAudit, core: usize, stage: Stage, ptr: *const u8, bytes: usize) {
        let _g = enter(audit, core);
        set_stage(stage);
        record_write(ptr, bytes);
    }

    #[test]
    fn same_core_may_rewrite_its_words() {
        let audit = BuildAudit::new();
        let word = 0u64;
        let p = (&raw const word).cast::<u8>();
        write_as(&audit, 0, 1, p, 8);
        write_as(&audit, 0, 1, p, 8);
        assert_eq!(audit.words_recorded(), 1);
    }

    #[test]
    fn different_stages_may_hand_a_word_over() {
        // Stage 2 of the primitive drains keys into words that the *owner*
        // wrote in stage 1; cross-stage handover is legal by design.
        let audit = BuildAudit::new();
        let word = 0u64;
        let p = (&raw const word).cast::<u8>();
        write_as(&audit, 0, 1, p, 8);
        write_as(&audit, 1, 2, p, 8);
    }

    #[test]
    fn two_cores_same_stage_same_word_panics() {
        let audit = BuildAudit::new();
        let word = 0u64;
        let p = (&raw const word).cast::<u8>();
        write_as(&audit, 0, 1, p, 8);
        let err = std::panic::catch_unwind(|| write_as(&audit, 1, 1, p, 8))
            .expect_err("conflict must panic");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("single-writer violation"), "{msg}");
    }

    #[test]
    fn sub_word_writes_conflict_on_the_containing_word() {
        let audit = BuildAudit::new();
        let word = [0u8; 8];
        write_as(&audit, 0, 1, word.as_ptr(), 1);
        // SAFETY: index 7 is in bounds of the 8-byte array.
        let last_byte = unsafe { word.as_ptr().add(7) };
        let err = std::panic::catch_unwind(|| write_as(&audit, 1, 1, last_byte, 1))
            .expect_err("bytes of one word share ownership");
        drop(err);
    }

    #[test]
    fn retired_ranges_can_be_reclaimed_by_another_core() {
        let audit = BuildAudit::new();
        let words = [0u64; 4];
        let p = words.as_ptr().cast::<u8>();
        write_as(&audit, 0, 1, p, 32);
        {
            let _g = enter(&audit, 0);
            retire_range(p, 32);
        }
        // Same addresses, same stage, different core: legal after retirement
        // (models allocator reuse).
        write_as(&audit, 1, 1, p, 32);
    }

    #[test]
    fn unentered_threads_record_nothing() {
        let audit = BuildAudit::new();
        let word = 0u64;
        record_write((&raw const word).cast(), 8);
        assert_eq!(audit.words_recorded(), 0);
    }
}
