//! A sense-reversing spin barrier.
//!
//! The wait-free construction primitive needs exactly one synchronization
//! step: between stage 1 (classify + forward keys) and stage 2 (drain foreign
//! queues). [`std::sync::Barrier`] works, but parks threads through a mutex
//! and condition variable; for the short rendezvous between two compute-bound
//! stages a spinning barrier keeps cores hot. The implementation spins with
//! [`core::hint::spin_loop`] for a bounded number of iterations, then yields
//! to the OS so that oversubscribed configurations (more threads than cores —
//! the situation on small CI machines) still make progress.

use crate::pad::CachePadded;
use crate::sync::{AtomicBool, AtomicUsize, Ordering};

/// How many busy-wait iterations to perform before yielding to the scheduler.
const SPINS_BEFORE_YIELD: u32 = 1 << 10;

/// A reusable sense-reversing barrier for a fixed set of `n` threads.
///
/// Unlike a counter-reset barrier, the sense-reversing design is safe for
/// *reuse*: a thread that races ahead into the next `wait` cannot observe a
/// stale "generation complete" signal, because the sense flips each round.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use wfbn_concurrent::SpinBarrier;
///
/// let barrier = SpinBarrier::new(4);
/// let hits = AtomicUsize::new(0);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             hits.fetch_add(1, Ordering::Relaxed);
///             barrier.wait();
///             // All four increments happened-before every thread passes.
///             assert_eq!(hits.load(Ordering::Relaxed), 4);
///         });
///     }
/// });
/// ```
/// `repr(C)` so declared order is stored order (the false-sharing table in
/// `analysis/layout.toml` reasons about byte offsets). `remaining` takes a
/// fetch_sub from *every* arriver while `sense` is spun on by every waiter;
/// padding them apart keeps each arrival from invalidating the line every
/// other thread is polling.
#[derive(Debug)]
#[repr(C)]
pub struct SpinBarrier {
    n: usize,
    remaining: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicBool>,
}

impl SpinBarrier {
    /// Creates a barrier for `n` participating threads.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        Self {
            n,
            remaining: CachePadded::new(AtomicUsize::new(n)),
            sense: CachePadded::new(AtomicBool::new(false)),
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` threads have called `wait` in this round.
    ///
    /// Returns `true` on exactly one thread per round (the last arriver),
    /// mirroring [`std::sync::BarrierWaitResult::is_leader`].
    pub fn wait(&self) -> bool {
        // loom-model: barrier_reuse_across_generations
        let my_sense = !self.sense.load(Ordering::Relaxed);
        // AcqRel: releases this thread's pre-barrier writes and acquires the
        // writes of threads that arrived earlier.
        // hb-writer: arriver
        // loom-model: barrier_reuse_across_generations
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: reset the counter for the next round, then flip
            // the sense (Release publishes the reset together with every
            // participant's pre-barrier writes).
            // loom-model: barrier_reuse_across_generations
            self.remaining.store(self.n, Ordering::Relaxed);
            // hb-writer: leader
            // loom-model: barrier_reuse_across_generations
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            // wf-bound: rendezvous(P) — exits when the last of the P
            // participants arrives and the leader flips the sense; the
            // paper admits exactly one such rendezvous per build.
            // loom-model: barrier_reuse_across_generations
            while self.sense.load(Ordering::Acquire) != my_sense {
                if spins < SPINS_BEFORE_YIELD {
                    crate::sync::hint::spin_loop();
                    spins += 1;
                } else {
                    crate::sync::thread::yield_now();
                }
            }
            false
        }
    }
}

/// Rustc's own layout of [`SpinBarrier`] for cross-checking the conservative
/// estimator in `wfbn-analyze` (crates/analyze/tests/layout_check.rs).
#[doc(hidden)]
#[cfg(not(feature = "loom"))]
pub fn layout_probes() -> Vec<crate::pad::LayoutProbe> {
    use core::mem::{offset_of, size_of};
    vec![(
        "SpinBarrier",
        size_of::<SpinBarrier>(),
        vec![
            ("n", offset_of!(SpinBarrier, n)),
            ("remaining", offset_of!(SpinBarrier, remaining)),
            ("sense", offset_of!(SpinBarrier, sense)),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_is_always_leader() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = SpinBarrier::new(0);
    }

    #[test]
    fn exactly_one_leader_per_round() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 50;
        let b = SpinBarrier::new(THREADS);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS);
    }

    #[test]
    fn orders_cross_thread_writes() {
        // Stage-1 writes by every thread must be visible to every thread in
        // stage 2 — the exact guarantee construction relies on.
        const THREADS: usize = 4;
        let b = SpinBarrier::new(THREADS);
        let cells: Vec<AtomicU64> = (0..THREADS).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let cells = &cells;
                let b = &b;
                s.spawn(move || {
                    cells[t].store(t as u64 + 1, Ordering::Relaxed);
                    b.wait();
                    let sum: u64 = cells.iter().map(|c| c.load(Ordering::Relaxed)).sum();
                    assert_eq!(sum, (1..=THREADS as u64).sum());
                });
            }
        });
    }

    #[test]
    fn reusable_across_many_rounds() {
        const THREADS: usize = 3;
        let b = SpinBarrier::new(THREADS);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for round in 0..100 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        // After each round, the count is an exact multiple.
                        let c = counter.load(Ordering::Relaxed);
                        assert!(c >= (round + 1) * THREADS);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100 * THREADS);
    }
}
