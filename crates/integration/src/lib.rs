//! Host package for the repository-root `tests/` integration tests.
