//! The [`Recorder`] abstraction: what the instrumented hot paths talk to.
//!
//! The construction and marginalization primitives are generic over a
//! `Recorder`. Each worker thread asks the recorder for a per-core
//! [`CoreRecorder`] handle once, at spawn, and then reports events only
//! through that handle — so the single-writer discipline the primitives
//! already obey for table and queue words extends to the telemetry words
//! too. The default [`NoopRecorder`] compiles to nothing: every method is an
//! empty `#[inline(always)]` body, and because the builders are
//! monomorphized per recorder type, the no-op instantiation is
//! instruction-for-instruction the uninstrumented loop.

/// Pipeline stages whose wall time is attributed separately.
///
/// These are exactly the phases the paper's cost model distinguishes:
/// stage-1 encode/route (Algorithm 1), the barrier wait, stage-2 drain
/// (Algorithm 2), and marginalization (Algorithms 3/4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Stage 1: encode rows and route keys (local update or forward).
    Encode = 0,
    /// Waiting at the inter-stage barrier.
    Barrier = 1,
    /// Stage 2: drain foreign queues and apply keys.
    Drain = 2,
    /// Marginalization / all-pairs MI scanning.
    Marginal = 3,
    /// Serving-layer query answering (pin, cache lookups, fused scans).
    Query = 4,
}

/// Number of [`Stage`] variants (array dimension).
pub const NUM_STAGES: usize = 5;

impl Stage {
    /// All stages, in index order.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::Encode,
        Stage::Barrier,
        Stage::Drain,
        Stage::Marginal,
        Stage::Query,
    ];

    /// Stable JSON/report key for the stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Encode => "stage1_encode_route",
            Stage::Barrier => "barrier_wait",
            Stage::Drain => "stage2_drain",
            Stage::Marginal => "marginalize",
            Stage::Query => "query_serve",
        }
    }
}

/// Monotonic event counters, one slot per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Rows encoded in stage 1.
    RowsEncoded = 0,
    /// Keys applied to the core's own partition in stage 1.
    LocalUpdates = 1,
    /// Keys forwarded to another core's queue.
    Forwarded = 2,
    /// Keys drained from foreign queues and applied.
    Drained = 3,
    /// Hash-table slot probes (stages 1 + 2).
    Probes = 4,
    /// Count-table growth (rehash) events.
    TableGrows = 5,
    /// SPSC queue segments linked by this core's producers.
    SegmentsLinked = 6,
    /// Variable pairs this core evaluated (Algorithm 4).
    PairsScanned = 7,
    /// Potential-table entries this core scanned during marginalization.
    EntriesScanned = 8,
    /// Entries moved between partitions by a rebalance pass (§IV-C).
    RebalanceMoves = 9,
    /// Write-combining buffer flushes: `push_block` calls made by this
    /// core's batched stage-1 router (zero on every scalar path).
    BlocksFlushed = 10,
    /// Foreign key occurrences absorbed into an open `(key, count)` run by
    /// the per-destination combiner instead of being shipped as their own
    /// queue element. `Forwarded` still counts these occurrences, so
    /// elements actually enqueued = `forwarded − keys_coalesced`.
    KeysCoalesced = 11,
    /// Queries this core (a serving reader) answered.
    QueriesServed = 12,
    /// Serving-cache lookups answered from the reader's scope-keyed
    /// marginal cache.
    CacheHits = 13,
    /// Serving-cache lookups that missed and required a partition scan.
    CacheMisses = 14,
    /// Table snapshots this core (the serving writer) published as epochs.
    EpochsPublished = 15,
    /// Epoch advances this core (a serving reader) pinned — distinct epochs
    /// observed, not query count.
    EpochsPinned = 16,
    /// Cluster ingest batches this core (the cluster router) admitted and
    /// split across shards.
    BatchesRouted = 17,
    /// Per-shard sub-batches this core (the cluster router) forwarded to
    /// shard engines. One admitted batch fans out to exactly one sub-batch
    /// per shard (empty sub-batches included — they keep shard epochs
    /// aligned), so `shard_batches_routed = batches_routed × S`.
    ShardBatchesRouted = 18,
    /// Cross-shard query fan-outs this core (a cluster client) issued: one
    /// per answered batch that missed the merged-marginal cache and had to
    /// scan every shard of the pinned cluster cut.
    QueryFanOuts = 19,
    /// Per-shard partial marginals this core (a cluster client) merged into
    /// cross-shard answers — `S` partials per scope per fan-out.
    PartialMerges = 20,
    /// Cluster cuts this core (the cluster coordinator) assembled and
    /// published as cluster epochs.
    ClusterEpochsPublished = 21,
}

/// Number of [`Counter`] variants (array dimension).
pub const NUM_COUNTERS: usize = 22;

impl Counter {
    /// All counters, in index order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::RowsEncoded,
        Counter::LocalUpdates,
        Counter::Forwarded,
        Counter::Drained,
        Counter::Probes,
        Counter::TableGrows,
        Counter::SegmentsLinked,
        Counter::PairsScanned,
        Counter::EntriesScanned,
        Counter::RebalanceMoves,
        Counter::BlocksFlushed,
        Counter::KeysCoalesced,
        Counter::QueriesServed,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::EpochsPublished,
        Counter::EpochsPinned,
        Counter::BatchesRouted,
        Counter::ShardBatchesRouted,
        Counter::QueryFanOuts,
        Counter::PartialMerges,
        Counter::ClusterEpochsPublished,
    ];

    /// Stable JSON/report key for the counter.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RowsEncoded => "rows_encoded",
            Counter::LocalUpdates => "local_updates",
            Counter::Forwarded => "forwarded",
            Counter::Drained => "drained",
            Counter::Probes => "probes",
            Counter::TableGrows => "table_grows",
            Counter::SegmentsLinked => "segments_linked",
            Counter::PairsScanned => "pairs_scanned",
            Counter::EntriesScanned => "entries_scanned",
            Counter::RebalanceMoves => "rebalance_moves",
            Counter::BlocksFlushed => "blocks_flushed",
            Counter::KeysCoalesced => "keys_coalesced",
            Counter::QueriesServed => "queries_served",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::EpochsPublished => "epochs_published",
            Counter::EpochsPinned => "epochs_pinned",
            Counter::BatchesRouted => "batches_routed",
            Counter::ShardBatchesRouted => "shard_batches_routed",
            Counter::QueryFanOuts => "query_fan_outs",
            Counter::PartialMerges => "partial_merges",
            Counter::ClusterEpochsPublished => "cluster_epochs_published",
        }
    }
}

/// Number of probe-length histogram buckets: lengths 1, 2, 3, 4, 5–8, 9–16,
/// 17–32, and >32 slots.
pub const PROBE_BUCKETS: usize = 8;

/// Maps an increment's probe count to its histogram bucket.
#[inline]
pub fn probe_bucket(probes: u64) -> usize {
    match probes {
        0..=4 => (probes as usize).saturating_sub(1),
        5..=8 => 4,
        9..=16 => 5,
        17..=32 => 6,
        _ => 7,
    }
}

/// Human-readable bucket labels, index-aligned with the histogram arrays.
pub const PROBE_BUCKET_LABELS: [&str; PROBE_BUCKETS] =
    ["1", "2", "3", "4", "5-8", "9-16", "17-32", ">32"];

/// Number of query-latency histogram buckets (v4: 16 power-of-two buckets
/// from 250 ns, fine enough for p99/p999 upper-bound estimates).
pub const LAT_BUCKETS: usize = 16;

/// Maps a query's wall latency in nanoseconds to its histogram bucket:
/// `<250ns`, then power-of-two ranges up to `[2,4)` ms, and `>=4ms`. The v3
/// schema's 8 power-of-four buckets were too coarse to bound a p99 tighter
/// than 4x; the v4 buckets bound every percentile below 4 ms within 2x.
#[inline]
pub fn lat_bucket(ns: u64) -> usize {
    match ns {
        0..=249 => 0,
        250..=499 => 1,
        500..=999 => 2,
        1_000..=1_999 => 3,
        2_000..=3_999 => 4,
        4_000..=7_999 => 5,
        8_000..=15_999 => 6,
        16_000..=31_999 => 7,
        32_000..=63_999 => 8,
        64_000..=127_999 => 9,
        128_000..=255_999 => 10,
        256_000..=511_999 => 11,
        512_000..=999_999 => 12,
        1_000_000..=1_999_999 => 13,
        2_000_000..=3_999_999 => 14,
        _ => 15,
    }
}

/// Human-readable latency bucket labels, index-aligned with
/// [`lat_bucket`]'s ranges.
pub const LAT_BUCKET_LABELS: [&str; LAT_BUCKETS] = [
    "<250ns",
    "250-500ns",
    "500ns-1us",
    "1-2us",
    "2-4us",
    "4-8us",
    "8-16us",
    "16-32us",
    "32-64us",
    "64-128us",
    "128-256us",
    "256-512us",
    "512us-1ms",
    "1-2ms",
    "2-4ms",
    ">=4ms",
];

/// Exclusive upper edge of each latency bucket in nanoseconds, index-aligned
/// with [`lat_bucket`]; the unbounded last bucket reports `u64::MAX`. Used by
/// the report's percentile estimator: "p99 <= edge" is exact by construction.
pub const LAT_BUCKET_UPPER_NS: [u64; LAT_BUCKETS] = [
    250,
    500,
    1_000,
    2_000,
    4_000,
    8_000,
    16_000,
    32_000,
    64_000,
    128_000,
    256_000,
    512_000,
    1_000_000,
    2_000_000,
    4_000_000,
    u64::MAX,
];

/// Per-core event sink handed to exactly one worker thread.
///
/// All methods take `&mut self`: a handle is owned by its core for the
/// duration of a run, which is what makes every backing word single-writer.
/// Implementations must be wait-free — a bounded number of the caller's own
/// steps per call, no locks, no RMW atomics — so instrumentation cannot
/// reintroduce the blocking the primitives were designed to avoid.
pub trait CoreRecorder {
    /// Monotonic timestamp in nanoseconds, or 0 if this recorder does not
    /// time anything (the no-op recorder never touches the clock).
    #[inline(always)]
    fn now(&self) -> u64 {
        0
    }

    /// Attributes `ns` nanoseconds of wall time to `stage`.
    #[inline(always)]
    fn stage_ns(&mut self, stage: Stage, ns: u64) {
        let _ = (stage, ns);
    }

    /// Adds `by` to `counter`.
    #[inline(always)]
    fn add(&mut self, counter: Counter, by: u64) {
        let _ = (counter, by);
    }

    /// Records one hash-table increment that needed `probes` slot
    /// inspections (feeds the probe-length histogram).
    #[inline(always)]
    fn probe_len(&mut self, probes: u64) {
        let _ = probes;
    }

    /// Reports an observed queue backlog; the recorder keeps the high-water
    /// mark.
    #[inline(always)]
    fn queue_depth(&mut self, depth: u64) {
        let _ = depth;
    }

    /// Records one served query's wall latency of `ns` nanoseconds (feeds
    /// the query-latency histogram; the caller bumps
    /// [`Counter::QueriesServed`] separately so histogram mass and the
    /// counter stay independently auditable).
    #[inline(always)]
    fn query_latency(&mut self, ns: u64) {
        let _ = ns;
    }
}

/// A source of per-core [`CoreRecorder`] handles.
///
/// `Sync` because one recorder is shared by reference across all worker
/// threads of a build; each thread then obtains its own exclusive handle.
pub trait Recorder: Sync {
    /// `false` only for the no-op recorder. Hot paths test this compile-time
    /// constant before *computing a recording's argument* (e.g. an atomic
    /// queue-depth load) so the no-op instantiation performs no extra memory
    /// accesses at all — the branch and the dead argument code vanish at
    /// monomorphization.
    const ENABLED: bool = true;

    /// The per-core handle type.
    type Core<'a>: CoreRecorder
    where
        Self: 'a;

    /// Returns the handle for core `index`.
    ///
    /// Callers must hand the handle for index `t` to worker `t` only; two
    /// threads holding the same index would break the single-writer
    /// discipline (and the ownership auditor will catch it when enabled).
    fn core(&self, index: usize) -> Self::Core<'_>;
}

/// The zero-cost default recorder: records nothing, never reads the clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

/// Handle type of [`NoopRecorder`]; a ZST whose methods are all empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopCore;

impl CoreRecorder for NoopCore {}

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    type Core<'a> = NoopCore;

    #[inline(always)]
    fn core(&self, _index: usize) -> NoopCore {
        NoopCore
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_methods_are_callable_and_free_of_effects() {
        let rec = NoopRecorder;
        let mut core = rec.core(3);
        assert_eq!(core.now(), 0);
        core.stage_ns(Stage::Encode, 10);
        core.add(Counter::RowsEncoded, 5);
        core.probe_len(2);
        core.queue_depth(9);
        core.query_latency(1234);
        assert_eq!(core::mem::size_of::<NoopCore>(), 0);
    }

    #[test]
    fn stage_and_counter_indices_are_dense() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn probe_buckets_partition_the_range() {
        assert_eq!(probe_bucket(1), 0);
        assert_eq!(probe_bucket(2), 1);
        assert_eq!(probe_bucket(3), 2);
        assert_eq!(probe_bucket(4), 3);
        assert_eq!(probe_bucket(5), 4);
        assert_eq!(probe_bucket(8), 4);
        assert_eq!(probe_bucket(9), 5);
        assert_eq!(probe_bucket(16), 5);
        assert_eq!(probe_bucket(17), 6);
        assert_eq!(probe_bucket(32), 6);
        assert_eq!(probe_bucket(33), 7);
        assert_eq!(probe_bucket(10_000), 7);
    }

    #[test]
    fn lat_buckets_partition_the_range() {
        assert_eq!(lat_bucket(0), 0);
        assert_eq!(lat_bucket(249), 0);
        assert_eq!(lat_bucket(250), 1);
        assert_eq!(lat_bucket(500), 2);
        assert_eq!(lat_bucket(999), 2);
        assert_eq!(lat_bucket(1_000), 3);
        assert_eq!(lat_bucket(2_000), 4);
        assert_eq!(lat_bucket(4_000), 5);
        assert_eq!(lat_bucket(16_000), 7);
        assert_eq!(lat_bucket(64_000), 9);
        assert_eq!(lat_bucket(256_000), 11);
        assert_eq!(lat_bucket(512_000), 12);
        assert_eq!(lat_bucket(1_000_000), 13);
        assert_eq!(lat_bucket(2_000_000), 14);
        assert_eq!(lat_bucket(4_000_000), 15);
        assert_eq!(lat_bucket(u64::MAX), 15);
        assert_eq!(LAT_BUCKET_LABELS.len(), LAT_BUCKETS);
    }

    #[test]
    fn lat_bucket_upper_edges_match_the_partition() {
        // Every bucket's upper edge is exclusive: the edge itself lands in
        // the next bucket, edge-1 lands in this one.
        for (i, &edge) in LAT_BUCKET_UPPER_NS.iter().enumerate() {
            assert_eq!(lat_bucket(edge.saturating_sub(1)), i, "edge {edge}");
            if edge != u64::MAX {
                assert_eq!(lat_bucket(edge), i + 1, "edge {edge}");
            }
        }
    }
}
