//! [`CoreMetrics`]: the recording [`Recorder`] built from cache-padded
//! per-core counter slots.
//!
//! Memory layout and write discipline mirror the count tables the primitive
//! itself uses: one [`CachePadded`] slot per core, every word inside a slot
//! written only by the core that owns it, and no read-modify-write atomics
//! anywhere. A counter bump is `load(Relaxed)` + `store(Relaxed)` — legal
//! precisely because of the single-writer guarantee, and wait-free because it
//! is a constant number of the caller's own steps. Readers call
//! [`CoreMetrics::snapshot`] only after the writers are quiesced (thread join
//! or the stage-2 barrier), so the happens-before edge that publishes the
//! count tables publishes the telemetry words for free; `tests/loom.rs`
//! model-checks exactly that claim.

use crate::recorder::{
    lat_bucket, probe_bucket, CoreRecorder, Counter, Recorder, Stage, LAT_BUCKETS, NUM_COUNTERS,
    NUM_STAGES, PROBE_BUCKETS,
};
use crate::report::{CoreReport, MetricsReport};
use std::time::Instant;
use wfbn_concurrent::CachePadded;

#[cfg(feature = "loom")]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "loom"))]
use std::sync::atomic::{AtomicU64, Ordering};

/// One core's private telemetry words, padded to its own cache lines.
///
/// `repr(C)` so declared order is stored order — the struct is declared in
/// `analysis/layout.toml` and the false-sharing gate reasons about byte
/// offsets. Every word has the same single writer (the owning core), so no
/// internal padding is needed; isolation between cores comes from the
/// [`CachePadded`] wrapper around each whole slot.
#[repr(C)]
struct CoreSlot {
    /// Monotonic event counters, indexed by [`Counter`].
    counters: [AtomicU64; NUM_COUNTERS],
    /// Nanoseconds attributed to each [`Stage`].
    stage_ns: [AtomicU64; NUM_STAGES],
    /// Probe-length histogram (one entry per table increment).
    probe_hist: [AtomicU64; PROBE_BUCKETS],
    /// Query-latency histogram (one entry per served query).
    lat_hist: [AtomicU64; LAT_BUCKETS],
    /// High-water mark of observed foreign-queue backlog.
    queue_hwm: AtomicU64,
}

impl CoreSlot {
    fn new() -> Self {
        CoreSlot {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            probe_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            lat_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            queue_hwm: AtomicU64::new(0),
        }
    }
}

/// Single-writer bump: load + store, never an RMW. Sound only because each
/// slot word has exactly one writing core (the discipline the ownership
/// auditor checks when enabled).
#[inline]
fn bump(cell: &AtomicU64, by: u64) {
    let v = cell.load(Ordering::Relaxed);
    cell.store(v.wrapping_add(by), Ordering::Relaxed);
    #[cfg(feature = "ownership-audit")]
    wfbn_concurrent::audit::record_write(core::ptr::from_ref(cell).cast(), 8);
}

/// Single-writer max: store only when the sample raises the mark.
#[inline]
fn raise(cell: &AtomicU64, sample: u64) {
    if sample > cell.load(Ordering::Relaxed) {
        cell.store(sample, Ordering::Relaxed);
        #[cfg(feature = "ownership-audit")]
        wfbn_concurrent::audit::record_write(core::ptr::from_ref(cell).cast(), 8);
    }
}

/// A recording [`Recorder`]: per-core, cache-padded, wait-free counters plus
/// a shared monotonic epoch for stage timing.
///
/// Create one per run sized to the thread count, pass `&metrics` to the
/// `*_recorded` entry points, and call [`snapshot`](CoreMetrics::snapshot)
/// after the run returns.
pub struct CoreMetrics {
    /// Common time origin for all cores' [`CoreRecorder::now`] samples.
    epoch: Instant,
    slots: Box<[CachePadded<CoreSlot>]>,
}

impl CoreMetrics {
    /// Allocates zeroed telemetry slots for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "CoreMetrics needs at least one core");
        CoreMetrics {
            epoch: Instant::now(),
            slots: (0..cores).map(|_| CachePadded::new(CoreSlot::new())).collect(),
        }
    }

    /// Number of per-core slots.
    pub fn cores(&self) -> usize {
        self.slots.len()
    }

    /// Copies every core's words into an owned [`MetricsReport`].
    ///
    /// Call only after the writing threads have quiesced (joined, or parked
    /// past a barrier): the join/barrier edge is what makes the Relaxed
    /// writes visible here. Snapshotting mid-run is memory-safe but may read
    /// torn-across-words (per-word-consistent, cross-word-stale) values.
    ///
    /// With `--features metrics`, the snapshot additionally self-validates
    /// the report's conservation invariants and panics on violation, turning
    /// lost or double-counted events into hard test failures.
    pub fn snapshot(&self) -> MetricsReport {
        let cores = self
            .slots
            .iter()
            .map(|slot| CoreReport {
                counters: std::array::from_fn(|i| slot.counters[i].load(Ordering::Relaxed)),
                stage_ns: std::array::from_fn(|i| slot.stage_ns[i].load(Ordering::Relaxed)),
                probe_hist: std::array::from_fn(|i| slot.probe_hist[i].load(Ordering::Relaxed)),
                lat_hist: std::array::from_fn(|i| slot.lat_hist[i].load(Ordering::Relaxed)),
                queue_hwm: slot.queue_hwm.load(Ordering::Relaxed),
            })
            .collect();
        let report = MetricsReport { cores };
        #[cfg(feature = "metrics")]
        if let Err(violation) = report.validate() {
            panic!("metrics invariant violated: {violation}");
        }
        report
    }
}

impl Recorder for CoreMetrics {
    type Core<'a> = CoreHandle<'a>;

    fn core(&self, index: usize) -> CoreHandle<'_> {
        CoreHandle {
            epoch: self.epoch,
            slot: &self.slots[index],
        }
    }
}

/// Exclusive writing handle for one core's [`CoreMetrics`] slot.
pub struct CoreHandle<'a> {
    epoch: Instant,
    slot: &'a CoreSlot,
}

impl CoreRecorder for CoreHandle<'_> {
    #[inline]
    fn now(&self) -> u64 {
        // u64 nanoseconds overflow after ~584 years of run time.
        self.epoch.elapsed().as_nanos() as u64
    }

    #[inline]
    fn stage_ns(&mut self, stage: Stage, ns: u64) {
        bump(&self.slot.stage_ns[stage as usize], ns);
    }

    #[inline]
    fn add(&mut self, counter: Counter, by: u64) {
        bump(&self.slot.counters[counter as usize], by);
    }

    #[inline]
    fn probe_len(&mut self, probes: u64) {
        bump(&self.slot.probe_hist[probe_bucket(probes)], 1);
        bump(&self.slot.counters[Counter::Probes as usize], probes);
    }

    #[inline]
    fn queue_depth(&mut self, depth: u64) {
        raise(&self.slot.queue_hwm, depth);
    }

    #[inline]
    fn query_latency(&mut self, ns: u64) {
        bump(&self.slot.lat_hist[lat_bucket(ns)], 1);
    }
}

/// Rustc's own layout of [`CoreSlot`] for cross-checking the conservative
/// estimator in `wfbn-analyze` (crates/analyze/tests/layout_check.rs).
#[doc(hidden)]
#[cfg(not(feature = "loom"))]
pub fn layout_probes() -> Vec<wfbn_concurrent::pad::LayoutProbe> {
    use core::mem::{offset_of, size_of};
    vec![(
        "CoreSlot",
        size_of::<CoreSlot>(),
        vec![
            ("counters", offset_of!(CoreSlot, counters)),
            ("stage_ns", offset_of!(CoreSlot, stage_ns)),
            ("probe_hist", offset_of!(CoreSlot, probe_hist)),
            ("lat_hist", offset_of!(CoreSlot, lat_hist)),
            ("queue_hwm", offset_of!(CoreSlot, queue_hwm)),
        ],
    )]
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_core() {
        // Counter values mirror a real P=2 build so the strict-mode snapshot
        // validation (--features metrics) also passes.
        let m = CoreMetrics::new(2);
        {
            let mut c0 = m.core(0);
            c0.add(Counter::RowsEncoded, 7);
            c0.add(Counter::RowsEncoded, 3);
            c0.add(Counter::LocalUpdates, 6);
            c0.add(Counter::Forwarded, 4);
            c0.stage_ns(Stage::Encode, 100);
            let mut c1 = m.core(1);
            c1.add(Counter::RowsEncoded, 5);
            c1.add(Counter::LocalUpdates, 5);
            c1.add(Counter::Drained, 4);
            c1.stage_ns(Stage::Drain, 40);
        }
        let r = m.snapshot();
        assert_eq!(r.cores[0].counters[Counter::RowsEncoded as usize], 10);
        assert_eq!(r.cores[1].counters[Counter::RowsEncoded as usize], 5);
        assert_eq!(r.total(Counter::RowsEncoded), 15);
        assert_eq!(r.cores[0].stage_ns[Stage::Encode as usize], 100);
        assert_eq!(r.cores[1].stage_ns[Stage::Drain as usize], 40);
    }

    #[test]
    fn probe_len_fills_histogram_and_probe_counter() {
        let m = CoreMetrics::new(1);
        {
            let mut c = m.core(0);
            c.probe_len(1);
            c.probe_len(1);
            c.probe_len(6);
            c.probe_len(40);
        }
        let r = m.snapshot();
        assert_eq!(r.cores[0].probe_hist, [2, 0, 0, 0, 1, 0, 0, 1]);
        assert_eq!(r.total(Counter::Probes), 1 + 1 + 6 + 40);
        assert_eq!(r.probe_hist_mass(), 4);
    }

    #[test]
    fn query_latency_fills_latency_histogram() {
        let m = CoreMetrics::new(1);
        {
            let mut c = m.core(0);
            c.add(Counter::QueriesServed, 3);
            c.query_latency(500);
            c.query_latency(2_000);
            c.query_latency(5_000_000);
        }
        let r = m.snapshot();
        // 500 ns -> bucket 2, 2 µs -> bucket 4, 5 ms -> the >=4ms tail.
        let mut expect = [0u64; LAT_BUCKETS];
        expect[2] = 1;
        expect[4] = 1;
        expect[LAT_BUCKETS - 1] = 1;
        assert_eq!(r.cores[0].lat_hist, expect);
        assert_eq!(r.lat_hist_mass(), 3);
    }

    #[test]
    fn queue_depth_keeps_high_water_mark() {
        // Two cores: a P=1 report with queue traffic would (correctly) fail
        // strict-mode validation.
        let m = CoreMetrics::new(2);
        {
            let mut c = m.core(0);
            c.queue_depth(3);
            c.queue_depth(9);
            c.queue_depth(4);
        }
        assert_eq!(m.snapshot().cores[0].queue_hwm, 9);
    }

    #[test]
    fn now_is_monotonic() {
        let m = CoreMetrics::new(1);
        let c = m.core(0);
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn parallel_writers_are_all_visible_after_join() {
        let m = CoreMetrics::new(4);
        wfbn_concurrent::run_on_threads(4, |t| {
            let mut c = m.core(t);
            for _ in 0..1000 {
                c.add(Counter::RowsEncoded, 1);
                c.add(Counter::LocalUpdates, 1);
            }
            c.stage_ns(Stage::Encode, t as u64);
        });
        let r = m.snapshot();
        assert_eq!(r.total(Counter::LocalUpdates), 4000);
        for t in 0..4 {
            assert_eq!(r.cores[t].stage_ns[Stage::Encode as usize], t as u64);
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CoreMetrics::new(0);
    }
}
