//! Wait-free per-core observability for the `wfbn` pipeline.
//!
//! The paper's performance claims (Figures 3–5) are claims about *where time
//! goes*: stage-1 encode/route vs. the inter-stage barrier vs. stage-2 drain
//! vs. marginalization. This crate gives the repro the instruments to answer
//! that question without perturbing the property being measured:
//!
//! * [`Recorder`] / [`CoreRecorder`] — the trait pair the hot paths in
//!   `wfbn-core` are generic over. One recorder per run; one exclusive
//!   per-core handle per worker thread.
//! * [`NoopRecorder`] — the zero-cost default. Every method is an empty
//!   `#[inline(always)]` body and `now()` never touches the clock, so the
//!   monomorphized no-op build is the uninstrumented loop.
//! * [`CoreMetrics`] — the recording implementation: cache-padded per-core
//!   slots of plain `u64` words, each written by exactly one core via
//!   load+store (no RMW, no locks — instrumentation stays wait-free). The
//!   same single-writer discipline the primitive uses for its count tables,
//!   auditable by the same shadow map under `--features ownership-audit`.
//! * [`MetricsReport`] — owned snapshot with cross-core aggregation
//!   (totals, per-stage critical path, probe histograms, queue high-water
//!   marks), report merging across repetitions, conservation-law
//!   validation, and stable `wfbn-metrics-v5` JSON for the `--metrics`
//!   flags on the CLI and bench binaries.
//!
//! Feature flags: `metrics` makes every [`CoreMetrics::snapshot`]
//! self-validate its conservation invariants (strict mode, used by CI);
//! `loom` swaps the atomics to the model checker for `tests/loom.rs`;
//! `ownership-audit` reports every telemetry write to the single-writer
//! auditor.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod metrics;
pub mod recorder;
pub mod report;

pub use metrics::{CoreHandle, CoreMetrics};
pub use recorder::{
    lat_bucket, probe_bucket, CoreRecorder, Counter, NoopCore, NoopRecorder, Recorder, Stage,
    LAT_BUCKETS, LAT_BUCKET_LABELS, LAT_BUCKET_UPPER_NS, NUM_COUNTERS, NUM_STAGES, PROBE_BUCKETS,
    PROBE_BUCKET_LABELS,
};
pub use report::{CoreReport, MetricsReport, SCHEMA};
