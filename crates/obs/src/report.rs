//! Owned snapshots of a [`CoreMetrics`](crate::CoreMetrics) run: per-core
//! reports, cross-core aggregation, conservation-invariant validation, and
//! JSON serialization (hand-rolled — the workspace is offline and carries no
//! serde).
//!
//! A [`MetricsReport`] is plain data: once snapshotted it can be merged with
//! reports from other runs (bench repetitions), validated against the routing
//! and queue conservation laws of the two-stage primitive (plus the serving
//! layer's query/epoch/latency laws and the cluster tier's routing/fan-out
//! laws), and rendered as a stable `wfbn-metrics-v5` JSON document for the
//! `--metrics` flags.

use crate::recorder::{
    Counter, Stage, LAT_BUCKETS, LAT_BUCKET_LABELS, LAT_BUCKET_UPPER_NS, NUM_COUNTERS,
    NUM_STAGES, PROBE_BUCKETS, PROBE_BUCKET_LABELS,
};

/// Identifier embedded in every emitted JSON document; bump on any
/// key/shape change so downstream tooling can detect incompatibility.
/// v2 added the write-combining counters (`blocks_flushed`,
/// `keys_coalesced`) and their conservation rules; v3 added the serving
/// layer (`query_serve` stage, query/cache/epoch counters, the
/// `latency_hist` histogram) and its conservation rules; v4 refines the
/// latency histogram to 16 power-of-two buckets, adds the
/// `latency_percentiles` and `fairness` summary blocks, and tightens the
/// latency conservation law to per core (each reader's histogram mass must
/// equal its own `queries_served`); v5 adds the cluster tier (router,
/// fan-out, partial-merge, and cluster-epoch counters) and its conservation
/// rules.
pub const SCHEMA: &str = "wfbn-metrics-v5";

/// One core's telemetry, copied out of its [`CoreMetrics`](crate::CoreMetrics)
/// slot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoreReport {
    /// Event counters, indexed by [`Counter`].
    pub counters: [u64; NUM_COUNTERS],
    /// Nanoseconds attributed to each [`Stage`].
    pub stage_ns: [u64; NUM_STAGES],
    /// Probe-length histogram; one unit of mass per table increment.
    pub probe_hist: [u64; PROBE_BUCKETS],
    /// Query-latency histogram; one unit of mass per served query.
    pub lat_hist: [u64; LAT_BUCKETS],
    /// High-water mark of foreign-queue backlog observed by this core.
    pub queue_hwm: u64,
}

impl CoreReport {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Nanoseconds attributed to one stage.
    pub fn stage(&self, s: Stage) -> u64 {
        self.stage_ns[s as usize]
    }

    /// Total histogram mass (number of recorded table increments).
    pub fn probe_mass(&self) -> u64 {
        self.probe_hist.iter().sum()
    }

    /// Total latency-histogram mass (number of recorded query latencies).
    pub fn lat_mass(&self) -> u64 {
        self.lat_hist.iter().sum()
    }

    fn merge_from(&mut self, other: &CoreReport) {
        for i in 0..NUM_COUNTERS {
            self.counters[i] += other.counters[i];
        }
        for i in 0..NUM_STAGES {
            self.stage_ns[i] += other.stage_ns[i];
        }
        for i in 0..PROBE_BUCKETS {
            self.probe_hist[i] += other.probe_hist[i];
        }
        for i in 0..LAT_BUCKETS {
            self.lat_hist[i] += other.lat_hist[i];
        }
        self.queue_hwm = self.queue_hwm.max(other.queue_hwm);
    }
}

/// Aggregated telemetry for one run (or several merged runs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsReport {
    /// Per-core reports, index = core id.
    pub cores: Vec<CoreReport>,
}

impl MetricsReport {
    /// An all-zero report for `cores` cores (merge accumulator seed).
    pub fn empty(cores: usize) -> Self {
        MetricsReport {
            cores: vec![CoreReport::default(); cores],
        }
    }

    /// Sum of one counter across cores.
    pub fn total(&self, c: Counter) -> u64 {
        self.cores.iter().map(|r| r.counter(c)).sum()
    }

    /// Sum of one stage's nanoseconds across cores (total work in stage).
    pub fn stage_total_ns(&self, s: Stage) -> u64 {
        self.cores.iter().map(|r| r.stage(s)).sum()
    }

    /// Maximum of one stage's nanoseconds across cores — the stage's
    /// critical-path contribution, since cores run the stage concurrently.
    pub fn stage_max_ns(&self, s: Stage) -> u64 {
        self.cores.iter().map(|r| r.stage(s)).max().unwrap_or(0)
    }

    /// Element-wise sum of every core's probe histogram.
    pub fn probe_hist_total(&self) -> [u64; PROBE_BUCKETS] {
        let mut out = [0u64; PROBE_BUCKETS];
        for r in &self.cores {
            for (acc, bucket) in out.iter_mut().zip(&r.probe_hist) {
                *acc += bucket;
            }
        }
        out
    }

    /// Total probe-histogram mass across cores (= recorded table increments).
    pub fn probe_hist_mass(&self) -> u64 {
        self.cores.iter().map(CoreReport::probe_mass).sum()
    }

    /// Element-wise sum of every core's query-latency histogram.
    pub fn lat_hist_total(&self) -> [u64; LAT_BUCKETS] {
        let mut out = [0u64; LAT_BUCKETS];
        for r in &self.cores {
            for (acc, bucket) in out.iter_mut().zip(&r.lat_hist) {
                *acc += bucket;
            }
        }
        out
    }

    /// Total latency-histogram mass across cores (= recorded query
    /// latencies).
    pub fn lat_hist_mass(&self) -> u64 {
        self.cores.iter().map(CoreReport::lat_mass).sum()
    }

    /// Largest queue high-water mark any core observed.
    pub fn queue_hwm_max(&self) -> u64 {
        self.cores.iter().map(|r| r.queue_hwm).max().unwrap_or(0)
    }

    /// Upper bound in nanoseconds on the `q`-quantile (`0 < q <= 1`) of the
    /// aggregated query-latency distribution, or `None` if no latency was
    /// recorded. The bound is the exclusive upper edge of the histogram
    /// bucket holding the nearest-rank sample, so "p99 <= returned value" is
    /// exact; the unbounded `>=4ms` bucket reports `u64::MAX`.
    pub fn lat_percentile_le(&self, q: f64) -> Option<u64> {
        let hist = self.lat_hist_total();
        let mass: u64 = hist.iter().sum();
        if mass == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        // Nearest-rank: the smallest rank r with r >= q * mass.
        let rank = ((q * mass as f64).ceil() as u64).clamp(1, mass);
        let mut seen = 0u64;
        for (i, &count) in hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(LAT_BUCKET_UPPER_NS[i]);
            }
        }
        None
    }

    /// Cores that served at least one query — the serving-reader cores of a
    /// replay, in core order.
    pub fn serving_cores(&self) -> Vec<usize> {
        (0..self.cores.len())
            .filter(|&i| self.cores[i].counter(Counter::QueriesServed) > 0)
            .collect()
    }

    /// `queries_served` per core for the given core ids.
    pub fn served_by(&self, cores: &[usize]) -> Vec<u64> {
        cores
            .iter()
            .map(|&i| self.cores[i].counter(Counter::QueriesServed))
            .collect()
    }

    /// Max/min ratio of `queries_served` across the given reader cores — the
    /// fairness figure the SLO gate bounds. `None` if `cores` is empty;
    /// `f64::INFINITY` if some listed core served nothing (a starved
    /// reader).
    pub fn fairness_ratio(&self, cores: &[usize]) -> Option<f64> {
        let served = self.served_by(cores);
        let min = *served.iter().min()?;
        let max = *served.iter().max()?;
        if min == 0 {
            return Some(f64::INFINITY);
        }
        Some(max as f64 / min as f64)
    }

    /// Accumulates `other` into `self`, core by core: counters, stage times,
    /// and histograms add; queue high-water marks take the max. Grows to the
    /// larger core count if the reports disagree.
    pub fn merge(&mut self, other: &MetricsReport) {
        if other.cores.len() > self.cores.len() {
            self.cores.resize(other.cores.len(), CoreReport::default());
        }
        for (mine, theirs) in self.cores.iter_mut().zip(&other.cores) {
            mine.merge_from(theirs);
        }
    }

    /// Checks the conservation laws of the two-stage primitive and returns
    /// the first violation found.
    ///
    /// * every core's `rows_encoded` must equal `local_updates + forwarded`
    ///   (stage-1 routing conserves keys) — enforced whenever either side is
    ///   non-zero;
    /// * total `forwarded` must equal total `drained` (queues conserve keys);
    /// * a single-core report must show no queue traffic at all
    ///   (`forwarded`, `drained`, `segments_linked`, `queue_hwm` all zero);
    /// * when no rebalance ran, probe-histogram mass must equal
    ///   `local_updates + drained − keys_coalesced` (one histogram entry per
    ///   table increment; a coalesced occurrence rides an existing
    ///   `(key, count)` element and triggers no probe of its own) — enforced
    ///   when both sides are non-zero, so reports from partial
    ///   instrumentation or direct recorder use stay valid;
    /// * per core, `keys_coalesced` must not exceed `forwarded`
    ///   (coalesced-count mass: every coalesced occurrence is a forwarded
    ///   occurrence);
    /// * coalescing only happens inside the write-combining path, so
    ///   `keys_coalesced > 0` requires `blocks_flushed > 0`;
    /// * per core, when blocks were flushed, every flush carried at least
    ///   one element: `blocks_flushed ≤ forwarded − keys_coalesced`
    ///   (blocks × flush accounting).
    ///
    /// Serving-layer laws (v3, tightened per core in v4):
    ///
    /// * latency-histogram mass must equal total `queries_served` whenever
    ///   both are non-zero (one latency sample per served query);
    /// * per core, a non-empty latency histogram must have mass exactly
    ///   `queries_served` on that core — a reader cannot record another
    ///   reader's latencies (single-writer histogram words);
    /// * per core, cache activity implies queries: `cache_hits +
    ///   cache_misses > 0` requires `queries_served > 0`;
    /// * per core, `epochs_pinned` must not exceed total `epochs_published`
    ///   (a reader cannot pin more distinct epochs than the writer ever
    ///   published).
    ///
    /// Cluster-tier laws (v5):
    ///
    /// * per core, fan-outs and partial merges are coupled: `query_fan_outs
    ///   == 0` requires `partial_merges == 0` (merges only happen inside a
    ///   fan-out), and each fan-out covers at least one scope on at least
    ///   one shard, so `partial_merges >= query_fan_outs` otherwise;
    /// * per core, a coordinator's `epochs_published` *is* its cluster
    ///   publication count: `cluster_epochs_published > 0` requires
    ///   `epochs_published == cluster_epochs_published` on that core;
    /// * total `shard_batches_routed` must be a positive multiple of total
    ///   `batches_routed` (every admitted batch fans out to exactly one
    ///   sub-batch per shard, empty sub-batches included), and zero when no
    ///   batch was admitted;
    /// * total `cluster_epochs_published` must not exceed total
    ///   `batches_routed` (a cluster epoch is a complete cut of shard
    ///   epochs, and shards publish at most one local epoch per routed
    ///   sub-batch).
    pub fn validate(&self) -> Result<(), String> {
        for (core, r) in self.cores.iter().enumerate() {
            let rows = r.counter(Counter::RowsEncoded);
            let routed = r.counter(Counter::LocalUpdates) + r.counter(Counter::Forwarded);
            if (rows != 0 || routed != 0) && rows != routed {
                return Err(format!(
                    "core {core}: rows_encoded {rows} != local_updates + forwarded {routed}"
                ));
            }
        }
        let forwarded = self.total(Counter::Forwarded);
        let drained = self.total(Counter::Drained);
        if forwarded != drained {
            return Err(format!(
                "queue conservation: forwarded {forwarded} != drained {drained}"
            ));
        }
        if self.cores.len() == 1 {
            let r = &self.cores[0];
            if forwarded != 0
                || r.counter(Counter::SegmentsLinked) != 0
                || r.queue_hwm != 0
            {
                return Err(format!(
                    "single-core run shows queue traffic: forwarded {forwarded}, \
                     segments_linked {}, queue_hwm {}",
                    r.counter(Counter::SegmentsLinked),
                    r.queue_hwm
                ));
            }
        }
        for (core, r) in self.cores.iter().enumerate() {
            let fwd = r.counter(Counter::Forwarded);
            let coalesced = r.counter(Counter::KeysCoalesced);
            let blocks = r.counter(Counter::BlocksFlushed);
            if coalesced > fwd {
                return Err(format!(
                    "core {core}: keys_coalesced {coalesced} > forwarded {fwd}"
                ));
            }
            if coalesced > 0 && blocks == 0 {
                return Err(format!(
                    "core {core}: keys_coalesced {coalesced} with blocks_flushed 0 \
                     (coalescing outside the write-combining path)"
                ));
            }
            if blocks > 0 && blocks > fwd - coalesced {
                return Err(format!(
                    "core {core}: blocks_flushed {blocks} > enqueued elements {} \
                     (some flush carried no element)",
                    fwd - coalesced
                ));
            }
        }
        let mass = self.probe_hist_mass();
        let increments = (self.total(Counter::LocalUpdates) + drained)
            .saturating_sub(self.total(Counter::KeysCoalesced));
        if self.total(Counter::RebalanceMoves) == 0 && mass != 0 && increments != 0 && mass != increments
        {
            return Err(format!(
                "probe-histogram mass {mass} != local_updates + drained - keys_coalesced \
                 {increments}"
            ));
        }
        let lat_mass = self.lat_hist_mass();
        let served = self.total(Counter::QueriesServed);
        if lat_mass != 0 && served != 0 && lat_mass != served {
            return Err(format!(
                "latency-histogram mass {lat_mass} != queries_served {served}"
            ));
        }
        for (core, r) in self.cores.iter().enumerate() {
            let mass = r.lat_mass();
            let core_served = r.counter(Counter::QueriesServed);
            if mass != 0 && mass != core_served {
                return Err(format!(
                    "core {core}: latency-histogram mass {mass} != \
                     queries_served {core_served}"
                ));
            }
        }
        let published = self.total(Counter::EpochsPublished);
        for (core, r) in self.cores.iter().enumerate() {
            let hits = r.counter(Counter::CacheHits);
            let misses = r.counter(Counter::CacheMisses);
            if hits + misses > 0 && r.counter(Counter::QueriesServed) == 0 {
                return Err(format!(
                    "core {core}: cache activity ({hits} hits, {misses} misses) \
                     with queries_served 0"
                ));
            }
            let pinned = r.counter(Counter::EpochsPinned);
            if pinned > published {
                return Err(format!(
                    "core {core}: epochs_pinned {pinned} > epochs_published {published}"
                ));
            }
        }
        for (core, r) in self.cores.iter().enumerate() {
            let fan_outs = r.counter(Counter::QueryFanOuts);
            let merges = r.counter(Counter::PartialMerges);
            if fan_outs == 0 && merges > 0 {
                return Err(format!(
                    "core {core}: partial_merges {merges} with query_fan_outs 0 \
                     (merges outside a fan-out)"
                ));
            }
            if fan_outs > 0 && merges < fan_outs {
                return Err(format!(
                    "core {core}: partial_merges {merges} < query_fan_outs {fan_outs} \
                     (a fan-out merges at least one partial)"
                ));
            }
            let cluster_pub = r.counter(Counter::ClusterEpochsPublished);
            if cluster_pub > 0 && r.counter(Counter::EpochsPublished) != cluster_pub {
                return Err(format!(
                    "core {core}: cluster_epochs_published {cluster_pub} != \
                     epochs_published {} (a coordinator publishes only cluster cuts)",
                    r.counter(Counter::EpochsPublished)
                ));
            }
        }
        let batches = self.total(Counter::BatchesRouted);
        let shard_batches = self.total(Counter::ShardBatchesRouted);
        if batches == 0 && shard_batches != 0 {
            return Err(format!(
                "cluster routing: shard_batches_routed {shard_batches} with \
                 batches_routed 0"
            ));
        }
        if batches > 0 && (shard_batches < batches || shard_batches % batches != 0) {
            return Err(format!(
                "cluster routing: shard_batches_routed {shard_batches} is not a \
                 positive multiple of batches_routed {batches}"
            ));
        }
        let cluster_epochs = self.total(Counter::ClusterEpochsPublished);
        if cluster_epochs > batches {
            return Err(format!(
                "cluster epochs: cluster_epochs_published {cluster_epochs} > \
                 batches_routed {batches}"
            ));
        }
        Ok(())
    }

    /// Full pretty-printed JSON document (top-level object, schema
    /// [`SCHEMA`]).
    pub fn to_json(&self) -> String {
        self.json_fragment(0)
    }

    /// The report as a pretty-printed JSON object whose nested lines are
    /// indented `indent` spaces past the opening brace — lets the binaries
    /// embed the report inside a larger hand-rolled document.
    pub fn json_fragment(&self, indent: usize) -> String {
        let p0 = " ".repeat(indent);
        let p1 = " ".repeat(indent + 2);
        let p2 = " ".repeat(indent + 4);
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("{p1}\"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("{p1}\"cores\": {},\n", self.cores.len()));

        out.push_str(&format!("{p1}\"totals\": "));
        out.push_str(&json_counters_obj(
            &std::array::from_fn::<u64, NUM_COUNTERS, _>(|i| {
                self.total(Counter::ALL[i])
            }),
            indent + 2,
        ));
        out.push_str(",\n");

        out.push_str(&format!("{p1}\"stage_ns_total\": "));
        out.push_str(&json_stages_obj(
            &std::array::from_fn::<u64, NUM_STAGES, _>(|i| {
                self.stage_total_ns(Stage::ALL[i])
            }),
            indent + 2,
        ));
        out.push_str(",\n");

        out.push_str(&format!("{p1}\"stage_ns_max\": "));
        out.push_str(&json_stages_obj(
            &std::array::from_fn::<u64, NUM_STAGES, _>(|i| {
                self.stage_max_ns(Stage::ALL[i])
            }),
            indent + 2,
        ));
        out.push_str(",\n");

        out.push_str(&format!("{p1}\"queue_hwm_max\": {},\n", self.queue_hwm_max()));

        out.push_str(&format!("{p1}\"probe_hist\": "));
        out.push_str(&json_hist_obj(&self.probe_hist_total(), indent + 2));
        out.push_str(",\n");

        out.push_str(&format!("{p1}\"latency_hist\": "));
        out.push_str(&json_lat_hist_obj(&self.lat_hist_total(), indent + 2));
        out.push_str(",\n");

        out.push_str(&format!("{p1}\"latency_percentiles\": {{\n"));
        out.push_str(&format!(
            "{p2}\"p50_le_ns\": {},\n",
            json_opt_edge(self.lat_percentile_le(0.50))
        ));
        out.push_str(&format!(
            "{p2}\"p99_le_ns\": {},\n",
            json_opt_edge(self.lat_percentile_le(0.99))
        ));
        out.push_str(&format!(
            "{p2}\"p999_le_ns\": {}\n",
            json_opt_edge(self.lat_percentile_le(0.999))
        ));
        out.push_str(&format!("{p1}}},\n"));

        let readers = self.serving_cores();
        let served = self.served_by(&readers);
        out.push_str(&format!("{p1}\"fairness\": {{\n"));
        out.push_str(&format!("{p2}\"serving_cores\": {},\n", readers.len()));
        out.push_str(&format!(
            "{p2}\"served_min\": {},\n",
            served.iter().min().copied().unwrap_or(0)
        ));
        out.push_str(&format!(
            "{p2}\"served_max\": {},\n",
            served.iter().max().copied().unwrap_or(0)
        ));
        out.push_str(&format!(
            "{p2}\"max_min_ratio\": {}\n",
            match self.fairness_ratio(&readers) {
                Some(r) if r.is_finite() => format!("{r:.3}"),
                // Empty reader set or a starved reader: no finite ratio.
                _ => "null".to_string(),
            }
        ));
        out.push_str(&format!("{p1}}},\n"));

        out.push_str(&format!("{p1}\"per_core\": [\n"));
        for (i, r) in self.cores.iter().enumerate() {
            out.push_str(&format!("{p2}{{\n"));
            out.push_str(&format!("{p2}  \"core\": {i},\n"));
            out.push_str(&format!("{p2}  \"counters\": "));
            out.push_str(&json_counters_obj(&r.counters, indent + 6));
            out.push_str(",\n");
            out.push_str(&format!("{p2}  \"stage_ns\": "));
            out.push_str(&json_stages_obj(&r.stage_ns, indent + 6));
            out.push_str(",\n");
            out.push_str(&format!("{p2}  \"queue_hwm\": {},\n", r.queue_hwm));
            out.push_str(&format!("{p2}  \"probe_hist\": "));
            out.push_str(&json_hist_obj(&r.probe_hist, indent + 6));
            out.push_str(",\n");
            out.push_str(&format!("{p2}  \"latency_hist\": "));
            out.push_str(&json_lat_hist_obj(&r.lat_hist, indent + 6));
            out.push('\n');
            out.push_str(&format!(
                "{p2}}}{}\n",
                if i + 1 < self.cores.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!("{p1}]\n"));
        out.push_str(&format!("{p0}}}"));
        out
    }
}

/// Renders a percentile upper edge: a number when bounded, `null` when no
/// latency was recorded or the estimate falls in the unbounded `>=4ms`
/// bucket (whose edge, `u64::MAX`, would be meaningless in the document).
fn json_opt_edge(v: Option<u64>) -> String {
    match v {
        Some(u64::MAX) | None => "null".to_string(),
        Some(x) => x.to_string(),
    }
}

fn json_counters_obj(values: &[u64; NUM_COUNTERS], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let body = Counter::ALL
        .iter()
        .zip(values)
        .map(|(c, v)| format!("{pad}  \"{}\": {v}", c.name()))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n{body}\n{pad}}}")
}

fn json_stages_obj(values: &[u64; NUM_STAGES], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let body = Stage::ALL
        .iter()
        .zip(values)
        .map(|(s, v)| format!("{pad}  \"{}\": {v}", s.name()))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n{body}\n{pad}}}")
}

fn json_hist_obj(values: &[u64; PROBE_BUCKETS], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let body = PROBE_BUCKET_LABELS
        .iter()
        .zip(values)
        .map(|(label, v)| format!("{pad}  \"{label}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n{body}\n{pad}}}")
}

fn json_lat_hist_obj(values: &[u64; LAT_BUCKETS], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let body = LAT_BUCKET_LABELS
        .iter()
        .zip(values)
        .map(|(label, v)| format!("{pad}  \"{label}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n{body}\n{pad}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_like_report() -> MetricsReport {
        // Shaped like a real P=2 build of m=10 rows: routing and queue
        // conservation hold, one histogram entry per table increment.
        let mut r = MetricsReport::empty(2);
        r.cores[0].counters[Counter::RowsEncoded as usize] = 6;
        r.cores[0].counters[Counter::LocalUpdates as usize] = 4;
        r.cores[0].counters[Counter::Forwarded as usize] = 2;
        r.cores[0].counters[Counter::Drained as usize] = 1;
        r.cores[0].probe_hist[0] = 5;
        r.cores[1].counters[Counter::RowsEncoded as usize] = 4;
        r.cores[1].counters[Counter::LocalUpdates as usize] = 3;
        r.cores[1].counters[Counter::Forwarded as usize] = 1;
        r.cores[1].counters[Counter::Drained as usize] = 2;
        r.cores[1].probe_hist[1] = 5;
        r.cores[1].queue_hwm = 2;
        r
    }

    #[test]
    fn totals_and_maxima_aggregate_across_cores() {
        let mut r = build_like_report();
        r.cores[0].stage_ns[Stage::Encode as usize] = 100;
        r.cores[1].stage_ns[Stage::Encode as usize] = 250;
        assert_eq!(r.total(Counter::RowsEncoded), 10);
        assert_eq!(r.stage_total_ns(Stage::Encode), 350);
        assert_eq!(r.stage_max_ns(Stage::Encode), 250);
        assert_eq!(r.queue_hwm_max(), 2);
        assert_eq!(r.probe_hist_mass(), 10);
    }

    #[test]
    fn well_formed_report_validates() {
        build_like_report().validate().expect("conservation holds");
    }

    #[test]
    fn routing_violation_is_reported() {
        let mut r = build_like_report();
        r.cores[0].counters[Counter::Forwarded as usize] = 3;
        let err = r.validate().expect_err("rows != local + forwarded");
        assert!(err.contains("core 0"), "{err}");
    }

    #[test]
    fn queue_conservation_violation_is_reported() {
        let mut r = build_like_report();
        r.cores[1].counters[Counter::Drained as usize] = 99;
        let err = r.validate().expect_err("forwarded != drained");
        assert!(err.contains("queue conservation"), "{err}");
    }

    #[test]
    fn single_core_queue_traffic_is_reported() {
        let mut r = MetricsReport::empty(1);
        r.cores[0].queue_hwm = 1;
        let err = r.validate().expect_err("P=1 cannot see queue traffic");
        assert!(err.contains("single-core"), "{err}");
    }

    #[test]
    fn histogram_mass_mismatch_is_reported() {
        let mut r = build_like_report();
        r.cores[0].probe_hist[0] = 4;
        let err = r.validate().expect_err("mass != increments");
        assert!(err.contains("probe-histogram mass"), "{err}");
    }

    #[test]
    fn batched_report_with_coalescing_validates() {
        // Core 0 forwards 2 occurrences of which 1 coalesces into an open
        // run, so 1 element is enqueued in 1 flushed block; drains apply one
        // table increment per element, so histogram mass drops by the
        // coalesced occurrence.
        let mut r = build_like_report();
        r.cores[0].counters[Counter::BlocksFlushed as usize] = 1;
        r.cores[0].counters[Counter::KeysCoalesced as usize] = 1;
        r.cores[0].probe_hist[0] = 5; // unchanged: stage-1 local + drained
        r.cores[1].probe_hist[1] = 4; // one fewer drain-side increment
        r.validate().expect("coalesced batched report conserves");
    }

    #[test]
    fn coalesced_mass_violation_is_reported() {
        let mut r = build_like_report();
        r.cores[0].counters[Counter::BlocksFlushed as usize] = 1;
        r.cores[0].counters[Counter::KeysCoalesced as usize] = 3; // > forwarded (2)
        let err = r.validate().expect_err("coalesced > forwarded");
        assert!(err.contains("keys_coalesced"), "{err}");
    }

    #[test]
    fn coalescing_without_flushes_is_reported() {
        let mut r = build_like_report();
        r.cores[0].counters[Counter::KeysCoalesced as usize] = 1;
        let err = r.validate().expect_err("coalescing needs a flush path");
        assert!(err.contains("blocks_flushed 0"), "{err}");
    }

    #[test]
    fn empty_flush_accounting_violation_is_reported() {
        let mut r = build_like_report();
        // Core 0 forwarded 2 occurrences but claims 5 flushed blocks.
        r.cores[0].counters[Counter::BlocksFlushed as usize] = 5;
        let err = r.validate().expect_err("more blocks than elements");
        assert!(err.contains("blocks_flushed 5"), "{err}");
    }

    /// A serving run stacked on the build-like report: one writer core
    /// publishing epochs, one reader core pinning and answering queries.
    fn serve_like_report() -> MetricsReport {
        let mut r = build_like_report();
        r.cores[0].counters[Counter::EpochsPublished as usize] = 3;
        r.cores[1].counters[Counter::QueriesServed as usize] = 5;
        r.cores[1].counters[Counter::CacheHits as usize] = 2;
        r.cores[1].counters[Counter::CacheMisses as usize] = 3;
        r.cores[1].counters[Counter::EpochsPinned as usize] = 2;
        r.cores[1].lat_hist[0] = 4;
        r.cores[1].lat_hist[3] = 1;
        r
    }

    #[test]
    fn serve_report_validates_and_aggregates() {
        let r = serve_like_report();
        r.validate().expect("serving laws hold");
        assert_eq!(r.lat_hist_mass(), 5);
        assert_eq!(r.lat_hist_total()[0], 4);
        assert_eq!(r.total(Counter::QueriesServed), 5);
    }

    #[test]
    fn latency_mass_mismatch_is_reported() {
        let mut r = serve_like_report();
        r.cores[1].lat_hist[0] = 9; // mass 10 != 5 served
        let err = r.validate().expect_err("mass != queries_served");
        assert!(err.contains("latency-histogram mass"), "{err}");
    }

    #[test]
    fn cache_activity_without_queries_is_reported() {
        let mut r = serve_like_report();
        r.cores[0].counters[Counter::CacheHits as usize] = 1;
        let err = r.validate().expect_err("hits on a core that served none");
        assert!(err.contains("cache activity"), "{err}");
    }

    #[test]
    fn pinning_more_epochs_than_published_is_reported() {
        let mut r = serve_like_report();
        r.cores[1].counters[Counter::EpochsPinned as usize] = 4; // > 3 published
        let err = r.validate().expect_err("pinned > published");
        assert!(err.contains("epochs_pinned"), "{err}");
    }

    /// A cluster run: core 0 routes batches, core 1 coordinates cuts,
    /// cores 2-3 are cluster clients fanning out and merging.
    fn cluster_like_report() -> MetricsReport {
        let mut r = MetricsReport::empty(4);
        r.cores[0].counters[Counter::BatchesRouted as usize] = 5;
        r.cores[0].counters[Counter::ShardBatchesRouted as usize] = 10; // S=2
        r.cores[1].counters[Counter::ClusterEpochsPublished as usize] = 5;
        r.cores[1].counters[Counter::EpochsPublished as usize] = 5;
        for client in 2..4 {
            r.cores[client].counters[Counter::QueryFanOuts as usize] = 3;
            r.cores[client].counters[Counter::PartialMerges as usize] = 6;
            r.cores[client].counters[Counter::QueriesServed as usize] = 3;
            r.cores[client].counters[Counter::EpochsPinned as usize] = 2;
            r.cores[client].lat_hist[0] = 3;
        }
        r
    }

    #[test]
    fn cluster_report_validates() {
        cluster_like_report().validate().expect("cluster laws hold");
    }

    #[test]
    fn merges_without_fan_outs_are_reported() {
        let mut r = cluster_like_report();
        r.cores[2].counters[Counter::QueryFanOuts as usize] = 0;
        let err = r.validate().expect_err("merges outside a fan-out");
        assert!(err.contains("partial_merges"), "{err}");
        assert!(err.contains("query_fan_outs 0"), "{err}");
    }

    #[test]
    fn fan_outs_exceeding_merges_are_reported() {
        let mut r = cluster_like_report();
        r.cores[3].counters[Counter::PartialMerges as usize] = 2; // < 3 fan-outs
        let err = r.validate().expect_err("a fan-out merges >= 1 partial");
        assert!(err.contains("partial_merges 2"), "{err}");
    }

    #[test]
    fn coordinator_epoch_mirror_violation_is_reported() {
        let mut r = cluster_like_report();
        r.cores[1].counters[Counter::EpochsPublished as usize] = 7; // != 5 cluster
        let err = r.validate().expect_err("coordinator publishes only cuts");
        assert!(err.contains("cluster_epochs_published"), "{err}");
    }

    #[test]
    fn shard_batch_multiple_violation_is_reported() {
        let mut r = cluster_like_report();
        r.cores[0].counters[Counter::ShardBatchesRouted as usize] = 7; // not k*5
        let err = r.validate().expect_err("sub-batches fan out per shard");
        assert!(err.contains("positive multiple"), "{err}");
    }

    #[test]
    fn shard_batches_without_admitted_batches_are_reported() {
        let mut r = cluster_like_report();
        r.cores[0].counters[Counter::BatchesRouted as usize] = 0;
        r.cores[1].counters[Counter::ClusterEpochsPublished as usize] = 0;
        r.cores[1].counters[Counter::EpochsPublished as usize] = 0;
        for client in 2..4 {
            // Keep the older pins-vs-publishes law satisfied so the
            // shard-batch law under test is the one that fires.
            r.cores[client].counters[Counter::EpochsPinned as usize] = 0;
        }
        let err = r.validate().expect_err("sub-batches need an admitted batch");
        assert!(err.contains("batches_routed 0"), "{err}");
    }

    #[test]
    fn more_cluster_epochs_than_batches_is_reported() {
        let mut r = cluster_like_report();
        r.cores[1].counters[Counter::ClusterEpochsPublished as usize] = 9;
        r.cores[1].counters[Counter::EpochsPublished as usize] = 9;
        let err = r.validate().expect_err("a cut needs a routed batch");
        assert!(err.contains("cluster_epochs_published 9"), "{err}");
    }

    #[test]
    fn merge_adds_counters_and_maxes_hwm() {
        let mut a = build_like_report();
        let b = build_like_report();
        a.merge(&b);
        assert_eq!(a.total(Counter::RowsEncoded), 20);
        assert_eq!(a.probe_hist_mass(), 20);
        assert_eq!(a.queue_hwm_max(), 2);
        a.validate().expect("merged report still conserves");
    }

    #[test]
    fn merge_grows_to_larger_core_count() {
        let mut a = MetricsReport::empty(1);
        let b = build_like_report();
        a.merge(&b);
        assert_eq!(a.cores.len(), 2);
        assert_eq!(a.total(Counter::RowsEncoded), 10);
    }

    #[test]
    fn per_core_latency_mass_mismatch_is_reported() {
        let mut r = serve_like_report();
        // Move one unit of core 1's mass onto core 0 (which served nothing):
        // the global mass still equals total served, but core 0 now holds a
        // histogram it cannot own.
        r.cores[1].lat_hist[0] = 3;
        r.cores[0].lat_hist[0] = 1;
        let err = r.validate().expect_err("cross-core latency mass");
        assert!(err.contains("core 0"), "{err}");
        assert!(err.contains("latency-histogram mass"), "{err}");
    }

    #[test]
    fn percentile_estimator_returns_bucket_upper_edges() {
        let mut r = MetricsReport::empty(1);
        r.cores[0].counters[Counter::QueriesServed as usize] = 100;
        // 99 samples in bucket 3 ([1,2)us), 1 sample in bucket 7 ([16,32)us).
        r.cores[0].lat_hist[3] = 99;
        r.cores[0].lat_hist[7] = 1;
        assert_eq!(r.lat_percentile_le(0.50), Some(2_000));
        assert_eq!(r.lat_percentile_le(0.99), Some(2_000));
        assert_eq!(r.lat_percentile_le(0.999), Some(32_000));
        assert_eq!(r.lat_percentile_le(1.0), Some(32_000));
        assert_eq!(MetricsReport::empty(2).lat_percentile_le(0.99), None);
    }

    #[test]
    fn fairness_helpers_identify_serving_cores_and_ratio() {
        let mut r = MetricsReport::empty(4);
        r.cores[2].counters[Counter::QueriesServed as usize] = 30;
        r.cores[3].counters[Counter::QueriesServed as usize] = 10;
        assert_eq!(r.serving_cores(), vec![2, 3]);
        assert_eq!(r.served_by(&[2, 3]), vec![30, 10]);
        assert_eq!(r.fairness_ratio(&[2, 3]), Some(3.0));
        // A listed core that served nothing is a starved reader.
        assert_eq!(r.fairness_ratio(&[1, 2]), Some(f64::INFINITY));
        assert_eq!(r.fairness_ratio(&[]), None);
    }

    #[test]
    fn json_contains_schema_and_all_keys() {
        let json = build_like_report().to_json();
        assert!(json.contains("\"schema\": \"wfbn-metrics-v5\""));
        assert!(json.contains("\"latency_hist\""));
        assert!(json.contains("\"latency_percentiles\""));
        assert!(json.contains("\"p999_le_ns\""));
        assert!(json.contains("\"fairness\""));
        assert!(json.contains("\"max_min_ratio\""));
        assert!(json.contains("\">=4ms\""));
        assert!(json.contains("\"250-500ns\""));
        assert!(json.contains("\"cores\": 2"));
        for c in Counter::ALL {
            assert!(json.contains(&format!("\"{}\"", c.name())), "{}", c.name());
        }
        for s in Stage::ALL {
            assert!(json.contains(&format!("\"{}\"", s.name())), "{}", s.name());
        }
        assert!(json.contains("\"per_core\""));
        assert!(json.contains("\"queue_hwm_max\""));
        assert!(json.contains("\">32\""));
        // Balanced braces/brackets — cheap structural sanity for the
        // hand-rolled emitter.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_report_is_valid_and_serializes() {
        let r = MetricsReport::empty(4);
        r.validate().expect("all-zero report is conservative");
        assert!(r.to_json().contains("\"cores\": 4"));
    }
}
