//! Ownership-audit integration for the metrics words (run with
//! `--features ownership-audit`).
//!
//! Under the audit feature every `CoreMetrics` store reports itself to the
//! shadow map in `wfbn_concurrent::audit`, exactly like table slots and
//! queue words do. These tests prove both directions of the contract: the
//! intended discipline (core `t` writes only slot `t`) records cleanly
//! across both stages, and a violation (two entered cores writing one slot
//! in one stage) panics deterministically with the auditor's message.
#![cfg(feature = "ownership-audit")]

use wfbn_concurrent::audit::{self, BuildAudit};
use wfbn_obs::{CoreMetrics, CoreRecorder, Counter, Recorder, Stage};

#[test]
fn per_core_handles_stay_single_writer_across_both_stages() {
    let rec = CoreMetrics::new(4);
    let auditor = BuildAudit::new();
    std::thread::scope(|s| {
        for t in 0..4 {
            let rec = &rec;
            let auditor = auditor.clone();
            s.spawn(move || {
                let _guard = audit::enter(&auditor, t);
                let mut cr = rec.core(t);
                // Stage 1: encode-side counters (one local increment, one
                // forwarded key, one probe sample for the increment).
                cr.add(Counter::RowsEncoded, 2);
                cr.add(Counter::LocalUpdates, 1);
                cr.add(Counter::Forwarded, 1);
                cr.probe_len(1);
                cr.stage_ns(Stage::Encode, 5);
                // Stage 2: the same words may be written again by the same
                // core — only a *different* writer is a violation.
                audit::set_stage(2);
                cr.add(Counter::Drained, 1);
                cr.probe_len(2);
                cr.stage_ns(Stage::Drain, 3);
            });
        }
    });
    assert!(
        auditor.words_recorded() > 0,
        "metrics stores must be visible to the auditor"
    );
    let report = rec.snapshot();
    assert_eq!(report.total(Counter::RowsEncoded), 8);
    report.validate().expect("balanced ledger");
}

#[test]
fn two_cores_writing_one_slot_is_reported() {
    let rec = CoreMetrics::new(2);
    let auditor = BuildAudit::new();
    let caught = std::thread::scope(|s| {
        let first = {
            let rec = &rec;
            let auditor = auditor.clone();
            s.spawn(move || {
                let _guard = audit::enter(&auditor, 0);
                rec.core(0).add(Counter::RowsEncoded, 1);
            })
        };
        first.join().expect("legitimate write must not panic");
        let second = {
            let rec = &rec;
            let auditor = auditor.clone();
            s.spawn(move || {
                let _guard = audit::enter(&auditor, 1);
                // Core 1 grabbing core 0's handle: the exact bug the
                // Recorder docs forbid. Same word, same stage, new writer.
                rec.core(0).add(Counter::RowsEncoded, 1);
            })
        };
        second.join()
    });
    let payload = caught.expect_err("auditor must catch the cross-core write");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("single-writer violation"),
        "unexpected panic message: {message}"
    );
}
