//! Model-checked interleaving tests for the metrics merge path (run with
//! `--features loom`).
//!
//! The contract under test: each worker core writes only its own
//! cache-padded slot during a run, and `snapshot()` is called by the
//! orchestrator only *after* the workers are quiescent (joined, or past the
//! stage-2 barrier). Under that discipline every Relaxed counter write must
//! be visible to the snapshot in every schedule the model explores — the
//! happens-before edge comes from the join/barrier, not from the counter
//! stores themselves.
#![cfg(feature = "loom")]

use loom::sync::Arc;
use wfbn_obs::{CoreMetrics, CoreRecorder, Counter, Recorder, Stage};

/// The explorer silently degrades to a single std-thread execution if the
/// code under test never hits a modeled scheduling point; every test calls
/// this to prove the schedules were genuinely enumerated.
fn assert_explored() {
    assert!(
        loom::explored_interleavings() >= 2,
        "model explored only {} schedule(s); the code under test bypassed the shim",
        loom::explored_interleavings()
    );
}

#[test]
fn snapshot_after_join_sees_every_relaxed_write() {
    loom::model(|| {
        let rec = Arc::new(CoreMetrics::new(2));
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let rec = Arc::clone(&rec);
                loom::thread::spawn(move || {
                    let mut cr = rec.core(t);
                    // A balanced mini-build ledger: rows = local + forwarded
                    // on each core, and the two cores' forwards drain each
                    // other, so the strict validator stays satisfied.
                    cr.add(Counter::RowsEncoded, 4);
                    cr.add(Counter::LocalUpdates, 3);
                    cr.add(Counter::Forwarded, 1);
                    cr.add(Counter::Drained, 1);
                    cr.stage_ns(Stage::Encode, 10);
                    cr.probe_len(1);
                    cr.probe_len(2);
                    cr.probe_len(1);
                    cr.probe_len(5);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = rec.snapshot();
        assert_eq!(report.total(Counter::RowsEncoded), 8);
        assert_eq!(report.total(Counter::LocalUpdates), 6);
        assert_eq!(report.total(Counter::Forwarded), 2);
        assert_eq!(report.total(Counter::Drained), 2);
        assert_eq!(report.stage_total_ns(Stage::Encode), 20);
        assert_eq!(report.probe_hist_mass(), 8);
        report.validate().expect("balanced ledger");
    });
    assert_explored();
}

#[test]
fn snapshot_after_stage2_barrier_sees_both_stages() {
    // Models the end of a real build: both workers write stage-1 counters,
    // meet at the inter-stage barrier, write stage-2 counters, meet again,
    // and only then does core 0's thread take the snapshot. The barrier's
    // Acquire/Release pair is the only synchronization; the counters are all
    // Relaxed single-writer words.
    loom::model(|| {
        let rec = Arc::new(CoreMetrics::new(2));
        let barrier = Arc::new(wfbn_concurrent::SpinBarrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let rec = Arc::clone(&rec);
                let barrier = Arc::clone(&barrier);
                loom::thread::spawn(move || {
                    let mut cr = rec.core(t);
                    cr.add(Counter::RowsEncoded, 2);
                    cr.add(Counter::LocalUpdates, 1);
                    cr.add(Counter::Forwarded, 1);
                    barrier.wait();
                    cr.add(Counter::Drained, 1);
                    cr.stage_ns(Stage::Drain, 7);
                    barrier.wait();
                    if t == 0 {
                        let report = rec.snapshot();
                        assert_eq!(report.total(Counter::RowsEncoded), 4);
                        assert_eq!(report.total(Counter::Drained), 2);
                        assert_eq!(report.stage_total_ns(Stage::Drain), 14);
                        report.validate().expect("balanced two-stage ledger");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert_explored();
}

#[test]
fn queue_hwm_keeps_the_maximum_across_schedules() {
    loom::model(|| {
        let rec = Arc::new(CoreMetrics::new(2));
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let rec = Arc::clone(&rec);
                loom::thread::spawn(move || {
                    let mut cr = rec.core(t);
                    cr.queue_depth(3);
                    cr.queue_depth(7 + t as u64);
                    cr.queue_depth(1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Each slot's high-water mark is the max of its own samples; the
        // report-wide maximum is core 1's 8 in every schedule.
        let report = rec.snapshot();
        assert_eq!(report.queue_hwm_max(), 8);
        assert_eq!(report.cores[0].queue_hwm, 7);
    });
    assert_explored();
}
