//! Host package for the repository-root `examples/` binaries.
