//! Discretization of continuous measurements into schema-conformant states.
//!
//! The primitives operate on discrete state strings, but the motivating
//! domains (gene expression, finance, sensor data) produce real-valued
//! measurements. This module maps an `m × n` matrix of `f64` columns onto a
//! [`Dataset`] with one of two classic binning rules per column:
//!
//! * **equal-width** — `k` bins of identical span over `[min, max]`; fast,
//!   but skewed data piles into few bins;
//! * **equal-frequency** (quantile) — bin edges at the `1/k, 2/k, …`
//!   quantiles, so every bin holds ≈ `m/k` samples; this is the usual
//!   preprocessing for mutual-information screening because it maximizes
//!   the entropy available to the statistic.
//!
//! Bin edges are computed from the data (`fit`) and can be reapplied to new
//! data (`apply`) — the standard train/test discipline.

use crate::dataset::Dataset;
use crate::schema::{Schema, SchemaError};
use core::fmt;

/// Binning rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinRule {
    /// Equal-width bins over the observed range.
    EqualWidth,
    /// Equal-frequency (quantile) bins.
    EqualFrequency,
}

/// Errors from discretization.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscretizeError {
    /// Fewer than 2 bins requested.
    TooFewBins,
    /// The input matrix shape is inconsistent.
    RaggedInput,
    /// The input is empty.
    Empty,
    /// A column contains a non-finite value.
    NonFinite {
        /// Column index.
        column: usize,
    },
    /// The resulting schema is invalid (e.g. state space too large).
    Schema(SchemaError),
}

impl fmt::Display for DiscretizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscretizeError::TooFewBins => write!(f, "need at least 2 bins"),
            DiscretizeError::RaggedInput => write!(f, "input is not a whole number of rows"),
            DiscretizeError::Empty => write!(f, "input contains no rows"),
            DiscretizeError::NonFinite { column } => {
                write!(f, "column {column} contains a non-finite value")
            }
            DiscretizeError::Schema(e) => write!(f, "schema error: {e}"),
        }
    }
}

impl std::error::Error for DiscretizeError {}

impl From<SchemaError> for DiscretizeError {
    fn from(e: SchemaError) -> Self {
        DiscretizeError::Schema(e)
    }
}

/// A fitted discretizer: per-column interior bin edges.
///
/// Value `v` in column `j` maps to the number of edges strictly below it
/// (so edges act as right-open boundaries).
///
/// # Examples
///
/// ```
/// use wfbn_data::discretize::{BinRule, Discretizer};
///
/// // Two columns, 3 rows, row-major.
/// let values = [0.0, 10.0, 0.5, 20.0, 1.0, 30.0];
/// let d = Discretizer::fit(&values, 2, 2, BinRule::EqualWidth).unwrap();
/// let data = d.apply(&values).unwrap();
/// assert_eq!(data.num_samples(), 3);
/// assert_eq!(data.schema().arities(), &[2, 2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    /// Interior edges per column (`bins − 1` each).
    edges: Vec<Vec<f64>>,
    bins: u16,
}

impl Discretizer {
    /// Fits per-column bin edges on a row-major `f64` matrix with `n`
    /// columns.
    pub fn fit(
        values: &[f64],
        n: usize,
        bins: u16,
        rule: BinRule,
    ) -> Result<Self, DiscretizeError> {
        if bins < 2 {
            return Err(DiscretizeError::TooFewBins);
        }
        if n == 0 || values.is_empty() {
            return Err(DiscretizeError::Empty);
        }
        if values.len() % n != 0 {
            return Err(DiscretizeError::RaggedInput);
        }
        let m = values.len() / n;
        let mut edges = Vec::with_capacity(n);
        for j in 0..n {
            let mut column: Vec<f64> = (0..m).map(|i| values[i * n + j]).collect();
            if column.iter().any(|v| !v.is_finite()) {
                return Err(DiscretizeError::NonFinite { column: j });
            }
            let col_edges = match rule {
                BinRule::EqualWidth => {
                    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                    for &v in &column {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    let span = hi - lo;
                    (1..bins)
                        .map(|b| lo + span * f64::from(b) / f64::from(bins))
                        .collect()
                }
                BinRule::EqualFrequency => {
                    column.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                    (1..bins)
                        .map(|b| {
                            let rank = (m as f64 * f64::from(b) / f64::from(bins)) as usize;
                            column[rank.min(m - 1)]
                        })
                        .collect()
                }
            };
            edges.push(col_edges);
        }
        Ok(Self { edges, bins })
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.edges.len()
    }

    /// Bins per column.
    pub fn bins(&self) -> u16 {
        self.bins
    }

    /// The state a single value maps to in column `j`.
    pub fn bin_of(&self, j: usize, value: f64) -> u16 {
        self.edges[j].iter().filter(|&&e| value > e).count() as u16
    }

    /// Applies the fitted edges to a row-major matrix (same column count),
    /// producing a discrete dataset.
    pub fn apply(&self, values: &[f64]) -> Result<Dataset, DiscretizeError> {
        let n = self.edges.len();
        if values.len() % n != 0 {
            return Err(DiscretizeError::RaggedInput);
        }
        if values.is_empty() {
            return Err(DiscretizeError::Empty);
        }
        let schema = Schema::uniform(n, self.bins)?;
        let mut states = Vec::with_capacity(values.len());
        for (idx, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(DiscretizeError::NonFinite { column: idx % n });
            }
            states.push(self.bin_of(idx % n, v));
        }
        Ok(Dataset::from_flat_unchecked(schema, states))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_bins_split_the_range() {
        // One column, values 0..10.
        let values: Vec<f64> = (0..10).map(f64::from).collect();
        let d = Discretizer::fit(&values, 1, 2, BinRule::EqualWidth).unwrap();
        let data = d.apply(&values).unwrap();
        // 0..=4 map to bin 0 (edge at 4.5), 5..=9 to bin 1.
        let low = data.rows().filter(|r| r[0] == 0).count();
        assert_eq!(low, 5);
    }

    #[test]
    fn equal_frequency_balances_skewed_data() {
        // Heavily skewed but distinct values: x⁴ growth.
        let values: Vec<f64> = (1..=100).map(|i| f64::from(i).powi(4)).collect();
        let width = Discretizer::fit(&values, 1, 4, BinRule::EqualWidth).unwrap();
        let freq = Discretizer::fit(&values, 1, 4, BinRule::EqualFrequency).unwrap();
        let count_per_bin = |d: &Discretizer| -> Vec<usize> {
            let data = d.apply(&values).unwrap();
            (0..4u16)
                .map(|b| data.rows().filter(|r| r[0] == b).count())
                .collect()
        };
        let w = count_per_bin(&width);
        let f = count_per_bin(&freq);
        // Equal-width: the lowest bin hogs ~70 of 100 values.
        assert!(w[0] > 60, "{w:?}");
        // Equal-frequency: ≈25 per bin.
        assert!(f.iter().all(|&c| (20..=30).contains(&c)), "{f:?}");
    }

    #[test]
    fn fit_apply_train_test_discipline() {
        let train: Vec<f64> = (0..100).map(f64::from).collect();
        let d = Discretizer::fit(&train, 1, 4, BinRule::EqualFrequency).unwrap();
        // New data outside the training range clamps into the end bins.
        let test = [-5.0, 50.0, 500.0];
        let data = d.apply(&test).unwrap();
        assert_eq!(data.row(0)[0], 0);
        assert_eq!(data.row(2)[0], 3);
        assert!(data.row(1)[0] == 1 || data.row(1)[0] == 2);
    }

    #[test]
    fn multi_column_shapes() {
        let values = [1.0, -1.0, 2.0, -2.0, 3.0, -3.0, 4.0, -4.0];
        let d = Discretizer::fit(&values, 2, 2, BinRule::EqualWidth).unwrap();
        assert_eq!(d.num_columns(), 2);
        let data = d.apply(&values).unwrap();
        assert_eq!(data.num_samples(), 4);
        // Columns are anti-correlated: bins must be too.
        for row in data.rows() {
            assert_eq!(row[0], 1 - row[1]);
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            Discretizer::fit(&[1.0], 1, 1, BinRule::EqualWidth),
            Err(DiscretizeError::TooFewBins)
        ));
        assert!(matches!(
            Discretizer::fit(&[], 1, 2, BinRule::EqualWidth),
            Err(DiscretizeError::Empty)
        ));
        assert!(matches!(
            Discretizer::fit(&[1.0, 2.0, 3.0], 2, 2, BinRule::EqualWidth),
            Err(DiscretizeError::RaggedInput)
        ));
        assert!(matches!(
            Discretizer::fit(&[1.0, f64::NAN], 1, 2, BinRule::EqualWidth),
            Err(DiscretizeError::NonFinite { column: 0 })
        ));
        let d = Discretizer::fit(&[1.0, 2.0], 1, 2, BinRule::EqualWidth).unwrap();
        assert!(matches!(
            d.apply(&[1.0, f64::INFINITY]),
            Err(DiscretizeError::NonFinite { .. })
        ));
    }

    #[test]
    fn constant_column_is_handled() {
        let values = [5.0; 20];
        let d = Discretizer::fit(&values, 1, 3, BinRule::EqualWidth).unwrap();
        let data = d.apply(&values).unwrap();
        // All values land in a single bin; states stay in range.
        for row in data.rows() {
            assert!(row[0] < 3);
        }
    }
}
