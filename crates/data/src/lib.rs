//! Discrete training-data containers and synthetic workload generators.
//!
//! Structure learning consumes an `m × n` matrix **D** of discrete
//! observations: `m` samples over `n` random variables, where variable `j`
//! takes states in `{0, …, r_j − 1}` ([`Schema`] records the arities `r_j`).
//! Row `i` of **D** is a *state string* in the paper's terminology.
//!
//! The paper evaluates on synthetic data "synthesized from uniform and
//! independent distributions for each variable" (§V-A); [`generators`]
//! provides that generator plus richer ones (correlated chains for
//! end-to-end learning tests, Zipf-skewed states for partition-imbalance
//! ablations), all seeded and reproducible.

#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod discretize;
pub mod generators;
pub mod schema;

pub use dataset::{Dataset, DatasetBuilder};
pub use generators::{
    correlated::CorrelatedChain, uniform::UniformIndependent, zipf::ZipfIndependent, Generator,
};
pub use schema::{Schema, SchemaError};
