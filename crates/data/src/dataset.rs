//! The training-data matrix **D**.
//!
//! Stored row-major in a single flat `Vec<u16>` (state strings are read a
//! whole row at a time by the encoding stage, so row-major is the
//! cache-friendly layout for table construction — each thread streams a
//! contiguous byte range).

use crate::schema::Schema;
use core::fmt;

/// An immutable `m × n` matrix of discrete observations.
///
/// # Examples
///
/// ```
/// use wfbn_data::{Dataset, Schema};
///
/// let schema = Schema::uniform(3, 2).unwrap();
/// let d = Dataset::from_rows(schema, &[&[0, 1, 0], &[1, 1, 1]]).unwrap();
/// assert_eq!(d.num_samples(), 2);
/// assert_eq!(d.row(1), &[1, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    schema: Schema,
    /// Row-major states; length is `m * n`.
    states: Vec<u16>,
}

/// Errors from dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A row does not match the schema (wrong length or out-of-range state).
    InvalidRow {
        /// Index of the offending row.
        row: usize,
    },
    /// The flat buffer length is not a multiple of the number of variables.
    RaggedBuffer,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidRow { row } => {
                write!(f, "row {row} does not conform to the schema")
            }
            DatasetError::RaggedBuffer => {
                write!(f, "flat state buffer is not a whole number of rows")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset from explicit rows, validating each against `schema`.
    pub fn from_rows(schema: Schema, rows: &[&[u16]]) -> Result<Self, DatasetError> {
        let mut states = Vec::with_capacity(rows.len() * schema.num_vars());
        for (i, row) in rows.iter().enumerate() {
            if !schema.validates_row(row) {
                return Err(DatasetError::InvalidRow { row: i });
            }
            states.extend_from_slice(row);
        }
        Ok(Self { schema, states })
    }

    /// Builds a dataset from a flat row-major buffer, validating every state.
    pub fn from_flat(schema: Schema, states: Vec<u16>) -> Result<Self, DatasetError> {
        let n = schema.num_vars();
        if states.len() % n != 0 {
            return Err(DatasetError::RaggedBuffer);
        }
        for (i, row) in states.chunks_exact(n).enumerate() {
            if !schema.validates_row(row) {
                return Err(DatasetError::InvalidRow { row: i });
            }
        }
        Ok(Self { schema, states })
    }

    /// Builds a dataset from a flat buffer **without validating states**.
    ///
    /// Intended for generators that construct states already in range; the
    /// length/shape invariant is still checked.
    pub fn from_flat_unchecked(schema: Schema, states: Vec<u16>) -> Self {
        assert_eq!(
            states.len() % schema.num_vars(),
            0,
            "flat buffer is not a whole number of rows"
        );
        debug_assert!(states
            .chunks_exact(schema.num_vars())
            .all(|row| schema.validates_row(row)));
        Self { schema, states }
    }

    /// The variable schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of samples `m`.
    pub fn num_samples(&self) -> usize {
        if self.schema.num_vars() == 0 {
            0
        } else {
            self.states.len() / self.schema.num_vars()
        }
    }

    /// Number of variables `n`.
    pub fn num_vars(&self) -> usize {
        self.schema.num_vars()
    }

    /// The `i`-th observation (state string).
    ///
    /// # Panics
    ///
    /// Panics if `i >= m`.
    pub fn row(&self, i: usize) -> &[u16] {
        let n = self.schema.num_vars();
        &self.states[i * n..(i + 1) * n]
    }

    /// Iterator over all rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[u16]> + '_ {
        self.states.chunks_exact(self.schema.num_vars())
    }

    /// The rows in the half-open range `[start, end)` as a flat slice.
    ///
    /// This is the view each construction thread streams in stage 1.
    pub fn row_range(&self, start: usize, end: usize) -> &[u16] {
        let n = self.schema.num_vars();
        &self.states[start * n..end * n]
    }

    /// The raw row-major buffer.
    pub fn flat(&self) -> &[u16] {
        &self.states
    }

    /// Empirical frequency of state `s` for variable `j` (an O(m) scan;
    /// test/diagnostic helper, not a hot path).
    pub fn empirical_frequency(&self, j: usize, s: u16) -> f64 {
        let m = self.num_samples();
        if m == 0 {
            return 0.0;
        }
        let hits = self.rows().filter(|row| row[j] == s).count();
        hits as f64 / m as f64
    }

    /// Splits into `([0, at), [at, m))` — the deterministic train/test cut.
    ///
    /// # Panics
    ///
    /// Panics if `at > m`.
    pub fn split_at(&self, at: usize) -> (Dataset, Dataset) {
        let m = self.num_samples();
        assert!(at <= m, "split point {at} beyond {m} samples");
        let n = self.schema.num_vars();
        let (head, tail) = self.states.split_at(at * n);
        (
            Dataset {
                schema: self.schema.clone(),
                states: head.to_vec(),
            },
            Dataset {
                schema: self.schema.clone(),
                states: tail.to_vec(),
            },
        )
    }

    /// Splits into a train set of `⌈fraction·m⌉` rows and a test set of the
    /// rest, after a seeded Fisher–Yates shuffle of the row order (the
    /// standard randomized holdout).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn shuffled_split(&self, fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must lie in [0, 1]"
        );
        let m = self.num_samples();
        let n = self.schema.num_vars();
        let mut order: Vec<usize> = (0..m).collect();
        // Seeded Fisher–Yates over splitmix64 draws (no RNG dependency in
        // this hot-free path).
        let mut state = seed;
        for i in (1..m).rev() {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            order.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let cut = (fraction * m as f64).ceil() as usize;
        let gather = |rows: &[usize]| {
            let mut states = Vec::with_capacity(rows.len() * n);
            for &r in rows {
                states.extend_from_slice(self.row(r));
            }
            Dataset {
                schema: self.schema.clone(),
                states,
            }
        };
        (gather(&order[..cut]), gather(&order[cut..]))
    }
}

/// Incremental dataset builder for producers that emit one row at a time.
///
/// # Examples
///
/// ```
/// use wfbn_data::{DatasetBuilder, Schema};
///
/// let mut b = DatasetBuilder::new(Schema::uniform(2, 3).unwrap());
/// b.push_row(&[0, 2]).unwrap();
/// b.push_row(&[1, 1]).unwrap();
/// let d = b.finish();
/// assert_eq!(d.num_samples(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    schema: Schema,
    states: Vec<u16>,
}

impl DatasetBuilder {
    /// Starts an empty dataset with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            states: Vec::new(),
        }
    }

    /// Pre-allocates space for `m` rows.
    pub fn with_capacity(schema: Schema, m: usize) -> Self {
        let n = schema.num_vars();
        Self {
            schema,
            states: Vec::with_capacity(m * n),
        }
    }

    /// Appends one observation, validating it against the schema.
    pub fn push_row(&mut self, row: &[u16]) -> Result<(), DatasetError> {
        if !self.schema.validates_row(row) {
            return Err(DatasetError::InvalidRow {
                row: self.states.len() / self.schema.num_vars(),
            });
        }
        self.states.extend_from_slice(row);
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.states.len() / self.schema.num_vars()
    }

    /// `true` if no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Finalizes the dataset.
    pub fn finish(self) -> Dataset {
        Dataset {
            schema: self.schema,
            states: self.states,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema23() -> Schema {
        Schema::new(vec![2, 3]).unwrap()
    }

    #[test]
    fn from_rows_round_trip() {
        let d = Dataset::from_rows(schema23(), &[&[0, 0], &[1, 2], &[0, 1]]).unwrap();
        assert_eq!(d.num_samples(), 3);
        assert_eq!(d.num_vars(), 2);
        assert_eq!(d.row(0), &[0, 0]);
        assert_eq!(d.row(2), &[0, 1]);
        let collected: Vec<&[u16]> = d.rows().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn rejects_bad_rows() {
        assert_eq!(
            Dataset::from_rows(schema23(), &[&[0, 0], &[2, 0]]),
            Err(DatasetError::InvalidRow { row: 1 })
        );
        assert_eq!(
            Dataset::from_rows(schema23(), &[&[0, 0, 0]]),
            Err(DatasetError::InvalidRow { row: 0 })
        );
    }

    #[test]
    fn from_flat_checks_shape_and_range() {
        assert_eq!(
            Dataset::from_flat(schema23(), vec![0, 0, 1]),
            Err(DatasetError::RaggedBuffer)
        );
        assert_eq!(
            Dataset::from_flat(schema23(), vec![0, 3]),
            Err(DatasetError::InvalidRow { row: 0 })
        );
        let d = Dataset::from_flat(schema23(), vec![0, 2, 1, 0]).unwrap();
        assert_eq!(d.num_samples(), 2);
    }

    #[test]
    fn row_range_matches_rows() {
        let d = Dataset::from_rows(schema23(), &[&[0, 0], &[1, 1], &[1, 2], &[0, 2]]).unwrap();
        assert_eq!(d.row_range(1, 3), &[1, 1, 1, 2]);
        assert_eq!(d.row_range(0, 0), &[] as &[u16]);
        assert_eq!(d.row_range(0, 4).len(), 8);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_rows(schema23(), &[]).unwrap();
        assert_eq!(d.num_samples(), 0);
        assert_eq!(d.rows().count(), 0);
    }

    #[test]
    fn builder_accumulates_and_validates() {
        let mut b = DatasetBuilder::with_capacity(schema23(), 10);
        assert!(b.is_empty());
        b.push_row(&[1, 2]).unwrap();
        b.push_row(&[0, 0]).unwrap();
        assert!(b.push_row(&[0, 3]).is_err());
        assert_eq!(b.len(), 2);
        let d = b.finish();
        assert_eq!(d.row(0), &[1, 2]);
    }

    #[test]
    fn empirical_frequency_counts() {
        let d = Dataset::from_rows(schema23(), &[&[0, 0], &[1, 0], &[1, 2], &[1, 1]]).unwrap();
        assert!((d.empirical_frequency(0, 1) - 0.75).abs() < 1e-12);
        assert!((d.empirical_frequency(1, 0) - 0.5).abs() < 1e-12);
        let empty = Dataset::from_rows(schema23(), &[]).unwrap();
        assert_eq!(empty.empirical_frequency(0, 0), 0.0);
    }

    #[test]
    fn split_at_partitions_rows() {
        let d = Dataset::from_rows(schema23(), &[&[0, 0], &[1, 1], &[1, 2], &[0, 2]]).unwrap();
        let (head, tail) = d.split_at(1);
        assert_eq!(head.num_samples(), 1);
        assert_eq!(tail.num_samples(), 3);
        assert_eq!(head.row(0), &[0, 0]);
        assert_eq!(tail.row(2), &[0, 2]);
        let (all, none) = d.split_at(4);
        assert_eq!(all, d);
        assert_eq!(none.num_samples(), 0);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn split_past_end_panics() {
        let d = Dataset::from_rows(schema23(), &[&[0, 0]]).unwrap();
        let _ = d.split_at(2);
    }

    #[test]
    fn shuffled_split_preserves_the_multiset() {
        let rows: Vec<Vec<u16>> = (0..100)
            .map(|i| vec![(i % 2) as u16, (i % 3) as u16])
            .collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let d = Dataset::from_rows(schema23(), &refs).unwrap();
        let (train, test) = d.shuffled_split(0.8, 7);
        assert_eq!(train.num_samples(), 80);
        assert_eq!(test.num_samples(), 20);
        // Multiset of rows is preserved.
        let mut combined: Vec<Vec<u16>> = train
            .rows()
            .chain(test.rows())
            .map(<[u16]>::to_vec)
            .collect();
        combined.sort();
        let mut original: Vec<Vec<u16>> = rows.clone();
        original.sort();
        assert_eq!(combined, original);
        // Deterministic per seed, different across seeds.
        assert_eq!(d.shuffled_split(0.8, 7).0, train);
        assert_ne!(d.shuffled_split(0.8, 8).0, train);
    }

    #[test]
    fn shuffled_split_edge_fractions() {
        let d = Dataset::from_rows(schema23(), &[&[0, 0], &[1, 1]]).unwrap();
        let (all, none) = d.shuffled_split(1.0, 1);
        assert_eq!(all.num_samples(), 2);
        assert_eq!(none.num_samples(), 0);
        let (none2, all2) = d.shuffled_split(0.0, 1);
        assert_eq!(none2.num_samples(), 0);
        assert_eq!(all2.num_samples(), 2);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn unchecked_still_validates_shape() {
        let _ = Dataset::from_flat_unchecked(schema23(), vec![0, 0, 0]);
    }
}
