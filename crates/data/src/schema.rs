//! Variable schemas: how many states each random variable can take.
//!
//! The paper assumes a uniform arity `r` "for a concise notation" but notes
//! the techniques apply to varying arities; the schema here is fully
//! mixed-radix. The schema also owns the overflow check that makes `u64`
//! state-string keys sound: the total state-space size `∏ r_j` must fit in a
//! `u64` *strictly below* `u64::MAX` (the count tables reserve `u64::MAX` as
//! their empty-slot sentinel).

use core::fmt;

/// Errors from schema construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A variable was declared with fewer than two states.
    ArityTooSmall {
        /// Index of the offending variable.
        var: usize,
        /// The declared arity.
        arity: u16,
    },
    /// The schema has no variables.
    Empty,
    /// `∏ r_j` does not fit in the key type (`u64`, with one sentinel value
    /// reserved).
    StateSpaceOverflow,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::ArityTooSmall { var, arity } => {
                write!(f, "variable {var} has arity {arity}; at least 2 required")
            }
            SchemaError::Empty => write!(f, "schema must contain at least one variable"),
            SchemaError::StateSpaceOverflow => {
                write!(f, "state-space size exceeds the 64-bit key range")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Arities of the `n` random variables of a dataset.
///
/// # Examples
///
/// ```
/// use wfbn_data::Schema;
///
/// // The paper's experimental setting: n binary variables.
/// let s = Schema::uniform(30, 2).unwrap();
/// assert_eq!(s.num_vars(), 30);
/// assert_eq!(s.state_space_size(), 1 << 30);
///
/// // Mixed arities are supported throughout.
/// let m = Schema::new(vec![2, 3, 4]).unwrap();
/// assert_eq!(m.state_space_size(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    arities: Vec<u16>,
    /// Cached `∏ r_j` (validated to fit below `u64::MAX`).
    state_space: u64,
}

impl Schema {
    /// Builds a schema from explicit per-variable arities.
    pub fn new(arities: Vec<u16>) -> Result<Self, SchemaError> {
        if arities.is_empty() {
            return Err(SchemaError::Empty);
        }
        let mut state_space: u64 = 1;
        for (var, &arity) in arities.iter().enumerate() {
            if arity < 2 {
                return Err(SchemaError::ArityTooSmall { var, arity });
            }
            state_space = state_space
                .checked_mul(u64::from(arity))
                .ok_or(SchemaError::StateSpaceOverflow)?;
        }
        if state_space == u64::MAX {
            // u64::MAX is the count-table sentinel; keys live in
            // [0, state_space), so state_space == u64::MAX would admit the
            // sentinel as a valid key.
            return Err(SchemaError::StateSpaceOverflow);
        }
        Ok(Self {
            arities,
            state_space,
        })
    }

    /// Builds the paper's uniform-arity schema: `n` variables of `r` states.
    pub fn uniform(n: usize, r: u16) -> Result<Self, SchemaError> {
        Self::new(vec![r; n])
    }

    /// Number of random variables `n`.
    pub fn num_vars(&self) -> usize {
        self.arities.len()
    }

    /// Arity `r_j` of variable `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn arity(&self, j: usize) -> u16 {
        self.arities[j]
    }

    /// All arities in variable order.
    pub fn arities(&self) -> &[u16] {
        &self.arities
    }

    /// Total number of distinct state strings, `∏ r_j`.
    pub fn state_space_size(&self) -> u64 {
        self.state_space
    }

    /// `true` if every variable has the same arity (the paper's simplifying
    /// assumption).
    pub fn is_uniform(&self) -> bool {
        self.arities.windows(2).all(|w| w[0] == w[1])
    }

    /// Validates one observation row against the schema.
    pub fn validates_row(&self, row: &[u16]) -> bool {
        row.len() == self.arities.len() && row.iter().zip(&self.arities).all(|(&s, &r)| s < r)
    }

    /// Size of the marginal state space over a subset of variables.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn marginal_space_size(&self, vars: &[usize]) -> u64 {
        vars.iter().map(|&v| u64::from(self.arities[v])).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_binary_paper_settings() {
        for n in [30usize, 40, 50] {
            let s = Schema::uniform(n, 2).unwrap();
            assert_eq!(s.num_vars(), n);
            assert_eq!(s.state_space_size(), 1u64 << n);
            assert!(s.is_uniform());
        }
    }

    #[test]
    fn mixed_arities() {
        let s = Schema::new(vec![2, 3, 5, 7]).unwrap();
        assert_eq!(s.state_space_size(), 2 * 3 * 5 * 7);
        assert!(!s.is_uniform());
        assert_eq!(s.arity(2), 5);
    }

    #[test]
    fn rejects_empty_and_unary() {
        assert_eq!(Schema::new(vec![]), Err(SchemaError::Empty));
        assert_eq!(
            Schema::new(vec![2, 1, 2]),
            Err(SchemaError::ArityTooSmall { var: 1, arity: 1 })
        );
        assert_eq!(
            Schema::new(vec![2, 0]),
            Err(SchemaError::ArityTooSmall { var: 1, arity: 0 })
        );
    }

    #[test]
    fn rejects_overflowing_state_space() {
        // 2^64 overflows u64.
        assert_eq!(Schema::uniform(64, 2), Err(SchemaError::StateSpaceOverflow));
        // 2^63 * 3 overflows too.
        let mut arities = vec![2u16; 63];
        arities.push(3);
        assert_eq!(Schema::new(arities), Err(SchemaError::StateSpaceOverflow));
        // 2^63 is fine (< u64::MAX).
        assert!(Schema::uniform(63, 2).is_ok());
    }

    #[test]
    fn row_validation() {
        let s = Schema::new(vec![2, 3]).unwrap();
        assert!(s.validates_row(&[1, 2]));
        assert!(!s.validates_row(&[2, 0])); // state out of range
        assert!(!s.validates_row(&[0])); // wrong length
        assert!(!s.validates_row(&[0, 0, 0]));
    }

    #[test]
    fn marginal_space() {
        let s = Schema::new(vec![2, 3, 5]).unwrap();
        assert_eq!(s.marginal_space_size(&[0, 2]), 10);
        assert_eq!(s.marginal_space_size(&[1]), 3);
        assert_eq!(s.marginal_space_size(&[]), 1);
    }

    #[test]
    fn display_messages() {
        let e = Schema::new(vec![1]).unwrap_err();
        assert!(e.to_string().contains("arity 1"));
        let e = Schema::new(vec![]).unwrap_err();
        assert!(e.to_string().contains("at least one"));
    }
}
