//! Minimal CSV import/export for datasets.
//!
//! Discrete training data is conventionally exchanged as integer CSV (one
//! row per observation). This module implements exactly that dialect —
//! unquoted base-10 integers, comma separator, `\n` records, optional
//! trailing newline — without pulling in a dependency.

use crate::dataset::Dataset;
use crate::schema::Schema;
use core::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A field could not be parsed as a `u16` state.
    BadField {
        /// 1-based line number.
        line: usize,
        /// The raw field text.
        field: String,
    },
    /// A row's field count disagrees with the schema.
    WrongWidth {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        found: usize,
        /// Number of fields expected.
        expected: usize,
    },
    /// A state value is out of range for its variable.
    StateOutOfRange {
        /// 1-based line number.
        line: usize,
        /// Variable index.
        var: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::BadField { line, field } => {
                write!(f, "line {line}: cannot parse field {field:?} as a state")
            }
            CsvError::WrongWidth {
                line,
                found,
                expected,
            } => write!(f, "line {line}: {found} fields, expected {expected}"),
            CsvError::StateOutOfRange { line, var } => {
                write!(f, "line {line}: state for variable {var} out of range")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes `dataset` as integer CSV (no header).
pub fn write_csv<W: Write>(dataset: &Dataset, mut w: W) -> std::io::Result<()> {
    // Serialize into a reusable line buffer to avoid a write syscall per field.
    let mut line = String::new();
    for row in dataset.rows() {
        line.clear();
        for (j, s) in row.iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            // u16 is at most 5 digits; fmt::Write on String cannot fail.
            use core::fmt::Write as _;
            let _ = write!(line, "{s}");
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()
}

/// Reads integer CSV (no header) into a dataset conforming to `schema`.
pub fn read_csv<R: Read>(schema: Schema, r: R) -> Result<Dataset, CsvError> {
    let n = schema.num_vars();
    let mut reader = BufReader::new(r);
    let mut states: Vec<u16> = Vec::new();
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = buf.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let mut width = 0usize;
        for (var, field) in trimmed.split(',').enumerate() {
            let field = field.trim();
            let value: u16 = field.parse().map_err(|_| CsvError::BadField {
                line: line_no,
                field: field.to_string(),
            })?;
            if var < n && value >= schema.arity(var) {
                return Err(CsvError::StateOutOfRange { line: line_no, var });
            }
            states.push(value);
            width += 1;
        }
        if width != n {
            return Err(CsvError::WrongWidth {
                line: line_no,
                found: width,
                expected: n,
            });
        }
    }
    Ok(Dataset::from_flat_unchecked(schema, states))
}

/// Infers the tightest schema (per-column `max + 1`, floored at arity 2)
/// from integer CSV, then re-parses it into a dataset.
pub fn read_csv_infer_schema(text: &str) -> Result<Dataset, CsvError> {
    let mut maxima: Vec<u16> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        for (var, field) in trimmed.split(',').enumerate() {
            let field = field.trim();
            let value: u16 = field.parse().map_err(|_| CsvError::BadField {
                line: i + 1,
                field: field.to_string(),
            })?;
            if var >= maxima.len() {
                maxima.resize(var + 1, 0);
            }
            maxima[var] = maxima[var].max(value);
        }
    }
    let arities: Vec<u16> = maxima.iter().map(|&mx| (mx + 1).max(2)).collect();
    let schema = Schema::new(arities).map_err(|_| {
        CsvError::Io(std::io::Error::other(
            "inferred schema is invalid (empty input or state space too large)",
        ))
    })?;
    read_csv(schema, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{uniform::UniformIndependent, Generator};

    #[test]
    fn round_trip_preserves_data() {
        let schema = Schema::new(vec![2, 3, 5]).unwrap();
        let d = UniformIndependent::new(schema.clone()).generate(200, 11);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv(schema, buf.as_slice()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn parses_crlf_and_blank_lines() {
        let schema = Schema::uniform(2, 2).unwrap();
        let d = read_csv(schema, "0,1\r\n\r\n1,0\n".as_bytes()).unwrap();
        assert_eq!(d.num_samples(), 2);
        assert_eq!(d.row(1), &[1, 0]);
    }

    #[test]
    fn reports_bad_field_with_line_number() {
        let schema = Schema::uniform(2, 2).unwrap();
        match read_csv(schema, "0,1\n0,x\n".as_bytes()) {
            Err(CsvError::BadField { line: 2, field }) => assert_eq!(field, "x"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reports_wrong_width() {
        let schema = Schema::uniform(3, 2).unwrap();
        match read_csv(schema, "0,1\n".as_bytes()) {
            Err(CsvError::WrongWidth {
                line: 1,
                found: 2,
                expected: 3,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reports_out_of_range_state() {
        let schema = Schema::uniform(2, 2).unwrap();
        match read_csv(schema, "0,2\n".as_bytes()) {
            Err(CsvError::StateOutOfRange { line: 1, var: 1 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn schema_inference() {
        let d = read_csv_infer_schema("0,4\n1,0\n0,2\n").unwrap();
        assert_eq!(d.schema().arities(), &[2, 5]);
        assert_eq!(d.num_samples(), 3);
    }

    #[test]
    fn empty_input_round_trips_to_zero_rows() {
        let schema = Schema::uniform(2, 2).unwrap();
        let d = read_csv(schema, "".as_bytes()).unwrap();
        assert_eq!(d.num_samples(), 0);
    }
}
