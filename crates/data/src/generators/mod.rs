//! Seeded synthetic training-data generators.
//!
//! * [`uniform::UniformIndependent`] — the paper's §V-A workload: every
//!   variable i.i.d. uniform over its states. Keys spread uniformly over the
//!   key space, so every construction thread receives a near-equal share —
//!   the paper's balance assumption.
//! * [`correlated::CorrelatedChain`] — a first-order chain
//!   `X₀ → X₁ → … → Xₙ₋₁` with tunable copy probability; used to test that
//!   the mutual-information pipeline actually detects structure.
//! * [`zipf::ZipfIndependent`] — per-variable Zipf-skewed states. Skewed
//!   states concentrate keys in a few values, deliberately violating the
//!   balance assumption; used by the partitioner ablation.
//!
//! All generators are deterministic given `(m, seed)`.

pub mod correlated;
pub mod uniform;
pub mod zipf;

use crate::dataset::Dataset;
use crate::schema::Schema;

/// A reproducible source of synthetic datasets.
pub trait Generator {
    /// Schema of the generated data.
    fn schema(&self) -> &Schema;

    /// Generates `m` samples deterministically from `seed`.
    fn generate(&self, m: usize, seed: u64) -> Dataset;
}

#[cfg(test)]
mod tests {
    use super::correlated::CorrelatedChain;
    use super::uniform::UniformIndependent;
    use super::zipf::ZipfIndependent;
    use super::*;

    fn all_generators(schema: &Schema) -> Vec<Box<dyn Generator>> {
        vec![
            Box::new(UniformIndependent::new(schema.clone())),
            Box::new(CorrelatedChain::new(schema.clone(), 0.8).unwrap()),
            Box::new(ZipfIndependent::new(schema.clone(), 1.2).unwrap()),
        ]
    }

    #[test]
    fn generators_are_deterministic_and_schema_conformant() {
        let schema = Schema::new(vec![2, 3, 4, 2]).unwrap();
        for g in all_generators(&schema) {
            let a = g.generate(500, 42);
            let b = g.generate(500, 42);
            assert_eq!(a, b, "same seed must reproduce the dataset");
            let c = g.generate(500, 43);
            assert_ne!(a, c, "different seeds should differ");
            assert_eq!(a.num_samples(), 500);
            for row in a.rows() {
                assert!(schema.validates_row(row));
            }
        }
    }

    #[test]
    fn zero_samples_is_fine() {
        let schema = Schema::uniform(4, 2).unwrap();
        for g in all_generators(&schema) {
            assert_eq!(g.generate(0, 1).num_samples(), 0);
        }
    }
}
