//! A first-order dependence chain, for exercising the statistics tests.
//!
//! Uniform-independent data (the paper's benchmark workload) has *no*
//! structure to discover — every mutual information is ≈ 0. To test that the
//! all-pairs MI pipeline and the downstream structure learner actually find
//! edges, this generator plants a known chain `X₀ → X₁ → … → Xₙ₋₁`:
//! adjacent variables carry high MI, distant ones progressively less, and
//! non-adjacent MI vanishes *conditioned on* the intermediate variable —
//! exactly the signature the three-phase algorithm keys on.

use super::Generator;
use crate::dataset::Dataset;
use crate::schema::Schema;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Markov-chain generator: variable `j` copies variable `j−1` (reduced
/// modulo its own arity) with probability `rho`, otherwise it is uniform.
///
/// `rho = 0` degenerates to [`super::uniform::UniformIndependent`];
/// `rho = 1` makes each row a single repeated value (maximal correlation).
#[derive(Debug, Clone)]
pub struct CorrelatedChain {
    schema: Schema,
    rho: f64,
}

/// Error: copy probability outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRho;

impl core::fmt::Display for InvalidRho {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "copy probability must lie in [0, 1]")
    }
}

impl std::error::Error for InvalidRho {}

impl CorrelatedChain {
    /// Creates a chain generator with copy probability `rho ∈ [0, 1]`.
    pub fn new(schema: Schema, rho: f64) -> Result<Self, InvalidRho> {
        if !(0.0..=1.0).contains(&rho) || rho.is_nan() {
            return Err(InvalidRho);
        }
        Ok(Self { schema, rho })
    }

    /// The copy probability.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

impl Generator for CorrelatedChain {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn generate(&self, m: usize, seed: u64) -> Dataset {
        let n = self.schema.num_vars();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut states = Vec::with_capacity(m * n);
        for _ in 0..m {
            let mut prev: u16 = rng.random_range(0..self.schema.arity(0));
            states.push(prev);
            for j in 1..n {
                let r = self.schema.arity(j);
                let s = if rng.random_bool(self.rho) {
                    prev % r
                } else {
                    rng.random_range(0..r)
                };
                states.push(s);
                prev = s;
            }
        }
        Dataset::from_flat_unchecked(self.schema.clone(), states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plug-in estimate of I(X_a; X_b) in nats from raw counts.
    fn empirical_mi(d: &Dataset, a: usize, b: usize) -> f64 {
        let ra = usize::from(d.schema().arity(a));
        let rb = usize::from(d.schema().arity(b));
        let m = d.num_samples() as f64;
        let mut joint = vec![0f64; ra * rb];
        for row in d.rows() {
            joint[usize::from(row[a]) * rb + usize::from(row[b])] += 1.0;
        }
        let mut pa = vec![0f64; ra];
        let mut pb = vec![0f64; rb];
        for i in 0..ra {
            for j in 0..rb {
                pa[i] += joint[i * rb + j];
                pb[j] += joint[i * rb + j];
            }
        }
        let mut mi = 0.0;
        for i in 0..ra {
            for j in 0..rb {
                let pxy = joint[i * rb + j] / m;
                if pxy > 0.0 {
                    mi += pxy * (pxy / ((pa[i] / m) * (pb[j] / m))).ln();
                }
            }
        }
        mi
    }

    #[test]
    fn adjacent_mi_exceeds_distant_mi() {
        let schema = Schema::uniform(6, 2).unwrap();
        let g = CorrelatedChain::new(schema, 0.9).unwrap();
        let d = g.generate(30_000, 17);
        let near = empirical_mi(&d, 0, 1);
        let far = empirical_mi(&d, 0, 5);
        assert!(near > 0.2, "adjacent MI too small: {near}");
        assert!(near > far * 2.0, "near={near} far={far}");
    }

    #[test]
    fn rho_zero_looks_independent() {
        let schema = Schema::uniform(4, 2).unwrap();
        let d = CorrelatedChain::new(schema, 0.0)
            .unwrap()
            .generate(30_000, 3);
        let mi = empirical_mi(&d, 0, 1);
        assert!(mi < 0.01, "independent vars should have tiny MI, got {mi}");
    }

    #[test]
    fn rho_one_copies_exactly() {
        let schema = Schema::uniform(5, 2).unwrap();
        let d = CorrelatedChain::new(schema, 1.0).unwrap().generate(100, 9);
        for row in d.rows() {
            assert!(row.iter().all(|&s| s == row[0]));
        }
    }

    #[test]
    fn rejects_bad_rho() {
        let schema = Schema::uniform(2, 2).unwrap();
        assert!(CorrelatedChain::new(schema.clone(), -0.1).is_err());
        assert!(CorrelatedChain::new(schema.clone(), 1.1).is_err());
        assert!(CorrelatedChain::new(schema, f64::NAN).is_err());
    }
}
