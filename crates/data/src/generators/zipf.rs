//! Zipf-skewed state sampling, for stressing the balance assumption.
//!
//! The wait-free primitive's load balance rests on keys spreading evenly
//! across the `P` key-space partitions. Real datasets are rarely uniform:
//! a handful of state strings dominate. This generator draws each variable's
//! state from a Zipf(`s`) distribution (`P[k] ∝ 1/(k+1)^s`), concentrating
//! probability mass on low states and therefore concentrating keys near 0 —
//! the adversarial input for the paper's `key % P` partitioner, and the
//! workload for the partitioner/rebalancing ablations.

use super::Generator;
use crate::dataset::Dataset;
use crate::schema::Schema;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Independent per-variable Zipf-distributed states.
#[derive(Debug, Clone)]
pub struct ZipfIndependent {
    schema: Schema,
    exponent: f64,
    /// Per-variable cumulative distribution tables, flattened.
    cdfs: Vec<Vec<f64>>,
}

/// Error: non-finite or negative exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidExponent;

impl core::fmt::Display for InvalidExponent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Zipf exponent must be finite and non-negative")
    }
}

impl std::error::Error for InvalidExponent {}

impl ZipfIndependent {
    /// Creates a generator with Zipf exponent `s ≥ 0` (`s = 0` is uniform).
    pub fn new(schema: Schema, exponent: f64) -> Result<Self, InvalidExponent> {
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(InvalidExponent);
        }
        let cdfs = schema
            .arities()
            .iter()
            .map(|&r| {
                let weights: Vec<f64> = (0..r)
                    .map(|k| 1.0 / f64::from(k + 1).powf(exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                weights
                    .iter()
                    .map(|w| {
                        acc += w / total;
                        acc
                    })
                    .collect()
            })
            .collect();
        Ok(Self {
            schema,
            exponent,
            cdfs,
        })
    }

    /// The skew exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    fn sample_state(&self, j: usize, u: f64) -> u16 {
        // Arities are small (≤ a few hundred); a linear scan beats binary
        // search for the sizes that occur in practice.
        let cdf = &self.cdfs[j];
        for (k, &c) in cdf.iter().enumerate() {
            if u <= c {
                return k as u16;
            }
        }
        (cdf.len() - 1) as u16
    }
}

impl Generator for ZipfIndependent {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn generate(&self, m: usize, seed: u64) -> Dataset {
        let n = self.schema.num_vars();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut states = Vec::with_capacity(m * n);
        for _ in 0..m {
            for j in 0..n {
                let u: f64 = rng.random();
                states.push(self.sample_state(j, u));
            }
        }
        Dataset::from_flat_unchecked(self.schema.clone(), states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_exponent_is_uniform() {
        let schema = Schema::new(vec![4]).unwrap();
        let d = ZipfIndependent::new(schema, 0.0)
            .unwrap()
            .generate(40_000, 1);
        for s in 0..4u16 {
            let f = d.empirical_frequency(0, s);
            assert!((f - 0.25).abs() < 0.02, "state {s} freq {f}");
        }
    }

    #[test]
    fn higher_exponent_concentrates_on_state_zero() {
        let schema = Schema::new(vec![8]).unwrap();
        let mild = ZipfIndependent::new(schema.clone(), 0.5)
            .unwrap()
            .generate(20_000, 2)
            .empirical_frequency(0, 0);
        let harsh = ZipfIndependent::new(schema, 2.0)
            .unwrap()
            .generate(20_000, 2)
            .empirical_frequency(0, 0);
        assert!(harsh > mild, "harsh={harsh} mild={mild}");
        assert!(harsh > 0.6, "Zipf(2) over 8 states should put >60% on 0");
    }

    #[test]
    fn frequencies_are_monotone_decreasing() {
        let schema = Schema::new(vec![6]).unwrap();
        let d = ZipfIndependent::new(schema, 1.0)
            .unwrap()
            .generate(60_000, 4);
        let freqs: Vec<f64> = (0..6u16).map(|s| d.empirical_frequency(0, s)).collect();
        for w in freqs.windows(2) {
            // Allow tiny sampling noise.
            assert!(w[0] > w[1] - 0.01, "freqs not decreasing: {freqs:?}");
        }
    }

    #[test]
    fn rejects_bad_exponent() {
        let schema = Schema::uniform(2, 2).unwrap();
        assert!(ZipfIndependent::new(schema.clone(), -1.0).is_err());
        assert!(ZipfIndependent::new(schema.clone(), f64::NAN).is_err());
        assert!(ZipfIndependent::new(schema, f64::INFINITY).is_err());
    }
}
