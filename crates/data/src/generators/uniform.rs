//! Uniform, independent per-variable sampling (the paper's §V-A workload).

use super::Generator;
use crate::dataset::Dataset;
use crate::schema::Schema;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates each state i.i.d. uniform over `{0, …, r_j − 1}`.
///
/// The paper: "Variable instances (training data) … are synthesized from
/// uniform and independent distributions for each variable. Note that
/// independently distributed training data implies that each core would
/// process approximately the same number of instances."
///
/// # Examples
///
/// ```
/// use wfbn_data::{Generator, Schema, UniformIndependent};
///
/// let g = UniformIndependent::new(Schema::uniform(30, 2).unwrap());
/// let d = g.generate(1_000, 7);
/// assert_eq!(d.num_samples(), 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct UniformIndependent {
    schema: Schema,
}

impl UniformIndependent {
    /// Creates a generator for the given schema.
    pub fn new(schema: Schema) -> Self {
        Self { schema }
    }
}

impl Generator for UniformIndependent {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn generate(&self, m: usize, seed: u64) -> Dataset {
        let n = self.schema.num_vars();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut states = Vec::with_capacity(m * n);
        for _ in 0..m {
            for j in 0..n {
                states.push(rng.random_range(0..self.schema.arity(j)));
            }
        }
        Dataset::from_flat_unchecked(self.schema.clone(), states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginals_are_roughly_uniform() {
        let schema = Schema::new(vec![2, 4]).unwrap();
        let g = UniformIndependent::new(schema);
        let d = g.generate(40_000, 123);
        // Each state of a 4-ary variable should appear with freq ≈ 0.25.
        for s in 0..4u16 {
            let f = d.empirical_frequency(1, s);
            assert!((f - 0.25).abs() < 0.02, "state {s} freq {f}");
        }
        let f0 = d.empirical_frequency(0, 0);
        assert!((f0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn variables_are_roughly_independent() {
        let schema = Schema::uniform(2, 2).unwrap();
        let d = UniformIndependent::new(schema).generate(50_000, 5);
        let joint00 =
            d.rows().filter(|r| r[0] == 0 && r[1] == 0).count() as f64 / d.num_samples() as f64;
        assert!((joint00 - 0.25).abs() < 0.02);
    }
}
