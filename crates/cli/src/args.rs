//! Minimal flag parsing shared by the subcommands.

use std::collections::HashMap;

/// Parsed `--flag value` pairs plus bare `--switch`es.
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses the argument list. Flags whose name appears in `switches`
    /// take no value; all others take exactly one.
    pub fn parse(args: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut found_switches = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if !flag.starts_with("--") {
                return Err(format!("expected a --flag, found {flag:?}"));
            }
            let name = flag.trim_start_matches("--").to_string();
            if switches.contains(&name.as_str()) {
                found_switches.push(name);
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                values.insert(name, value.clone());
            }
        }
        Ok(Self {
            values,
            switches: found_switches,
        })
    }

    /// The raw string for a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    /// A required parsed value.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        raw.parse()
            .map_err(|_| format!("invalid value {raw:?} for --{name}"))
    }

    /// `true` if the bare switch was given.
    pub fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str, switches: &[&str]) -> Result<Flags, String> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        Flags::parse(&args, switches)
    }

    #[test]
    fn values_and_switches() {
        let f = parse("--in data.csv --threads 4 --bits", &["bits"]).unwrap();
        assert_eq!(f.get("in"), Some("data.csv"));
        assert_eq!(f.get_or::<usize>("threads", 1).unwrap(), 4);
        assert!(f.has_switch("bits"));
        assert!(!f.has_switch("other"));
        assert_eq!(f.get_or::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn error_cases() {
        assert!(parse("bare", &[]).is_err());
        assert!(parse("--in", &[]).is_err());
        let f = parse("--threads x", &[]).unwrap();
        assert!(f.get_or::<usize>("threads", 1).is_err());
        assert!(f.require::<usize>("absent").is_err());
    }
}
