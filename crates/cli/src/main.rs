//! `wfbn` — command-line interface to the wait-free structure-learning
//! pipeline.
//!
//! ```text
//! wfbn gen   --net asia --samples 100000 --out data.csv
//! wfbn build --in data.csv --threads 4
//! wfbn mi    --in data.csv --threads 4 --top 10
//! wfbn learn --in data.csv --threads 4 --epsilon 0.001
//! wfbn infer --net asia --target 3 --evidence 6=1,2=1
//! ```
//!
//! Every subcommand reads/writes plain integer CSV (see `wfbn_data::csv`),
//! so the tool composes with standard data plumbing.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Dispatches a full argv (testable entry point).
pub(crate) fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(format!("no subcommand given\n{USAGE}"));
    };
    match cmd.as_str() {
        "gen" => commands::gen::run(rest, out),
        "build" => commands::build::run(rest, out),
        "mi" => commands::mi::run(rest, out),
        "learn" => commands::learn::run(rest, out),
        "infer" => commands::infer::run(rest, out),
        "serve" => commands::serve::run(rest, out),
        "workload" => commands::workload::run(rest, out),
        "cluster" => commands::cluster::run(rest, out),
        "--help" | "-h" | "help" => {
            writeln!(out, "{USAGE}").map_err(|e| e.to_string())?;
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}

const USAGE: &str = "\
wfbn — wait-free Bayesian-network structure learning pipeline

Subcommands:
  gen    generate synthetic training data (CSV)
         --net NAME | --uniform N,R | --chain N,RHO | --zipf N,S
         --samples M [--seed S] [--out FILE]
  build  build the potential table from CSV and print statistics
         --in FILE [--threads P] [--metrics] [--batched]
  mi     all-pairs mutual information screening
         --in FILE [--threads P] [--top K] [--bits] [--metrics]
  learn  structure learning
         --in FILE [--method cheng|hillclimb|chowliu] [--threads P]
         [--epsilon E] [--alpha A] [--fit]
  infer  exact posterior query on a repository network
         --net NAME --target VAR [--evidence V=S,V=S,...]
  serve  long-lived query service over epoch-published snapshots
         --in FILE [--threads P] [--batch ROWS] [--batched] [--metrics]
         [--script FILE | --listen ADDR]   (default: line protocol on stdin)
         protocol: MARGINAL/MI/CPT/EPOCH/SYNC/INGEST/STATS/QUIT, ';' fuses
  workload  deterministic serve workload scenarios with SLO gates
         --list | --scenario NAME [--emit [--out FILE] | --run [--threads P]
         [--shards S]] [--rows R] [--batches B] [--queries Q] [--readers N]
         [--seed S]
         scenarios: uniform zipf burst adversarial-partition wide-sparse
                    hot-query starve-reader
  cluster  the workload scenario matrix through a sharded cluster,
         same SLO gates (fairness, skewed p99 vs uniform)
         [--shards S] [--threads P] [--scenario NAME] [--negative-control]
         [--rows R] [--batches B] [--queries Q] [--readers N] [--seed S]

Repository networks: sprinkler, cancer, asia, alarm-like, insurance-like";

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> Result<String, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_to_string(&["--help"]).unwrap().contains("Subcommands"));
        assert!(run_to_string(&[]).is_err());
        assert!(run_to_string(&["frobnicate"])
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn full_pipeline_through_a_temp_file() {
        let dir = std::env::temp_dir().join("wfbn_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("sprinkler.csv");
        let csv_str = csv.to_str().unwrap();

        let gen_out = run_to_string(&[
            "gen",
            "--net",
            "sprinkler",
            "--samples",
            "30000",
            "--seed",
            "5",
            "--out",
            csv_str,
        ])
        .unwrap();
        assert!(gen_out.contains("30000"));

        let build_out = run_to_string(&["build", "--in", csv_str, "--threads", "4"]).unwrap();
        assert!(build_out.contains("distinct state strings"), "{build_out}");

        let mi_out = run_to_string(&["mi", "--in", csv_str, "--top", "3", "--bits"]).unwrap();
        assert!(mi_out.lines().count() >= 3, "{mi_out}");

        let learn_out = run_to_string(&["learn", "--in", csv_str, "--epsilon", "0.002"]).unwrap();
        // Sprinkler's collider must be recovered and oriented.
        assert!(learn_out.contains("X1 -> X3"), "{learn_out}");
        assert!(learn_out.contains("X2 -> X3"), "{learn_out}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gen_synthetic_families() {
        let dir = std::env::temp_dir().join("wfbn_cli_gen_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (flag, spec) in [
            ("--uniform", "6,2"),
            ("--chain", "5,0.8"),
            ("--zipf", "4,1.5"),
        ] {
            let path = dir.join(format!("{}.csv", &flag[2..]));
            let out = run_to_string(&[
                "gen",
                flag,
                spec,
                "--samples",
                "100",
                "--out",
                path.to_str().unwrap(),
            ])
            .unwrap();
            assert!(out.contains("100"), "{out}");
            let content = std::fs::read_to_string(&path).unwrap();
            assert_eq!(content.lines().count(), 100);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn infer_command_answers_queries() {
        let out = run_to_string(&[
            "infer",
            "--net",
            "asia",
            "--target",
            "3",
            "--evidence",
            "6=1,2=1",
        ])
        .unwrap();
        assert!(out.contains("P(X3"), "{out}");
        // Probabilities present and normalized-ish.
        assert!(out.contains("state 0") && out.contains("state 1"));
    }

    #[test]
    fn error_paths_are_reported() {
        assert!(run_to_string(&["gen", "--samples", "10"])
            .unwrap_err()
            .contains("source"));
        assert!(run_to_string(&["build", "--in", "/nonexistent/x.csv"]).is_err());
        assert!(run_to_string(&["infer", "--net", "nope", "--target", "0"])
            .unwrap_err()
            .contains("unknown network"));
        assert!(run_to_string(&[
            "infer",
            "--net",
            "asia",
            "--target",
            "0",
            "--evidence",
            "bad"
        ])
        .unwrap_err()
        .contains("evidence"));
    }
}
