//! `wfbn workload` — deterministic workload scenarios for the serving
//! layer: list them, emit one as a protocol script, or replay one against
//! a live engine with the SLO gates enforced.
//!
//! ```text
//! wfbn workload --list
//! wfbn workload --scenario zipf --emit --out queries.txt
//! wfbn workload --scenario adversarial-partition --run --threads 4
//! wfbn workload --scenario adversarial-partition --run --shards 4
//! ```
//!
//! An emitted script feeds straight back into `wfbn serve --script` (the
//! INGEST schedule, a `SYNC`, then the query stream). A `--run` replay
//! prints the per-reader served counts, the nearest-rank latency
//! percentiles, and each gate's verdict; a gate failure is a command
//! failure.

use crate::args::Flags;
use std::io::Write;
use wfbn_workload::{
    check_fairness, generate, replay, replay_cluster, ReplayConfig, Scenario, WorkloadSpec,
    FAIRNESS_BOUND,
};

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let flags = Flags::parse(args, &["list", "emit", "run"])?;
    let w = |e: std::io::Error| e.to_string();

    if flags.has_switch("list") {
        writeln!(out, "{:<22} description", "scenario").map_err(w)?;
        for scenario in Scenario::MATRIX {
            writeln!(out, "{:<22} {}", scenario.name(), scenario.description()).map_err(w)?;
        }
        let nc = Scenario::StarveReader;
        writeln!(out, "{:<22} {}", nc.name(), nc.description()).map_err(w)?;
        return Ok(());
    }

    let name: String = flags.require("scenario")?;
    let scenario = Scenario::from_name(&name).ok_or_else(|| {
        format!(
            "unknown scenario {name:?} (try: wfbn workload --list)"
        )
    })?;
    let mut spec = WorkloadSpec::matrix_default(scenario);
    spec.rows = flags.get_or("rows", spec.rows)?;
    spec.batches = flags.get_or("batches", spec.batches)?;
    spec.queries = flags.get_or("queries", spec.queries)?;
    spec.readers = flags.get_or("readers", spec.readers)?;
    spec.seed = flags.get_or("seed", spec.seed)?;
    let workload = generate(&spec).map_err(|e| e.to_string())?;

    if flags.has_switch("emit") {
        let script = workload.protocol_script();
        match flags.get("out") {
            Some(path) => {
                std::fs::write(path, &script).map_err(|e| format!("writing {path}: {e}"))?;
                writeln!(
                    out,
                    "wrote {} ({} lines, fingerprint {:016x})",
                    path,
                    script.lines().count(),
                    workload.fingerprint()
                )
                .map_err(w)?;
            }
            None => out.write_all(script.as_bytes()).map_err(w)?,
        }
        return Ok(());
    }

    if flags.has_switch("run") {
        let config = ReplayConfig {
            partitions: flags.get_or("threads", 2)?,
            ..ReplayConfig::default()
        };
        // --shards S > 1 replays through a consistent-hash cluster of S
        // shard engines instead of one engine; the gates below apply to
        // both paths unchanged.
        let shards: usize = flags.get_or("shards", 1)?;
        if shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        let report = if shards > 1 {
            replay_cluster(&workload, &config, shards).map_err(|e| e.to_string())?
        } else {
            replay(&workload, &config).map_err(|e| e.to_string())?
        };
        writeln!(
            out,
            "scenario {} (seed {}): {} queries over {} readers, {} epochs{}",
            scenario.name(),
            spec.seed,
            report.total_queries,
            spec.readers,
            report.epochs_published,
            if shards > 1 {
                format!(" across {shards} shards")
            } else {
                String::new()
            }
        )
        .map_err(w)?;
        writeln!(
            out,
            "latency p50/p99/p999: {}/{}/{} ns",
            report.p50_ns, report.p99_ns, report.p999_ns
        )
        .map_err(w)?;
        writeln!(out, "served per reader: {:?}", report.served_per_reader).map_err(w)?;
        match check_fairness(scenario, &report.served_per_reader, FAIRNESS_BOUND) {
            Ok(ratio) => {
                writeln!(out, "fairness gate: pass (max/min ratio {ratio:.2})").map_err(w)?
            }
            Err(msg) => return Err(msg),
        }
        return Ok(());
    }

    // Neither --emit nor --run: describe what would be generated.
    writeln!(
        out,
        "scenario {}: {} — rows={} batches={} queries={} readers={} seed={} \
         fingerprint={:016x}",
        scenario.name(),
        scenario.description(),
        spec.rows,
        spec.batches,
        spec.queries,
        spec.readers,
        spec.seed,
        workload.fingerprint()
    )
    .map_err(w)?;
    writeln!(out, "use --emit for the protocol script, --run to replay it").map_err(w)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> Result<String, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn list_names_every_scenario() {
        let out = run_to_string(&["--list"]).unwrap();
        for name in [
            "uniform",
            "zipf",
            "burst",
            "adversarial-partition",
            "wide-sparse",
            "hot-query",
            "starve-reader",
        ] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
    }

    #[test]
    fn emit_produces_a_replayable_script() {
        let out = run_to_string(&[
            "--scenario", "uniform", "--emit", "--rows", "40", "--batches", "4", "--queries",
            "10",
        ])
        .unwrap();
        assert!(out.starts_with("# wfbn-workload scenario=uniform"), "{out}");
        assert!(out.contains("INGEST "), "{out}");
        assert!(out.contains("SYNC"), "{out}");
        assert!(out.trim_end().ends_with("QUIT"), "{out}");
    }

    #[test]
    fn run_replays_and_passes_the_fairness_gate() {
        let out = run_to_string(&[
            "--scenario", "zipf", "--run", "--rows", "60", "--batches", "3", "--queries",
            "24", "--readers", "2", "--threads", "1",
        ])
        .unwrap();
        assert!(out.contains("fairness gate: pass"), "{out}");
        assert!(out.contains("latency p50/p99/p999"), "{out}");
    }

    #[test]
    fn run_with_shards_replays_through_the_cluster() {
        let out = run_to_string(&[
            "--scenario", "adversarial-partition", "--run", "--rows", "60", "--batches", "3",
            "--queries", "24", "--readers", "2", "--threads", "1", "--shards", "2",
        ])
        .unwrap();
        assert!(out.contains("across 2 shards"), "{out}");
        assert!(out.contains("fairness gate: pass"), "{out}");
    }

    #[test]
    fn run_fails_the_negative_control_naming_scenario_and_reader() {
        let err = run_to_string(&[
            "--scenario", "starve-reader", "--run", "--rows", "60", "--batches", "3",
            "--queries", "24", "--readers", "2", "--threads", "1",
        ])
        .unwrap_err();
        assert!(err.contains("'starve-reader'"), "{err}");
        assert!(err.contains("reader 1"), "{err}");
    }

    #[test]
    fn unknown_scenario_is_reported() {
        let err = run_to_string(&["--scenario", "nope"]).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
        let summary = run_to_string(&["--scenario", "burst"]).unwrap();
        assert!(summary.contains("fingerprint="), "{summary}");
    }
}
