//! `wfbn serve` — long-lived statistics service over epoch-published
//! snapshots.
//!
//! Loads a CSV, feeds it to the serve engine in batches (each publishing an
//! epoch), then answers the line protocol (see `wfbn_serve::query`) from a
//! script file, stdin, or a TCP socket:
//!
//! ```text
//! printf 'SYNC\nMI 0 1\nQUIT\n' | wfbn serve --in data.csv
//! wfbn serve --in data.csv --script queries.txt
//! wfbn serve --in data.csv --listen 127.0.0.1:7878
//! ```

use crate::args::Flags;
use crate::commands::load_csv;
use std::io::Write;
use std::sync::Arc;
use wfbn_core::{CoreMetrics, Recorder};
use wfbn_data::{Dataset, Schema};
use wfbn_serve::{serve_lines, serve_tcp, Engine, EngineConfig, LoopControl, QueryReader, Session};

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let flags = Flags::parse(args, &["metrics", "batched"])?;
    let path: String = flags.require("in")?;
    let threads: usize = flags.get_or("threads", 1)?;
    let batch_rows: usize = flags.get_or("batch", 4096)?;
    if batch_rows == 0 {
        return Err("--batch must be positive".into());
    }

    let data = load_csv(&path)?;
    let schema = data.schema().clone();
    let cfg = EngineConfig {
        builder_threads: threads,
        readers: 1,
        batched: flags.has_switch("batched"),
        ..EngineConfig::default()
    };

    if flags.has_switch("metrics") {
        let metrics = Arc::new(CoreMetrics::new(cfg.cores()));
        let (engine, readers) = Engine::start_recorded(&schema, &cfg, Arc::clone(&metrics))
            .map_err(|e| e.to_string())?;
        serve_session(engine, readers, schema, &data, batch_rows, Some(metrics), &flags, out)
    } else {
        let (engine, readers) = Engine::start(&schema, &cfg).map_err(|e| e.to_string())?;
        serve_session(engine, readers, schema, &data, batch_rows, None, &flags, out)
    }
}

/// Feeds the CSV into the engine and runs the protocol loop.
#[allow(clippy::too_many_arguments)]
fn serve_session<R: Recorder + Send + Sync + 'static>(
    mut engine: Engine<R>,
    mut readers: Vec<QueryReader<R>>,
    schema: Schema,
    data: &Dataset,
    batch_rows: usize,
    metrics: Option<Arc<CoreMetrics>>,
    flags: &Flags,
    out: &mut dyn Write,
) -> Result<(), String> {
    let m = data.num_samples();
    let mut start = 0;
    while start < m {
        let end = (start + batch_rows).min(m);
        let flat = data.row_range(start, end).to_vec();
        let batch = Dataset::from_flat_unchecked(schema.clone(), flat);
        engine.submit(batch).map_err(|e| e.to_string())?;
        start = end;
    }
    let epochs = engine.sync().map_err(|e| e.to_string())?;
    writeln!(
        out,
        "serving: n={} m={m} epochs={epochs} threads={}",
        schema.num_vars(),
        flags.get_or("threads", 1usize)?,
    )
    .map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;

    let reader = readers.pop().expect("the engine was started with one reader");
    let mut session = Session::new(engine, reader, schema);
    if let Some(metrics) = metrics {
        session = session.with_metrics(metrics);
    }

    if let Some(addr) = flags.get("listen") {
        let listener =
            std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        writeln!(
            out,
            "listening on {}",
            listener.local_addr().map_err(|e| e.to_string())?
        )
        .map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        serve_tcp(&mut session, listener).map_err(|e| e.to_string())?;
    } else if let Some(script) = flags.get("script") {
        let text = std::fs::read_to_string(script)
            .map_err(|e| format!("reading script {script}: {e}"))?;
        serve_lines(&mut session, std::io::Cursor::new(text), out).map_err(|e| e.to_string())?;
    } else {
        let stdin = std::io::stdin();
        let control =
            serve_lines(&mut session, stdin.lock(), out).map_err(|e| e.to_string())?;
        let _: LoopControl = control;
    }
    session.finish().map_err(|e| e.to_string())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_csv(dir: &std::path::Path, name: &str, rows: usize) -> String {
        let path = dir.join(name);
        let mut text = String::new();
        for i in 0..rows {
            let a = i % 2;
            text.push_str(&format!("{a},{a},{}\n", (i / 2) % 2));
        }
        std::fs::write(&path, text).unwrap();
        path.to_str().unwrap().to_string()
    }

    fn run_to_string(args: &[&str]) -> Result<String, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn scripted_session_answers_queries() {
        let dir = std::env::temp_dir().join("wfbn_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = write_csv(&dir, "d.csv", 400);
        let script = dir.join("script.txt");
        std::fs::write(&script, "EPOCH\nMI 0 1; MARGINAL 2\nCPT 1 0\nQUIT\n").unwrap();

        let out = run_to_string(&[
            "--in",
            &csv,
            "--batch",
            "100",
            "--script",
            script.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("serving: n=3 m=400 epochs=4"), "{out}");
        assert!(out.contains("OK EPOCH published=4"), "{out}");
        // X0 == X1 in the data: exactly ln 2 nats.
        assert!(out.contains("OK MI e=4 X0 -- X1 0.693147 nats"), "{out}");
        assert!(out.contains("OK MARGINAL e=4 scope=2 total=400 counts=200,200"), "{out}");
        assert!(out.contains("OK CPT e=4 x=1 parents=0 rows=2: [0] 1.000000,0.000000 | [1] 0.000000,1.000000"), "{out}");
        assert!(out.contains("OK BYE"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_switch_reports_serve_counters() {
        let dir = std::env::temp_dir().join("wfbn_cli_serve_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = write_csv(&dir, "d.csv", 200);
        let script = dir.join("script.txt");
        std::fs::write(&script, "MI 0 2\nSTATS\nQUIT\n").unwrap();

        let out = run_to_string(&[
            "--in",
            &csv,
            "--threads",
            "2",
            "--script",
            script.to_str().unwrap(),
            "--metrics",
        ])
        .unwrap();
        assert!(out.contains("\"schema\": \"wfbn-metrics-v5\""), "{out}");
        assert!(out.contains("\"queries_served\": 1"), "{out}");
        assert!(out.contains("\"epochs_published\": 1"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_extends_the_served_table() {
        let dir = std::env::temp_dir().join("wfbn_cli_serve_ingest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = write_csv(&dir, "d.csv", 100);
        let script = dir.join("script.txt");
        std::fs::write(
            &script,
            "MARGINAL 0\nINGEST 0,0,0|0,0,0; SYNC\nMARGINAL 0\nQUIT\n",
        )
        .unwrap();
        let out = run_to_string(&["--in", &csv, "--script", script.to_str().unwrap()]).unwrap();
        assert!(out.contains("OK MARGINAL e=1 scope=0 total=100 counts=50,50"), "{out}");
        assert!(out.contains("OK SYNC e=2"), "{out}");
        assert!(out.contains("OK MARGINAL e=2 scope=0 total=102 counts=52,50"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(run_to_string(&["--in", "/nonexistent.csv"]).is_err());
        let err = run_to_string(&["--in", "x.csv", "--batch", "0"]).unwrap_err();
        assert!(err.contains("--batch"), "{err}");
    }
}
