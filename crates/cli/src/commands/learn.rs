//! `wfbn learn` — structure learning by any of the three implemented
//! paradigms: `cheng` (constraint-based, the paper's system), `hillclimb`
//! (score-based BIC search) or `chowliu` (tree approximation).

use crate::args::Flags;
use crate::commands::load_csv;
use std::io::Write;
use wfbn_bn::cheng::ChengLearner;
use wfbn_bn::chowliu::chow_liu;
use wfbn_bn::estimate::fit_network;
use wfbn_bn::graph::Dag;
use wfbn_bn::hillclimb::HillClimber;
use wfbn_core::allpairs::all_pairs_mi;
use wfbn_core::construct::waitfree_build;
use wfbn_data::Dataset;

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let flags = Flags::parse(args, &["fit"])?;
    let path: String = flags.require("in")?;
    let threads: usize = flags.get_or("threads", 4)?;
    let epsilon: f64 = flags.get_or("epsilon", 0.005)?;
    let alpha: f64 = flags.get_or("alpha", 1.0)?;
    let method: String = flags.get_or("method", "cheng".to_string())?;
    let fit = flags.has_switch("fit");

    let data = load_csv(&path)?;
    // The DAG is only needed for parameter fitting; constraint-based
    // learning reports a pattern and must not fail on extension issues
    // when --fit was not requested.
    let dag: Option<Dag> = match method.as_str() {
        "cheng" => learn_cheng(&data, epsilon, threads, fit, out)?,
        "hillclimb" => Some(learn_hillclimb(&data, threads, out)?),
        "chowliu" => Some(learn_chowliu(&data, epsilon, threads, out)?),
        other => {
            return Err(format!(
                "unknown method {other:?} (cheng|hillclimb|chowliu)"
            ))
        }
    };

    if fit {
        let dag = dag.ok_or("learned pattern admits no consistent DAG extension")?;
        let net = fit_network(&data, &dag, alpha, threads).map_err(|e| e.to_string())?;
        let ll = wfbn_bn::estimate::mean_log_likelihood(&net, &data);
        writeln!(out, "fitted parameters on {:?}", dag.edges())
            .and_then(|()| writeln!(out, "training log-likelihood: {ll:.4} nats/sample"))
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn learn_cheng(
    data: &Dataset,
    epsilon: f64,
    threads: usize,
    need_dag: bool,
    out: &mut dyn Write,
) -> Result<Option<Dag>, String> {
    let learner = ChengLearner {
        epsilon,
        threads,
        ..ChengLearner::default()
    };
    let result = learner.learn(data).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "phases: {} drafted, {} deferred, {} thickened, {} thinned ({} CI tests)",
        result.stats.draft_edges,
        result.stats.deferred_pairs,
        result.stats.thickening_added,
        result.stats.thinning_removed,
        result.stats.ci_tests
    )
    .map_err(|e| e.to_string())?;
    for (u, v) in result.cpdag.directed_edges() {
        writeln!(out, "X{u} -> X{v}").map_err(|e| e.to_string())?;
    }
    for (u, v) in result.cpdag.undirected_edges() {
        writeln!(out, "X{u} -- X{v}").map_err(|e| e.to_string())?;
    }
    if need_dag {
        Ok(result.cpdag.consistent_extension())
    } else {
        Ok(None)
    }
}

fn learn_hillclimb(data: &Dataset, threads: usize, out: &mut dyn Write) -> Result<Dag, String> {
    let climber = HillClimber {
        threads,
        ..HillClimber::default()
    };
    let result = climber.learn(data).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "hill climbing: {} moves, final BIC {:.2}",
        result.moves.len(),
        result.score
    )
    .map_err(|e| e.to_string())?;
    for (u, v) in result.dag.edges() {
        writeln!(out, "X{u} -> X{v}").map_err(|e| e.to_string())?;
    }
    Ok(result.dag)
}

fn learn_chowliu(
    data: &Dataset,
    min_mi: f64,
    threads: usize,
    out: &mut dyn Write,
) -> Result<Dag, String> {
    let table = waitfree_build(data, threads)
        .map_err(|e| e.to_string())?
        .table;
    let tree = chow_liu(&all_pairs_mi(&table, threads), min_mi);
    writeln!(
        out,
        "Chow-Liu forest: {} edges, total MI {:.4} nats",
        tree.skeleton.num_edges(),
        tree.total_mi
    )
    .map_err(|e| e.to_string())?;
    for (u, v) in tree.dag.edges() {
        writeln!(out, "X{u} -> X{v}").map_err(|e| e.to_string())?;
    }
    Ok(tree.dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfbn_bn::repository;
    use wfbn_data::csv::write_csv;

    fn sprinkler_csv(dir: &str) -> String {
        std::fs::create_dir_all(dir).unwrap();
        let path = format!("{dir}/s.csv");
        let data = repository::sprinkler().sample(30_000, 3);
        let mut buf = Vec::new();
        write_csv(&data, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        path
    }

    fn run_args(args: &[&str]) -> Result<String, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn learns_and_fits_sprinkler_with_every_method() {
        let dir = std::env::temp_dir().join("wfbn_cli_learn_test");
        let dir = dir.to_str().unwrap().to_string();
        let path = sprinkler_csv(&dir);

        let cheng = run_args(&["--in", &path, "--fit"]).unwrap();
        assert!(cheng.contains("phases:"), "{cheng}");
        assert!(cheng.contains("log-likelihood"), "{cheng}");

        let hc = run_args(&["--in", &path, "--method", "hillclimb"]).unwrap();
        assert!(hc.contains("final BIC"), "{hc}");
        assert!(hc.contains("->"), "{hc}");

        let cl = run_args(&["--in", &path, "--method", "chowliu"]).unwrap();
        assert!(cl.contains("Chow-Liu forest: 3 edges"), "{cl}");

        assert!(run_args(&["--in", &path, "--method", "psychic"])
            .unwrap_err()
            .contains("unknown method"));

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
