//! `wfbn mi` — all-pairs mutual-information screening.

use crate::args::Flags;
use crate::commands::load_csv;
use std::io::Write;
use wfbn_core::allpairs::{all_pairs_mi, all_pairs_mi_recorded};
use wfbn_core::construct::{waitfree_build, waitfree_build_recorded};
use wfbn_core::entropy::nats_to_bits;
use wfbn_core::CoreMetrics;

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let flags = Flags::parse(args, &["bits", "metrics"])?;
    let path: String = flags.require("in")?;
    let threads: usize = flags.get_or("threads", 4)?;
    let top: usize = flags.get_or("top", 20)?;
    let in_bits = flags.has_switch("bits");
    let with_metrics = flags.has_switch("metrics");

    let data = load_csv(&path)?;
    let metrics = with_metrics.then(|| CoreMetrics::new(threads));
    let mi = match &metrics {
        Some(rec) => {
            let table = waitfree_build_recorded(&data, threads, rec)
                .map_err(|e| e.to_string())?
                .table;
            all_pairs_mi_recorded(&table, threads, rec)
        }
        None => {
            let table = waitfree_build(&data, threads)
                .map_err(|e| e.to_string())?
                .table;
            all_pairs_mi(&table, threads)
        }
    };

    let unit = if in_bits { "bits" } else { "nats" };
    for (rank, (i, j, v)) in mi.candidate_edges(0.0).into_iter().take(top).enumerate() {
        let value = if in_bits { nats_to_bits(v) } else { v };
        writeln!(out, "{:3}  X{i} -- X{j}  {value:.6} {unit}", rank + 1)
            .map_err(|e| e.to_string())?;
    }
    if let Some(rec) = &metrics {
        writeln!(out, "{}", rec.snapshot().to_json()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_the_planted_pair_first() {
        // Two perfectly coupled columns + one independent.
        let dir = std::env::temp_dir().join("wfbn_cli_mi_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.csv");
        let mut text = String::new();
        for i in 0..400 {
            let a = i % 2;
            let c = (i / 2) % 2;
            text.push_str(&format!("{a},{a},{c}\n"));
        }
        std::fs::write(&path, text).unwrap();
        let args: Vec<String> = ["--in", path.to_str().unwrap(), "--top", "1", "--bits"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("  1  X0 -- X1"), "{text}");
        assert!(text.contains("1.000000 bits"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_switch_reports_pair_scans() {
        let dir = std::env::temp_dir().join("wfbn_cli_mi_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.csv");
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("{},{},{}\n", i % 2, (i / 2) % 2, (i / 4) % 2));
        }
        std::fs::write(&path, text).unwrap();
        let args: Vec<String> = [
            "--in",
            path.to_str().unwrap(),
            "--threads",
            "2",
            "--metrics",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"schema\": \"wfbn-metrics-v5\""), "{text}");
        assert!(text.contains("\"pairs_scanned\""), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
