//! `wfbn gen` — synthesize training data to CSV.

use crate::args::Flags;
use crate::commands::network_by_name;
use std::io::Write;
use wfbn_data::{
    csv::write_csv, CorrelatedChain, Dataset, Generator, Schema, UniformIndependent,
    ZipfIndependent,
};

fn parse_pair<A: std::str::FromStr, B: std::str::FromStr>(
    spec: &str,
    flag: &str,
) -> Result<(A, B), String> {
    let (a, b) = spec
        .split_once(',')
        .ok_or_else(|| format!("--{flag} expects the form A,B"))?;
    Ok((
        a.trim()
            .parse()
            .map_err(|_| format!("invalid first component in --{flag} {spec:?}"))?,
        b.trim()
            .parse()
            .map_err(|_| format!("invalid second component in --{flag} {spec:?}"))?,
    ))
}

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let samples: usize = flags.get_or("samples", 10_000)?;
    let seed: u64 = flags.get_or("seed", 42)?;

    let data: Dataset = if let Some(name) = flags.get("net") {
        network_by_name(name)?.sample(samples, seed)
    } else if let Some(spec) = flags.get("uniform") {
        let (n, r): (usize, u16) = parse_pair(spec, "uniform")?;
        let schema = Schema::uniform(n, r).map_err(|e| e.to_string())?;
        UniformIndependent::new(schema).generate(samples, seed)
    } else if let Some(spec) = flags.get("chain") {
        let (n, rho): (usize, f64) = parse_pair(spec, "chain")?;
        let schema = Schema::uniform(n, 2).map_err(|e| e.to_string())?;
        CorrelatedChain::new(schema, rho)
            .map_err(|e| e.to_string())?
            .generate(samples, seed)
    } else if let Some(spec) = flags.get("zipf") {
        let (n, s): (usize, f64) = parse_pair(spec, "zipf")?;
        let schema = Schema::uniform(n, 2).map_err(|e| e.to_string())?;
        ZipfIndependent::new(schema, s)
            .map_err(|e| e.to_string())?
            .generate(samples, seed)
    } else {
        return Err("no data source: pass --net, --uniform, --chain or --zipf".to_string());
    };

    match flags.get("out") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            write_csv(&data, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "wrote {} samples × {} variables to {path}",
                data.num_samples(),
                data.num_vars()
            )
            .map_err(|e| e.to_string())
        }
        None => {
            write_csv(&data, &mut *out).map_err(|e| e.to_string())?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdout_mode_emits_csv() {
        let args: Vec<String> = ["--uniform", "3,2", "--samples", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(text.lines().all(|l| l.split(',').count() == 3));
    }

    #[test]
    fn pair_parsing_errors() {
        assert!(parse_pair::<usize, u16>("5", "uniform").is_err());
        assert!(parse_pair::<usize, u16>("x,2", "uniform").is_err());
        assert!(parse_pair::<usize, f64>("5,2.5", "chain").is_ok());
    }
}
