//! `wfbn infer` — exact posterior queries on repository networks.

use crate::args::Flags;
use crate::commands::network_by_name;
use std::io::Write;
use wfbn_bn::infer::posterior;

fn parse_evidence(spec: &str) -> Result<Vec<(usize, u16)>, String> {
    if spec.trim().is_empty() {
        return Ok(vec![]);
    }
    spec.split(',')
        .map(|item| {
            let (var, state) = item
                .split_once('=')
                .ok_or_else(|| format!("evidence item {item:?} must be VAR=STATE"))?;
            Ok((
                var.trim()
                    .parse()
                    .map_err(|_| format!("bad evidence variable in {item:?}"))?,
                state
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad evidence state in {item:?}"))?,
            ))
        })
        .collect()
}

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let net = network_by_name(&flags.require::<String>("net")?)?;
    let target: usize = flags.require("target")?;
    let evidence = parse_evidence(flags.get("evidence").unwrap_or(""))?;

    let dist = posterior(&net, target, &evidence).map_err(|e| e.to_string())?;
    let ev_text = if evidence.is_empty() {
        String::new()
    } else {
        let items: Vec<String> = evidence.iter().map(|(v, s)| format!("X{v}={s}")).collect();
        format!(" | {}", items.join(", "))
    };
    writeln!(out, "P(X{target}{ev_text}):").map_err(|e| e.to_string())?;
    for (state, p) in dist.iter().enumerate() {
        writeln!(out, "  state {state}: {p:.6}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evidence_parsing() {
        assert_eq!(parse_evidence("").unwrap(), vec![]);
        assert_eq!(parse_evidence("3=1").unwrap(), vec![(3, 1)]);
        assert_eq!(parse_evidence("6=1, 2=0").unwrap(), vec![(6, 1), (2, 0)]);
        assert!(parse_evidence("6:1").is_err());
        assert!(parse_evidence("x=1").is_err());
        assert!(parse_evidence("1=y").is_err());
    }

    #[test]
    fn posterior_is_printed_and_normalized() {
        let args: Vec<String> = ["--net", "sprinkler", "--target", "2", "--evidence", "3=1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let probs: Vec<f64> = text
            .lines()
            .skip(1)
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(probs.len(), 2);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
