//! `wfbn build` — construct the potential table and report statistics.

use crate::args::Flags;
use crate::commands::load_csv;
use std::io::Write;
use std::time::Instant;
use wfbn_core::construct::{
    waitfree_build, waitfree_build_batched, waitfree_build_batched_recorded,
    waitfree_build_recorded,
};
use wfbn_core::rebalance::imbalance;
use wfbn_core::CoreMetrics;

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let flags = Flags::parse(args, &["metrics", "batched"])?;
    let path: String = flags.require("in")?;
    let threads: usize = flags.get_or("threads", 4)?;
    let with_metrics = flags.has_switch("metrics");
    let batched = flags.has_switch("batched");
    let data = load_csv(&path)?;

    let metrics = with_metrics.then(|| CoreMetrics::new(threads));
    let start = Instant::now();
    let built = match (&metrics, batched) {
        (Some(rec), false) => waitfree_build_recorded(&data, threads, rec),
        (Some(rec), true) => waitfree_build_batched_recorded(&data, threads, rec),
        (None, false) => waitfree_build(&data, threads),
        (None, true) => waitfree_build_batched(&data, threads),
    }
    .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();

    let w = &mut *out;
    writeln!(
        w,
        "dataset: {} samples × {} variables (state space {})",
        data.num_samples(),
        data.num_vars(),
        data.schema().state_space_size()
    )
    .and_then(|()| {
        writeln!(
            w,
            "built with {threads} wait-free thread(s){} in {:.1} ms",
            if batched { " (batched hot paths)" } else { "" },
            elapsed.as_secs_f64() * 1e3
        )
    })
    .and_then(|()| {
        writeln!(
            w,
            "potential table: {} distinct state strings, total count {}",
            built.table.num_entries(),
            built.table.total_count()
        )
    })
    .and_then(|()| {
        writeln!(
            w,
            "key traffic: {:.1}% forwarded between cores; drain imbalance {:.2}; partition imbalance {:.2}",
            100.0 * built.stats.forward_fraction(),
            built.stats.drain_imbalance(),
            imbalance(&built.table)
        )
    })
    .and_then(|()| {
        if batched {
            writeln!(
                w,
                "batching: {} blocks flushed, {} keys coalesced",
                built.stats.total_blocks_flushed(),
                built.stats.total_keys_coalesced()
            )
        } else {
            Ok(())
        }
    })
    .and_then(|()| {
        writeln!(w, "partition sizes: {:?}", built.table.partition_sizes())
    })
    .map_err(|e| e.to_string())?;

    if let Some(rec) = &metrics {
        writeln!(out, "{}", rec.snapshot().to_json()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_statistics() {
        let dir = std::env::temp_dir().join("wfbn_cli_build_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.csv");
        std::fs::write(&path, "0,1\n1,0\n0,1\n1,1\n").unwrap();
        let args: Vec<String> = ["--in", path.to_str().unwrap(), "--threads", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("4 samples × 2 variables"), "{text}");
        assert!(text.contains("3 distinct state strings"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_switch_appends_the_json_report() {
        let dir = std::env::temp_dir().join("wfbn_cli_build_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.csv");
        std::fs::write(&path, "0,1\n1,0\n0,1\n1,1\n").unwrap();
        let args: Vec<String> = ["--in", path.to_str().unwrap(), "--threads", "2", "--metrics"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"schema\": \"wfbn-metrics-v5\""), "{text}");
        assert!(text.contains("\"rows_encoded\""), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_switch_uses_the_block_granular_builder() {
        let dir = std::env::temp_dir().join("wfbn_cli_build_batched_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.csv");
        std::fs::write(&path, "0,1\n1,0\n0,1\n1,1\n").unwrap();
        let args: Vec<String> = [
            "--in",
            path.to_str().unwrap(),
            "--threads",
            "2",
            "--batched",
            "--metrics",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("batched hot paths"), "{text}");
        assert!(text.contains("blocks flushed"), "{text}");
        assert!(text.contains("3 distinct state strings"), "{text}");
        assert!(text.contains("\"blocks_flushed\""), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
