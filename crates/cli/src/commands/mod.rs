//! Subcommand implementations.

pub mod build;
pub mod cluster;
pub mod gen;
pub mod infer;
pub mod learn;
pub mod mi;
pub mod serve;
pub mod workload;

use wfbn_bn::network::BayesNet;
use wfbn_bn::repository;
use wfbn_data::Dataset;

/// Resolves a repository network by name.
pub fn network_by_name(name: &str) -> Result<BayesNet, String> {
    match name {
        "sprinkler" => Ok(repository::sprinkler()),
        "cancer" => Ok(repository::cancer()),
        "asia" => Ok(repository::asia()),
        "alarm-like" => Ok(repository::alarm_like()),
        "insurance-like" => Ok(repository::insurance_like()),
        other => Err(format!(
            "unknown network {other:?} (sprinkler|cancer|asia|alarm-like|insurance-like)"
        )),
    }
}

/// Loads a dataset from an integer CSV file, inferring the schema.
pub fn load_csv(path: &str) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    wfbn_data::csv::read_csv_infer_schema(&text).map_err(|e| format!("parsing {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_names_resolve() {
        for name in [
            "sprinkler",
            "cancer",
            "asia",
            "alarm-like",
            "insurance-like",
        ] {
            assert!(network_by_name(name).is_ok(), "{name}");
        }
        assert!(network_by_name("zzz").is_err());
    }
}
