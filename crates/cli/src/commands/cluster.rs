//! `wfbn cluster` — the PR 7 workload scenario matrix routed through a
//! sharded `wfbn-cluster` deployment, with the same SLO gates enforced.
//!
//! ```text
//! wfbn cluster --shards 4 --threads 2
//! wfbn cluster --scenario adversarial-partition --shards 4
//! wfbn cluster --negative-control --shards 2
//! ```
//!
//! Every scenario replays through [`wfbn_workload::replay_cluster`]: rows
//! are routed by the consistent-hash ring across `S` shard engines
//! (`--shards`), each with `P` builder threads (`--threads`), and queries
//! fan out through cluster clients that merge per-shard partial marginals.
//! The two PR 7 gates stay hard on this path — reader fairness per
//! scenario, and skewed-scenario p99 bounded against the uniform baseline
//! measured in the same run. `adversarial-partition` is the scenario the
//! cluster exists for: its rows collapse onto one `key % P` slice on a
//! single node, but the ring splits the same hot key range `S` ways first.
//!
//! `--negative-control` replays the seeded `starve-reader` scenario and
//! succeeds only if the fairness gate *fires* — proof the gate can fail on
//! the cluster path too.

use crate::args::Flags;
use std::io::Write;
use wfbn_workload::{
    check_fairness, check_skew_p99, generate, replay_cluster, ReplayConfig, Scenario,
    WorkloadSpec, FAIRNESS_BOUND, SKEW_P99_MULTIPLE,
};

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let flags = Flags::parse(args, &["negative-control"])?;
    let w = |e: std::io::Error| e.to_string();

    let shards: usize = flags.get_or("shards", 2)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let config = ReplayConfig {
        partitions: flags.get_or("threads", 2)?,
        ..ReplayConfig::default()
    };
    let mut base = WorkloadSpec::matrix_default(Scenario::Uniform);
    base.rows = flags.get_or("rows", base.rows)?;
    base.batches = flags.get_or("batches", base.batches)?;
    base.queries = flags.get_or("queries", base.queries)?;
    base.readers = flags.get_or("readers", base.readers)?;
    base.seed = flags.get_or("seed", base.seed)?;

    let replay_one = |scenario: Scenario| {
        let spec = WorkloadSpec { scenario, ..base };
        let workload = generate(&spec).map_err(|e| e.to_string())?;
        replay_cluster(&workload, &config, shards).map_err(|e| e.to_string())
    };

    if flags.has_switch("negative-control") {
        let report = replay_one(Scenario::StarveReader)?;
        return match check_fairness(
            Scenario::StarveReader,
            &report.served_per_reader,
            FAIRNESS_BOUND,
        ) {
            Err(msg) => {
                writeln!(out, "negative control: fairness gate fired as required").map_err(w)?;
                writeln!(out, "  {msg}").map_err(w)?;
                Ok(())
            }
            Ok(ratio) => Err(format!(
                "negative control failed: starve-reader passed the fairness \
                 gate on {shards} shards (ratio {ratio:.2}) — the gate cannot fire"
            )),
        };
    }

    let scenarios: Vec<Scenario> = match flags.get("scenario") {
        Some(name) => vec![Scenario::from_name(name).ok_or_else(|| {
            format!("unknown scenario {name:?} (try: wfbn workload --list)")
        })?],
        None => Scenario::MATRIX.to_vec(),
    };

    writeln!(
        out,
        "cluster matrix: S={} shards, P={} builder threads/shard, seed {}",
        shards, config.partitions, base.seed
    )
    .map_err(w)?;
    writeln!(
        out,
        "{:<22} {:>8} {:>10} {:>10} {:>9} {:>7}",
        "scenario", "queries", "p50_ns", "p99_ns", "fairness", "epochs"
    )
    .map_err(w)?;

    // The uniform baseline must be measured (in this run, on this cluster)
    // before any skew-gated scenario is judged against it; MATRIX orders
    // uniform first, and a --scenario run of a gated scenario measures its
    // own baseline here.
    let mut uniform_p99 = 0u64;
    let needs_baseline = scenarios
        .iter()
        .any(|s| s.skew_gated() && *s != Scenario::Uniform)
        && !scenarios.contains(&Scenario::Uniform);
    if needs_baseline {
        uniform_p99 = replay_one(Scenario::Uniform)?.p99_ns;
    }

    for &scenario in &scenarios {
        let report = replay_one(scenario)?;
        let ratio = check_fairness(scenario, &report.served_per_reader, FAIRNESS_BOUND)?;
        if scenario == Scenario::Uniform {
            uniform_p99 = report.p99_ns;
        }
        check_skew_p99(scenario, report.p99_ns, uniform_p99, SKEW_P99_MULTIPLE)?;
        writeln!(
            out,
            "{:<22} {:>8} {:>10} {:>10} {:>9.2} {:>7}",
            scenario.name(),
            report.total_queries,
            report.p50_ns,
            report.p99_ns,
            ratio,
            report.epochs_published
        )
        .map_err(w)?;
    }
    writeln!(
        out,
        "cluster gates: pass (fairness <= {FAIRNESS_BOUND:.1}, skew p99 <= \
         {SKEW_P99_MULTIPLE:.0}x uniform)"
    )
    .map_err(w)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> Result<String, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    const SMALL: &[&str] = &[
        "--rows", "120", "--batches", "4", "--queries", "36", "--readers", "2", "--threads",
        "1",
    ];

    #[test]
    fn matrix_replays_every_scenario_through_the_cluster() {
        let mut args = vec!["--shards", "2"];
        args.extend_from_slice(SMALL);
        let out = run_to_string(&args).unwrap();
        for name in [
            "uniform",
            "zipf",
            "burst",
            "adversarial-partition",
            "wide-sparse",
            "hot-query",
        ] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
        assert!(out.contains("cluster gates: pass"), "{out}");
    }

    #[test]
    fn single_scenario_runs_with_its_own_uniform_baseline() {
        let mut args = vec!["--shards", "2", "--scenario", "adversarial-partition"];
        args.extend_from_slice(SMALL);
        let out = run_to_string(&args).unwrap();
        assert!(out.contains("adversarial-partition"), "{out}");
        assert!(out.contains("cluster gates: pass"), "{out}");
    }

    #[test]
    fn negative_control_requires_the_gate_to_fire() {
        let mut args = vec!["--shards", "2", "--negative-control"];
        args.extend_from_slice(SMALL);
        let out = run_to_string(&args).unwrap();
        assert!(out.contains("fairness gate fired"), "{out}");
        assert!(out.contains("'starve-reader'"), "{out}");
    }

    #[test]
    fn zero_shards_is_rejected() {
        let err = run_to_string(&["--shards", "0"]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
    }

    #[test]
    fn unknown_scenario_is_reported() {
        let err = run_to_string(&["--scenario", "nope", "--shards", "1"]).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }
}
