//! Property-based tests for the core primitives.
//!
//! Strategy: generate random schemas (mixed arities) and random conformant
//! datasets, then assert the algebraic invariants that must hold for *every*
//! input — equivalence of all build schedules, codec bijectivity,
//! marginalization consistency, and information-theoretic inequalities.

use proptest::prelude::*;
use wfbn_core::allpairs::{all_pairs_mi, all_pairs_mi_fused};
use wfbn_core::construct::{sequential_build, waitfree_build, waitfree_build_with};
use wfbn_core::entropy::{conditional_mutual_information, entropy, mutual_information};
use wfbn_core::marginal::marginalize;
use wfbn_core::partition::KeyPartitioner;
use wfbn_core::pipeline::pipelined_build;
use wfbn_core::rebalance::rebalance;
use wfbn_core::KeyCodec;
use wfbn_data::{Dataset, Schema};

/// A random schema of 1–6 variables with arities 2–5.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(2u16..=5, 1..=6).prop_map(|arities| Schema::new(arities).unwrap())
}

/// A random dataset of 1–300 rows conforming to a random schema.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    schema_strategy().prop_flat_map(|schema| {
        let n = schema.num_vars();
        let arities: Vec<u16> = schema.arities().to_vec();
        prop::collection::vec(
            prop::collection::vec(0u16..5, n).prop_map(move |mut row| {
                for (s, &r) in row.iter_mut().zip(&arities) {
                    *s %= r;
                }
                row
            }),
            1..=300,
        )
        .prop_map(move |rows| {
            let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
            Dataset::from_rows(schema.clone(), &refs).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_round_trips_every_row(data in dataset_strategy()) {
        let codec = KeyCodec::new(data.schema());
        for row in data.rows() {
            let key = codec.encode(row);
            prop_assert!(key < codec.state_space());
            prop_assert_eq!(codec.decode_full(key), row.to_vec());
        }
    }

    #[test]
    fn all_build_schedules_agree(data in dataset_strategy(), p in 1usize..=6) {
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        let two_stage = waitfree_build(&data, p).unwrap();
        let pipelined = pipelined_build(&data, p).unwrap();
        prop_assert_eq!(two_stage.table.to_sorted_vec(), reference.clone());
        prop_assert_eq!(pipelined.table.to_sorted_vec(), reference);
        // Conservation: every row was either applied locally or forwarded
        // and drained, never both, never lost.
        for stats in [&two_stage.stats, &pipelined.stats] {
            prop_assert_eq!(stats.total_rows() as usize, data.num_samples());
            prop_assert_eq!(stats.total_forwarded(), stats.total_drained());
            prop_assert_eq!(
                stats.total_local() + stats.total_forwarded(),
                stats.total_rows()
            );
        }
    }

    #[test]
    fn partitioner_choice_never_changes_the_table(data in dataset_strategy(), p in 1usize..=5) {
        let space = data.schema().state_space_size();
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        for part in [
            KeyPartitioner::modulo(p),
            KeyPartitioner::range(p, space),
            KeyPartitioner::hashed(p),
        ] {
            prop_assert_eq!(
                waitfree_build_with(&data, part).unwrap().table.to_sorted_vec(),
                reference.clone()
            );
        }
    }

    #[test]
    fn table_mass_equals_sample_count(data in dataset_strategy(), p in 1usize..=6) {
        let built = waitfree_build(&data, p).unwrap();
        prop_assert_eq!(built.table.total_count() as usize, data.num_samples());
        prop_assert!(built.table.num_entries() <= data.num_samples());
    }

    #[test]
    fn marginal_sums_to_m_and_matches_brute_force(
        data in dataset_strategy(),
        p in 1usize..=4,
        threads in 1usize..=4,
    ) {
        let table = waitfree_build(&data, p).unwrap().table;
        let n = data.num_vars();
        // Take every single variable and the first pair (if any).
        let mut var_sets: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
        if n >= 2 {
            var_sets.push(vec![0, n - 1]);
        }
        for vars in var_sets {
            let marg = marginalize(&table, &vars, threads).unwrap();
            prop_assert_eq!(marg.sum() as usize, data.num_samples());
            // Brute force from the raw data.
            for idx in 0..marg.num_cells() {
                let mut rest = idx as u64;
                let states: Vec<u16> = marg
                    .arities()
                    .iter()
                    .map(|&r| {
                        let s = (rest % r) as u16;
                        rest /= r;
                        s
                    })
                    .collect();
                let expected = data
                    .rows()
                    .filter(|row| {
                        vars.iter().zip(&states).all(|(&v, &s)| row[v] == s)
                    })
                    .count() as u64;
                prop_assert_eq!(marg.count_at(idx), expected);
            }
        }
    }

    #[test]
    fn rebalanced_tables_preserve_content_and_marginals(data in dataset_strategy(), p in 2usize..=5) {
        let built = waitfree_build(&data, p).unwrap().table;
        let before = built.to_sorted_vec();
        let n = data.num_vars();
        let marg_before = marginalize(&built, &[n - 1], 1).unwrap();
        let balanced = rebalance(built);
        prop_assert_eq!(balanced.to_sorted_vec(), before);
        let marg_after = marginalize(&balanced, &[n - 1], p).unwrap();
        prop_assert_eq!(marg_after, marg_before);
        let sizes = balanced.partition_sizes();
        let (min, max) = (
            *sizes.iter().min().unwrap(),
            *sizes.iter().max().unwrap(),
        );
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn information_inequalities_hold(data in dataset_strategy()) {
        let n = data.num_vars();
        prop_assume!(n >= 2);
        let table = sequential_build(&data).unwrap().table;
        let pair = marginalize(&table, &[0, 1], 1).unwrap();
        let mi = mutual_information(&pair);
        let hx = entropy(&pair.collapse(&[0]));
        let hy = entropy(&pair.collapse(&[1]));
        let hxy = entropy(&pair);
        // 0 ≤ I(X;Y) ≤ min(H(X), H(Y)), and I = H(X)+H(Y)−H(X,Y).
        prop_assert!(mi >= 0.0);
        prop_assert!(mi <= hx.min(hy) + 1e-9);
        prop_assert!((mi - (hx + hy - hxy)).abs() < 1e-9);
    }

    #[test]
    fn cmi_is_nonnegative_and_consistent(data in dataset_strategy()) {
        let n = data.num_vars();
        prop_assume!(n >= 3);
        let table = sequential_build(&data).unwrap().table;
        let triple = marginalize(&table, &[0, 1, 2], 1).unwrap();
        let cmi = conditional_mutual_information(&triple.reorder(&[0, 1, 2]));
        prop_assert!(cmi >= 0.0);
        // Chain rule check: I(X;Y,Z) = I(X;Y) + I(X;Z|Y) — verify both
        // decompositions of I(X; Y,Z) agree.
        let ixz_given_y = conditional_mutual_information(&triple.reorder(&[0, 2, 1]));
        let ixy = mutual_information(&marginalize(&table, &[0, 1], 1).unwrap());
        let ixz = mutual_information(&marginalize(&table, &[0, 2], 1).unwrap());
        let ixy_given_z = conditional_mutual_information(&triple.reorder(&[0, 1, 2]));
        let lhs = ixy + ixz_given_y;
        let rhs = ixz + ixy_given_z;
        prop_assert!((lhs - rhs).abs() < 1e-9, "chain rule violated: {} vs {}", lhs, rhs);
    }

    #[test]
    fn all_pairs_schedules_agree_on_random_data(data in dataset_strategy(), p in 1usize..=4) {
        prop_assume!(data.num_vars() >= 2);
        let table = waitfree_build(&data, p).unwrap().table;
        let pairwise = all_pairs_mi(&table, p);
        let fused = all_pairs_mi_fused(&table, p);
        prop_assert!(pairwise.max_abs_diff(&fused) < 1e-12);
        // Spot-check against a direct computation for the (0, 1) pair.
        let direct = mutual_information(&marginalize(&table, &[0, 1], 1).unwrap());
        prop_assert!((pairwise.get(0, 1) - direct).abs() < 1e-12);
    }
}
