//! End-to-end checks of the single-writer ownership auditor
//! (`--features ownership-audit`).
#![cfg(feature = "ownership-audit")]

use wfbn_concurrent::audit;
use wfbn_core::construct::{sequential_build, waitfree_build, waitfree_build_batched};
use wfbn_core::pipeline::{pipelined_build, pipelined_build_batched};
use wfbn_core::CountTable;
use wfbn_data::{Generator, Schema, UniformIndependent, ZipfIndependent};

/// The real two-stage build must satisfy the single-writer discipline: every
/// word of every partition and queue has one writer per stage. Large enough
/// to force table growth and multi-segment queues mid-build.
#[test]
fn waitfree_build_passes_the_audit() {
    let data = UniformIndependent::new(Schema::uniform(10, 2).unwrap()).generate(20_000, 1);
    let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
    for p in [2usize, 4, 7] {
        let built = waitfree_build(&data, p).unwrap();
        assert_eq!(built.table.to_sorted_vec(), reference, "p={p}");
    }
}

/// Skewed keys concentrate traffic on few words — the adversarial case for
/// a would-be ownership bug, and the heaviest one for the shadow map.
#[test]
fn skewed_build_passes_the_audit() {
    let schema = Schema::new(vec![2, 3, 4, 2, 5]).unwrap();
    let data = ZipfIndependent::new(schema, 1.5)
        .unwrap()
        .generate(10_000, 3);
    let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
    assert_eq!(
        waitfree_build(&data, 4).unwrap().table.to_sorted_vec(),
        reference
    );
}

/// The pipelined variant overlaps the stages but keeps the same per-word
/// ownership, so it must also audit clean.
#[test]
fn pipelined_build_passes_the_audit() {
    let data = UniformIndependent::new(Schema::uniform(8, 3).unwrap()).generate(15_000, 2);
    let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
    let built = pipelined_build(&data, 4).unwrap();
    assert_eq!(built.table.to_sorted_vec(), reference);
}

/// The batched builders move data in `push_block` chunks through the
/// write-combining buffers: every word of a flushed block must still have
/// exactly one writer per stage. Skew maximizes coalescing, and 20k rows
/// force multi-segment blocks, so a flush that strayed onto a foreign
/// segment or a combiner buffer shared between cores would panic here.
#[test]
fn batched_block_flushes_stay_single_writer() {
    let uniform = UniformIndependent::new(Schema::uniform(10, 2).unwrap()).generate(20_000, 1);
    let skewed = ZipfIndependent::new(Schema::new(vec![2, 3, 4, 2, 5]).unwrap(), 1.5)
        .unwrap()
        .generate(10_000, 3);
    for data in [&uniform, &skewed] {
        let reference = sequential_build(data).unwrap().table.to_sorted_vec();
        for p in [2usize, 4, 7] {
            assert_eq!(
                waitfree_build_batched(data, p).unwrap().table.to_sorted_vec(),
                reference,
                "batched two-stage p={p}"
            );
            assert_eq!(
                pipelined_build_batched(data, p).unwrap().table.to_sorted_vec(),
                reference,
                "batched pipelined p={p}"
            );
        }
    }
}

/// Negative control: hand the *same* table to two "cores" in the same stage
/// — the bug class the auditor exists to catch — and require the panic.
#[test]
fn shared_partition_is_reported_as_violation() {
    let build = audit::BuildAudit::new();
    let mut table = CountTable::new();
    {
        let _core0 = audit::enter(&build, 0);
        table.increment(17, 1);
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _core1 = audit::enter(&build, 1);
        table.increment(17, 1);
    }));
    let err = result.expect_err("two cores incrementing one partition in one stage must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("violation panics with a formatted message");
    assert!(msg.contains("single-writer violation"), "{msg}");
}
