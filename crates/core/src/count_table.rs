//! Open-addressed `key → count` hash table.
//!
//! One `CountTable` is a single core's private partition of the distributed
//! potential table. It is deliberately *not* thread-safe: the wait-free
//! primitive guarantees by construction that at any instant each table is
//! touched by exactly one thread, so the table can use plain loads and
//! stores — the entire point of the paper's design.
//!
//! Implementation: linear-probing open addressing over two parallel arrays
//! (keys, counts) with power-of-two capacity, `mix64` slot hashing, and the
//! all-ones key as the empty sentinel (schemas guarantee real keys are
//! strictly below `u64::MAX`). Linear probing keeps the probe sequence
//! within one or two cache lines, which is what makes the private-table
//! design fast in practice.
//!
//! The table counts *probes* (slot inspections) as it works — a single local
//! `u64` increment, cheap enough to leave always-on. The PRAM simulator
//! charges cycle costs from these counters, and the stats surface in
//! [`BuildStats`](crate::stats::BuildStats).

/// Empty-slot sentinel. `Schema` guarantees every valid key is `< u64::MAX`.
const EMPTY: u64 = u64::MAX;

/// Maximum load factor before growth, as (numerator, denominator).
const MAX_LOAD: (usize, usize) = (7, 10);

/// An open-addressed hash table from `u64` keys to `u64` counts.
///
/// # Examples
///
/// ```
/// use wfbn_core::CountTable;
///
/// let mut t = CountTable::new();
/// t.increment(42, 1);
/// t.increment(42, 2);
/// t.increment(7, 1);
/// assert_eq!(t.get(42), 3);
/// assert_eq!(t.get(7), 1);
/// assert_eq!(t.get(999), 0);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.total_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CountTable {
    keys: Vec<u64>,
    counts: Vec<u64>,
    /// Number of occupied slots.
    len: usize,
    /// `capacity − 1`; capacity is always a power of two.
    mask: usize,
    /// Total slot inspections performed (instrumentation).
    probes: u64,
    /// Number of growth (rehash) events (instrumentation).
    grows: u64,
}

impl Default for CountTable {
    fn default() -> Self {
        Self::new()
    }
}

impl CountTable {
    /// Initial capacity for `new()` (slots).
    const INITIAL_CAPACITY: usize = 16;

    /// Creates an empty table with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::INITIAL_CAPACITY)
    }

    /// Creates an empty table able to hold roughly `entries` keys before
    /// growing.
    pub fn with_capacity(entries: usize) -> Self {
        // Size so that `entries` stays under the load limit.
        let slots = (entries.max(1) * MAX_LOAD.1 / MAX_LOAD.0 + 1)
            .next_power_of_two()
            .max(Self::INITIAL_CAPACITY);
        Self {
            keys: vec![EMPTY; slots],
            counts: vec![0; slots],
            len: 0,
            mask: slots - 1,
            probes: 0,
            grows: 0,
        }
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Total slot inspections since construction (instrumentation counter).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Number of times the table grew (rehashed) since construction.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Sum of all counts (the number of update operations applied, weighted).
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (wfbn_concurrent::mix64(key) as usize) & self.mask
    }

    /// Reports the key and count words of `slot` to the ownership auditor.
    #[cfg(feature = "ownership-audit")]
    #[inline]
    fn record_slot(&self, slot: usize) {
        use core::mem::size_of;
        wfbn_concurrent::audit::record_write((&raw const self.keys[slot]).cast(), size_of::<u64>());
        wfbn_concurrent::audit::record_write(
            (&raw const self.counts[slot]).cast(),
            size_of::<u64>(),
        );
    }

    /// Adds `by` to `key`'s count, inserting the key if absent.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX` (the reserved sentinel) — unreachable for
    /// keys produced by a validated [`KeyCodec`](crate::codec::KeyCodec).
    #[inline]
    pub fn increment(&mut self, key: u64, by: u64) {
        assert_ne!(key, EMPTY, "key u64::MAX is reserved");
        if (self.len + 1) * MAX_LOAD.1 > self.keys.len() * MAX_LOAD.0 {
            self.grow();
        }
        let mut slot = self.slot_of(key);
        loop {
            self.probes += 1;
            let k = self.keys[slot];
            if k == key {
                self.counts[slot] += by;
                #[cfg(feature = "ownership-audit")]
                self.record_slot(slot);
                return;
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.counts[slot] = by;
                self.len += 1;
                #[cfg(feature = "ownership-audit")]
                self.record_slot(slot);
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Like [`increment`](Self::increment), but returns how many slot
    /// inspections the operation cost (the delta of [`probes`](Self::probes)).
    ///
    /// The observability layer feeds the return value into the probe-length
    /// histogram: exactly one histogram entry per table increment. If the
    /// operation triggered a growth, the rehash's re-insert probes are
    /// attributed to this increment (they land in the histogram's tail
    /// bucket, making growth spikes visible).
    #[inline]
    pub fn increment_probed(&mut self, key: u64, by: u64) -> u64 {
        let before = self.probes;
        self.increment(key, by);
        self.probes - before
    }

    /// Grows until `additional` more *distinct* keys fit under the load
    /// limit. Called once per block by the batched paths so the slot mask is
    /// stable across the whole block (no mid-block rehash), and usable as
    /// the rows-based capacity hint for streaming tables.
    pub fn reserve(&mut self, additional: usize) {
        while (self.len + additional) * MAX_LOAD.1 > self.keys.len() * MAX_LOAD.0 {
            self.grow();
        }
    }

    /// Applies a block of `(key, by)` pairs, equivalent to calling
    /// [`increment`](Self::increment) for each pair in order.
    ///
    /// The batched stage-2 fast path: capacity for the whole block is
    /// reserved up front (one load check per block instead of one per key,
    /// and a stable mask), then each 16-pair tile is **pre-hashed** — slot
    /// indices computed and their cache lines prefetched — before any
    /// probing starts, so the table's random-access misses overlap instead
    /// of serializing.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX` (the reserved sentinel).
    pub fn increment_block(&mut self, block: &[(u64, u64)]) {
        self.increment_block_probed(block, |_| {});
    }

    /// Like [`increment_block`](Self::increment_block), but calls `probe`
    /// with the slot-inspection count of every applied pair — exactly one
    /// call per pair, so the observability layer's probe histogram keeps its
    /// one-entry-per-increment mass invariant on the batched path.
    pub fn increment_block_probed(&mut self, block: &[(u64, u64)], probe: impl FnMut(u64)) {
        self.apply_block_probed(block, probe);
    }

    /// Applies a block of keys, each incrementing its count by 1 —
    /// `increment_block` without materializing `(key, 1)` pairs. The
    /// sequential batched build feeds [`KeyCodec::encode_rows`]
    /// (crate::codec::KeyCodec::encode_rows) output straight in.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX` (the reserved sentinel).
    pub fn increment_keys(&mut self, keys: &[u64]) {
        self.apply_block_probed(keys, |_| {});
    }

    /// [`increment_keys`](Self::increment_keys) with one `probe` callback
    /// per key, mirroring
    /// [`increment_block_probed`](Self::increment_block_probed).
    pub fn increment_keys_probed(&mut self, keys: &[u64], probe: impl FnMut(u64)) {
        self.apply_block_probed(keys, probe);
    }

    /// Shared reserve → pre-hash → probe engine behind the block entry
    /// points; monomorphized per item shape ( bare key or `(key, by)` pair).
    fn apply_block_probed<I: BlockItem>(&mut self, block: &[I], mut probe: impl FnMut(u64)) {
        /// Pre-hash tile width: long enough to cover the prefetch latency,
        /// short enough that the tile's slots stay in the L1 miss queue.
        const TILE: usize = 16;
        self.reserve(block.len());
        let mut slots = [0usize; TILE];
        for chunk in block.chunks(TILE) {
            for (i, item) in chunk.iter().enumerate() {
                let key = item.key();
                assert_ne!(key, EMPTY, "key u64::MAX is reserved");
                let slot = self.slot_of(key);
                slots[i] = slot;
                prefetch_slot(&self.keys[slot]);
                prefetch_slot(&self.counts[slot]);
            }
            for (i, item) in chunk.iter().enumerate() {
                let (key, by) = (item.key(), item.by());
                let before = self.probes;
                let mut slot = slots[i];
                loop {
                    self.probes += 1;
                    let k = self.keys[slot];
                    if k == key {
                        self.counts[slot] += by;
                        break;
                    }
                    if k == EMPTY {
                        self.keys[slot] = key;
                        self.counts[slot] = by;
                        self.len += 1;
                        break;
                    }
                    slot = (slot + 1) & self.mask;
                }
                #[cfg(feature = "ownership-audit")]
                self.record_slot(slot);
                probe(self.probes - before);
            }
        }
    }

    /// Returns `key`'s count (0 if absent).
    #[inline]
    pub fn get(&self, key: u64) -> u64 {
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return self.counts[slot];
            }
            if k == EMPTY {
                return 0;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key) != 0 || {
            // A key could in principle be present with count 0 (inserted via
            // increment(k, 0)); resolve precisely.
            let mut slot = self.slot_of(key);
            loop {
                let k = self.keys[slot];
                if k == key {
                    return true;
                }
                if k == EMPTY {
                    return false;
                }
                slot = (slot + 1) & self.mask;
            }
        }
    }

    fn grow(&mut self) {
        self.grows += 1;
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_slots]);
        let old_counts = std::mem::replace(&mut self.counts, vec![0; new_slots]);
        // The old arrays go back to the allocator below; a later allocation
        // owned by another core may reuse their addresses.
        #[cfg(feature = "ownership-audit")]
        {
            wfbn_concurrent::audit::retire_range(
                old_keys.as_ptr().cast(),
                core::mem::size_of_val(old_keys.as_slice()),
            );
            wfbn_concurrent::audit::retire_range(
                old_counts.as_ptr().cast(),
                core::mem::size_of_val(old_counts.as_slice()),
            );
        }
        self.mask = new_slots - 1;
        self.len = 0;
        for (key, count) in old_keys.into_iter().zip(old_counts) {
            if key != EMPTY {
                // Re-insert without the load check (capacity is sufficient).
                let mut slot = self.slot_of(key);
                loop {
                    self.probes += 1;
                    if self.keys[slot] == EMPTY {
                        self.keys[slot] = key;
                        self.counts[slot] = count;
                        self.len += 1;
                        #[cfg(feature = "ownership-audit")]
                        self.record_slot(slot);
                        break;
                    }
                    slot = (slot + 1) & self.mask;
                }
            }
        }
    }

    /// Iterates over `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.keys
            .iter()
            .zip(&self.counts)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &c)| (k, c))
    }

    /// Merges all entries of `other` into `self`.
    pub fn merge_from(&mut self, other: &CountTable) {
        for (k, c) in other.iter() {
            self.increment(k, c);
        }
    }

    /// Drains this table into a sorted `(key, count)` vector (test helper;
    /// sorting makes results comparable across implementations).
    pub fn to_sorted_vec(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.iter().collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }
}

/// Item shape accepted by the block engine: a bare key (count 1) or an
/// explicit `(key, count)` pair. Private — the public surface stays the
/// concrete `increment_keys*` / `increment_block*` methods.
trait BlockItem: Copy {
    /// The table key.
    fn key(&self) -> u64;
    /// The count delta.
    fn by(&self) -> u64;
}

impl BlockItem for u64 {
    #[inline(always)]
    fn key(&self) -> u64 {
        *self
    }
    #[inline(always)]
    fn by(&self) -> u64 {
        1
    }
}

impl BlockItem for (u64, u64) {
    #[inline(always)]
    fn key(&self) -> u64 {
        self.0
    }
    #[inline(always)]
    fn by(&self) -> u64 {
        self.1
    }
}

/// Hints the cache to pull `p`'s line; a no-op off x86-64 and under Miri
/// (which does not model caches and may reject hint intrinsics).
#[inline(always)]
pub(crate) fn prefetch_slot<T>(p: *const T) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: _mm_prefetch is a pure performance hint with no memory effects;
    // it is defined for any address value.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    let _ = p;
}

#[cfg(feature = "ownership-audit")]
impl Drop for CountTable {
    fn drop(&mut self) {
        // Release the table's words from the shadow map so a reused
        // allocation cannot be mistaken for a cross-core conflict.
        wfbn_concurrent::audit::retire_range(
            self.keys.as_ptr().cast(),
            core::mem::size_of_val(self.keys.as_slice()),
        );
        wfbn_concurrent::audit::retire_range(
            self.counts.as_ptr().cast(),
            core::mem::size_of_val(self.counts.as_slice()),
        );
    }
}

impl FromIterator<(u64, u64)> for CountTable {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut t = CountTable::new();
        for (k, c) in iter {
            t.increment(k, c);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut t = CountTable::new();
        for i in 0..100u64 {
            t.increment(i % 10, 1);
        }
        assert_eq!(t.len(), 10);
        for k in 0..10u64 {
            assert_eq!(t.get(k), 10);
        }
        assert_eq!(t.total_count(), 100);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = CountTable::with_capacity(4);
        let n = 10_000u64;
        for i in 0..n {
            t.increment(i, 1);
        }
        assert_eq!(t.len() as u64, n);
        assert!(t.capacity() >= n as usize);
        for i in (0..n).step_by(97) {
            assert_eq!(t.get(i), 1);
        }
        assert_eq!(t.get(n + 1), 0);
    }

    #[test]
    fn handles_adversarially_clustered_keys() {
        // Sequential keys cluster badly without a mixing hash. Pre-size so
        // the probe counter measures insert probes, not growth rehashing.
        let mut t = CountTable::with_capacity(5_000);
        for i in 0..5_000u64 {
            t.increment(i, 1);
        }
        // Average probes per op should stay small (< 2 with mixing at our
        // load factor; a clustered/unmixed table would blow far past this).
        let per_op = t.probes() as f64 / 5_000.0;
        assert!(per_op < 2.0, "probe avalanche failed: {per_op} probes/op");
    }

    #[test]
    fn zero_increment_inserts_key() {
        let mut t = CountTable::new();
        t.increment(5, 0);
        assert_eq!(t.get(5), 0);
        assert!(t.contains(5));
        assert!(!t.contains(6));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn sentinel_key_rejected() {
        let mut t = CountTable::new();
        t.increment(u64::MAX, 1);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a: CountTable = [(1u64, 2u64), (2, 3)].into_iter().collect();
        let b: CountTable = [(2u64, 1u64), (3, 7)].into_iter().collect();
        a.merge_from(&b);
        assert_eq!(a.to_sorted_vec(), vec![(1, 2), (2, 4), (3, 7)]);
    }

    #[test]
    fn iter_visits_each_entry_once() {
        let mut t = CountTable::new();
        for i in 0..500u64 {
            t.increment(i * 3, i);
        }
        let mut seen: Vec<(u64, u64)> = t.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 500);
        for (i, &(k, c)) in seen.iter().enumerate() {
            assert_eq!(k, i as u64 * 3);
            assert_eq!(c, i as u64);
        }
    }

    #[test]
    fn matches_std_hashmap_on_random_workload() {
        use std::collections::HashMap;
        let mut t = CountTable::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        // Deterministic pseudo-random workload.
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            x = wfbn_concurrent::mix64(x);
            let key = x % 4096;
            let by = x >> 60;
            t.increment(key, by);
            *reference.entry(key).or_insert(0) += by;
        }
        assert_eq!(t.len(), reference.len());
        for (&k, &c) in &reference {
            assert_eq!(t.get(k), c, "mismatch at key {k}");
        }
    }

    #[test]
    fn large_counts_do_not_wrap() {
        let mut t = CountTable::new();
        t.increment(1, u64::MAX / 2);
        t.increment(1, u64::MAX / 4);
        assert_eq!(t.get(1), u64::MAX / 2 + u64::MAX / 4);
    }

    #[test]
    fn with_capacity_avoids_growth() {
        let mut t = CountTable::with_capacity(1000);
        let cap = t.capacity();
        for i in 0..1000u64 {
            t.increment(i, 1);
        }
        assert_eq!(t.capacity(), cap, "should not have grown");
        assert_eq!(t.grows(), 0);
    }

    #[test]
    fn grows_counter_tracks_rehash_events() {
        let mut t = CountTable::with_capacity(4);
        let cap0 = t.capacity();
        for i in 0..10_000u64 {
            t.increment(i, 1);
        }
        // Doubling from cap0 to the final capacity takes exactly
        // log2(final / cap0) growth events.
        let expected = (t.capacity() / cap0).trailing_zeros() as u64;
        assert_eq!(t.grows(), expected);
        assert!(t.grows() > 0);
    }

    #[test]
    fn increment_block_matches_scalar_increments() {
        // Random workload with duplicates, block sizes straddling the
        // pre-hash tile and forcing growth from the default capacity.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut pairs = Vec::new();
        for _ in 0..5_000 {
            x = wfbn_concurrent::mix64(x);
            pairs.push((x % 1024, 1 + (x >> 61)));
        }
        for block_len in [1usize, 15, 16, 17, 255, 5_000] {
            let mut scalar = CountTable::new();
            let mut batched = CountTable::new();
            for block in pairs.chunks(block_len) {
                batched.increment_block(block);
                for &(k, by) in block {
                    scalar.increment(k, by);
                }
            }
            assert_eq!(
                scalar.to_sorted_vec(),
                batched.to_sorted_vec(),
                "block_len = {block_len}"
            );
        }
    }

    #[test]
    fn increment_block_probed_reports_one_delta_per_pair() {
        let mut t = CountTable::with_capacity(64);
        let block: Vec<(u64, u64)> = (0..40u64).map(|i| (i % 20, 1)).collect();
        let mut deltas = Vec::new();
        t.increment_block_probed(&block, |d| deltas.push(d));
        assert_eq!(deltas.len(), block.len());
        assert!(deltas.iter().all(|&d| d >= 1));
        assert_eq!(deltas.iter().sum::<u64>(), t.probes());
    }

    #[test]
    fn increment_keys_matches_unit_increments() {
        let mut a = CountTable::new();
        let mut b = CountTable::new();
        let keys: Vec<u64> = (0..3_000u64).map(|i| (i * i) % 700).collect();
        a.increment_keys(&keys);
        for &k in &keys {
            b.increment(k, 1);
        }
        assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
        let mut deltas = 0u64;
        let mut c = CountTable::new();
        c.increment_keys_probed(&keys, |_| deltas += 1);
        assert_eq!(deltas, keys.len() as u64);
    }

    #[test]
    fn reserve_prevents_mid_block_growth() {
        let mut t = CountTable::new();
        t.reserve(10_000);
        let grows_after_reserve = t.grows();
        let block: Vec<(u64, u64)> = (0..10_000u64).map(|k| (k, 1)).collect();
        t.increment_block(&block);
        assert_eq!(t.grows(), grows_after_reserve, "block must not rehash");
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn increment_block_rejects_sentinel_key() {
        let mut t = CountTable::new();
        t.increment_block(&[(3, 1), (u64::MAX, 1)]);
    }

    #[test]
    fn increment_probed_returns_the_probe_delta() {
        let mut t = CountTable::with_capacity(1000);
        let mut total = 0u64;
        for i in 0..1000u64 {
            let d = t.increment_probed(i, 1);
            assert!(d >= 1, "every increment inspects at least one slot");
            total += d;
        }
        assert_eq!(total, t.probes());
    }
}
