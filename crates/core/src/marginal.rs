//! The parallel marginalization primitive (paper Algorithm 3).
//!
//! Marginalization sums the potential table over every variable *not* in the
//! set of interest **V**. The naïve formulation iterates the full state
//! space — `O(∏ r_j)`, exponential in `n`. The paper's observation: real
//! tables are *sparse* (at most `m` distinct state strings were ever
//! observed), so it suffices to iterate the stored entries. For each entry,
//! only the variables in **V** are decoded from the key (one divide+modulo
//! each — [`KeyCodec::marginal_key`]); the count is accumulated into a dense
//! marginal table of size `∏_{v∈V} r_v`.
//!
//! Parallelization is pure data parallelism: each thread scans a disjoint
//! subset of the partitions into a *private* partial marginal, and the
//! partials are summed at the end ("merge" step of Algorithm 3). No thread
//! ever reads another's partition — the cache-friendliness claim of the
//! paper.

use crate::codec::KeyCodec;
use crate::error::CoreError;
use crate::potential::PotentialTable;
use wfbn_concurrent::run_on_threads;
use wfbn_obs::{CoreRecorder, Counter, NoopRecorder, Recorder, Stage};

/// Refuse to materialize marginal tables above this many cells (2^28 cells
/// = 2 GiB of counts); marginals in structure learning are tiny (pairs and
/// triples), so hitting this indicates a caller bug.
const MAX_MARGINAL_CELLS: u64 = 1 << 28;

/// A dense marginal count table over an ordered set of variables.
///
/// Cell order is mixed-radix with the *first* variable fastest, matching
/// [`KeyCodec::marginal_key`].
///
/// # Examples
///
/// ```
/// use wfbn_core::{construct::sequential_build, marginal::marginalize};
/// use wfbn_data::{Dataset, Schema};
///
/// let schema = Schema::uniform(3, 2).unwrap();
/// let d = Dataset::from_rows(
///     schema,
///     &[&[0, 0, 1], &[0, 1, 1], &[1, 1, 0], &[0, 1, 0]],
/// )
/// .unwrap();
/// let table = sequential_build(&d).unwrap().table;
/// let m = marginalize(&table, &[1], 1).unwrap();
/// assert_eq!(m.count(&[0]), 1); // X₁ = 0 observed once
/// assert_eq!(m.count(&[1]), 3);
/// assert_eq!(m.prob(&[1]), 0.75);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalTable {
    vars: Vec<usize>,
    arities: Vec<u64>,
    counts: Vec<u64>,
    /// Total observations in the source table (the paper's `m`; divisor for
    /// probabilities — footnote 2 of the paper).
    total: u64,
}

impl MarginalTable {
    /// Creates a zeroed marginal table (used by the accumulation loops).
    fn zeroed(codec: &KeyCodec, vars: &[usize], total: u64) -> Result<Self, CoreError> {
        codec.validate_vars(vars)?;
        let arities: Vec<u64> = vars.iter().map(|&v| codec.arity(v)).collect();
        let cells: u64 = arities.iter().product();
        if cells > MAX_MARGINAL_CELLS {
            return Err(CoreError::BadVariableSet {
                reason: "marginal state space too large to materialize",
            });
        }
        Ok(Self {
            vars: vars.to_vec(),
            arities,
            counts: vec![0; cells as usize],
            total,
        })
    }

    /// The variables this marginal ranges over (strictly increasing).
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    /// Arity of each marginal variable, in `vars` order.
    pub fn arities(&self) -> &[u64] {
        &self.arities
    }

    /// Number of cells (`∏ r_v`).
    pub fn num_cells(&self) -> usize {
        self.counts.len()
    }

    /// Total observations `m` in the source potential table.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all cells (equals [`total`](Self::total) for a full marginal).
    pub fn sum(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mixed-radix cell index of a marginal state assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length or any state is out of range.
    pub fn index_of(&self, states: &[u16]) -> usize {
        assert_eq!(states.len(), self.vars.len(), "wrong assignment width");
        let mut idx = 0u64;
        let mut stride = 1u64;
        for (&s, &r) in states.iter().zip(&self.arities) {
            assert!(u64::from(s) < r, "state {s} out of range (arity {r})");
            idx += u64::from(s) * stride;
            stride *= r;
        }
        idx as usize
    }

    /// Count of one marginal state assignment.
    pub fn count(&self, states: &[u16]) -> u64 {
        self.counts[self.index_of(states)]
    }

    /// Count by raw cell index.
    pub fn count_at(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Probability of one marginal state assignment (count / m).
    pub fn prob(&self, states: &[u16]) -> f64 {
        self.count(states) as f64 / self.total as f64
    }

    /// Probability by raw cell index.
    pub fn prob_at(&self, idx: usize) -> f64 {
        self.counts[idx] as f64 / self.total as f64
    }

    /// All cells as probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        let m = self.total as f64;
        self.counts.iter().map(|&c| c as f64 / m).collect()
    }

    /// Sums this marginal down to the variables at `keep` (positions into
    /// [`vars`](Self::vars), strictly increasing).
    ///
    /// This is the paper's optimization for Equation 1: compute the pairwise
    /// joint P(x, y) once, then *derive* P(x) and P(y) from it instead of
    /// rescanning the potential table.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty, out of range, or not strictly increasing.
    pub fn collapse(&self, keep: &[usize]) -> MarginalTable {
        assert!(!keep.is_empty(), "keep set must be non-empty");
        assert!(
            keep.windows(2).all(|w| w[0] < w[1]) && *keep.last().unwrap() < self.vars.len(),
            "keep positions must be strictly increasing and in range"
        );
        let kept_vars: Vec<usize> = keep.iter().map(|&k| self.vars[k]).collect();
        let kept_arities: Vec<u64> = keep.iter().map(|&k| self.arities[k]).collect();
        let cells: u64 = kept_arities.iter().product();
        let mut counts = vec![0u64; cells as usize];
        // For each source cell, compute the destination index by extracting
        // the kept digits.
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let mut rest = idx as u64;
            let mut dst = 0u64;
            let mut dst_stride = 1u64;
            let mut keep_iter = keep.iter().peekable();
            for (pos, &r) in self.arities.iter().enumerate() {
                let digit = rest % r;
                rest /= r;
                if keep_iter.peek() == Some(&&pos) {
                    keep_iter.next();
                    dst += digit * dst_stride;
                    dst_stride *= r;
                }
            }
            counts[dst as usize] += c;
        }
        MarginalTable {
            vars: kept_vars,
            arities: kept_arities,
            counts,
            total: self.total,
        }
    }

    /// Builds a marginal from raw parts (internal; callers go through
    /// [`marginalize`] or [`MarginalTable::reorder`]).
    pub(crate) fn from_raw_parts(
        vars: Vec<usize>,
        arities: Vec<u64>,
        counts: Vec<u64>,
        total: u64,
    ) -> Self {
        debug_assert_eq!(vars.len(), arities.len());
        debug_assert_eq!(
            counts.len() as u64,
            arities.iter().product::<u64>(),
            "cell count must match the arity product"
        );
        Self {
            vars,
            arities,
            counts,
            total,
        }
    }

    /// Returns the same marginal with its variables permuted into `order`.
    ///
    /// `order` must be a permutation of [`vars`](Self::vars). This is how a
    /// sorted marginal from [`marginalize`] is arranged into the
    /// pair-first layout that
    /// [`conditional_mutual_information`](crate::entropy::conditional_mutual_information)
    /// expects (`X`, `Y`, then the conditioning set).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the marginal's variables.
    pub fn reorder(&self, order: &[usize]) -> MarginalTable {
        assert_eq!(order.len(), self.vars.len(), "order must cover all vars");
        let positions: Vec<usize> = order
            .iter()
            .map(|&v| {
                self.vars
                    .iter()
                    .position(|&w| w == v)
                    .unwrap_or_else(|| panic!("variable {v} not in marginal"))
            })
            .collect();
        {
            let mut sorted = positions.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), positions.len(), "order contains duplicates");
        }
        let new_arities: Vec<u64> = positions.iter().map(|&p| self.arities[p]).collect();
        let mut new_counts = vec![0u64; self.counts.len()];
        let mut digits = vec![0u64; self.vars.len()];
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let mut rest = idx as u64;
            for (d, &r) in digits.iter_mut().zip(&self.arities) {
                *d = rest % r;
                rest /= r;
            }
            let mut new_idx = 0u64;
            let mut stride = 1u64;
            for (&p, &r) in positions.iter().zip(&new_arities) {
                new_idx += digits[p] * stride;
                stride *= r;
            }
            new_counts[new_idx as usize] += c;
        }
        Self::from_raw_parts(order.to_vec(), new_arities, new_counts, self.total)
    }

    /// Adds another partial marginal over the same variables (merge step).
    fn absorb(&mut self, other: &MarginalTable) {
        debug_assert_eq!(self.vars, other.vars);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Merges a partial marginal computed on a *different* source table —
    /// the cross-shard form of Algorithm 3's merge step.
    ///
    /// The intra-node merge ([`absorb`](Self::absorb)) sums partials that
    /// scanned disjoint partitions of **one** potential table, so they share
    /// a single total `m`. Shard partials instead come from disjoint
    /// *observation sets* (each shard ingested its own key-space slice of
    /// the rows), so both the cell counts **and** the totals add: the merged
    /// marginal is exactly what a single-node build over the union of the
    /// shards' rows would have produced, which is what makes cross-shard
    /// query answers byte-identical to the offline build of the same ingest
    /// prefix.
    pub fn merge_shard(&mut self, other: &MarginalTable) -> Result<(), CoreError> {
        if self.vars != other.vars || self.arities != other.arities {
            return Err(CoreError::BadVariableSet {
                reason: "cross-shard merge over mismatched variable sets",
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        Ok(())
    }
}

/// Computes the marginal over `vars` from a potential table using `threads`
/// parallel scanners (Algorithm 3).
///
/// `vars` must be strictly increasing and within the schema. `threads` is
/// clamped to the number of partitions (a thread scans whole partitions).
pub fn marginalize(
    table: &PotentialTable,
    vars: &[usize],
    threads: usize,
) -> Result<MarginalTable, CoreError> {
    marginalize_recorded(table, vars, threads, &NoopRecorder)
}

/// [`marginalize`] with telemetry: each scan thread attributes its wall time
/// to [`Stage::Marginal`] and counts the potential-table entries it touched
/// under [`Counter::EntriesScanned`].
pub fn marginalize_recorded<R: Recorder>(
    table: &PotentialTable,
    vars: &[usize],
    threads: usize,
    rec: &R,
) -> Result<MarginalTable, CoreError> {
    if threads == 0 {
        return Err(CoreError::ZeroThreads);
    }
    let codec = table.codec();
    let total = table.total_count();
    let template = MarginalTable::zeroed(codec, vars, total)?;
    let p = table.num_partitions();
    let t = threads.min(p);

    if t == 1 {
        let mut cr = rec.core(0);
        let t0 = cr.now();
        let mut out = template;
        let mut scanned = 0u64;
        for part in table.partitions() {
            scanned += accumulate_partition(codec, part, vars, &mut out);
        }
        cr.stage_ns(Stage::Marginal, cr.now().saturating_sub(t0));
        cr.add(Counter::EntriesScanned, scanned);
        return Ok(out);
    }

    // Deal whole partitions to threads round-robin; each thread fills a
    // private partial marginal (no shared writes), then the partials merge.
    let partials = run_on_threads(t, |tid| {
        let mut cr = rec.core(tid);
        let t0 = cr.now();
        let mut local = template.clone();
        let mut scanned = 0u64;
        let mut part_idx = tid;
        while part_idx < p {
            scanned += accumulate_partition(codec, table.partition(part_idx), vars, &mut local);
            part_idx += t;
        }
        cr.stage_ns(Stage::Marginal, cr.now().saturating_sub(t0));
        cr.add(Counter::EntriesScanned, scanned);
        local
    });
    let mut out = template;
    for partial in &partials {
        out.absorb(partial);
    }
    Ok(out)
}

/// Computes the marginals over several variable sets in **one** scan of the
/// potential table.
///
/// This is the batched-query form of [`marginalize`]: where `k` separate
/// calls walk every stored entry `k` times, this walks them once and
/// accumulates each entry into all `k` dense outputs. Scopes may repeat;
/// outputs come back in scope order. Used by the serving layer to answer a
/// batch of same-epoch queries with a single pass.
pub fn marginalize_many(
    table: &PotentialTable,
    scopes: &[&[usize]],
) -> Result<Vec<MarginalTable>, CoreError> {
    marginalize_many_recorded(table, scopes, &NoopRecorder, 0)
}

/// [`marginalize_many`] with telemetry attributed to core `core` (the
/// serving reader's slot): wall time lands in [`Stage::Marginal`] and each
/// stored entry counts once under [`Counter::EntriesScanned`] no matter how
/// many scopes it feeds.
pub fn marginalize_many_recorded<R: Recorder>(
    table: &PotentialTable,
    scopes: &[&[usize]],
    rec: &R,
    core: usize,
) -> Result<Vec<MarginalTable>, CoreError> {
    let codec = table.codec();
    let total = table.total_count();
    let mut outs: Vec<MarginalTable> = scopes
        .iter()
        .map(|vars| MarginalTable::zeroed(codec, vars, total))
        .collect::<Result<_, _>>()?;
    let mut cr = rec.core(core);
    let t0 = cr.now();
    let mut scanned = 0u64;
    for part in table.partitions() {
        for (key, count) in part.iter() {
            for (out, vars) in outs.iter_mut().zip(scopes) {
                let idx = codec.marginal_key(key, vars) as usize;
                out.counts[idx] += count;
            }
            scanned += 1;
        }
    }
    cr.stage_ns(Stage::Marginal, cr.now().saturating_sub(t0));
    cr.add(Counter::EntriesScanned, scanned);
    Ok(outs)
}

/// Scans one partition into a partial marginal (the per-core loop body of
/// Algorithm 3); returns the number of entries scanned.
fn accumulate_partition(
    codec: &KeyCodec,
    part: &crate::count_table::CountTable,
    vars: &[usize],
    out: &mut MarginalTable,
) -> u64 {
    let mut scanned = 0u64;
    for (key, count) in part.iter() {
        let idx = codec.marginal_key(key, vars) as usize;
        out.counts[idx] += count;
        scanned += 1;
    }
    scanned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{sequential_build, waitfree_build};
    use wfbn_data::{CorrelatedChain, Dataset, Generator, Schema, UniformIndependent};

    fn table(data: &Dataset, p: usize) -> PotentialTable {
        waitfree_build(data, p).unwrap().table
    }

    /// Brute-force marginal straight from the dataset, for cross-checking.
    fn brute_marginal(data: &Dataset, vars: &[usize]) -> Vec<u64> {
        let arities: Vec<u64> = vars
            .iter()
            .map(|&v| u64::from(data.schema().arity(v)))
            .collect();
        let cells: u64 = arities.iter().product();
        let mut counts = vec![0u64; cells as usize];
        for row in data.rows() {
            let mut idx = 0u64;
            let mut stride = 1u64;
            for (&v, &r) in vars.iter().zip(&arities) {
                idx += u64::from(row[v]) * stride;
                stride *= r;
            }
            counts[idx as usize] += 1;
        }
        counts
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let schema = Schema::new(vec![2, 3, 2, 4, 2]).unwrap();
        let data = UniformIndependent::new(schema).generate(5_000, 31);
        let t = table(&data, 4);
        for vars in [vec![0usize], vec![2], vec![0, 1], vec![1, 3], vec![0, 2, 4]] {
            let expected = brute_marginal(&data, &vars);
            for threads in [1usize, 2, 4] {
                let m = marginalize(&t, &vars, threads).unwrap();
                assert_eq!(m.counts, expected, "vars={vars:?} threads={threads}");
                assert_eq!(m.sum(), 5_000);
            }
        }
    }

    #[test]
    fn probabilities_normalize_to_one() {
        let schema = Schema::uniform(6, 2).unwrap();
        let data = CorrelatedChain::new(schema, 0.7)
            .unwrap()
            .generate(3_000, 8);
        let t = table(&data, 3);
        let m = marginalize(&t, &[1, 4], 2).unwrap();
        let total: f64 = m.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collapse_derives_singletons_from_pair() {
        let schema = Schema::new(vec![2, 3, 4]).unwrap();
        let data = UniformIndependent::new(schema).generate(4_000, 12);
        let t = table(&data, 2);
        let pair = marginalize(&t, &[0, 2], 1).unwrap();
        let px = pair.collapse(&[0]);
        let py = pair.collapse(&[1]);
        assert_eq!(px.counts, brute_marginal(&data, &[0]));
        assert_eq!(py.counts, brute_marginal(&data, &[2]));
        assert_eq!(px.vars(), &[0]);
        assert_eq!(py.vars(), &[2]);
        assert_eq!(px.total(), 4_000);
    }

    #[test]
    fn collapse_of_triple_to_pair() {
        let schema = Schema::uniform(5, 2).unwrap();
        let data = CorrelatedChain::new(schema, 0.5)
            .unwrap()
            .generate(2_000, 9);
        let t = table(&data, 2);
        let triple = marginalize(&t, &[0, 2, 3], 1).unwrap();
        let pair = triple.collapse(&[0, 2]);
        assert_eq!(pair.counts, brute_marginal(&data, &[0, 3]));
    }

    #[test]
    fn marginal_over_all_vars_is_the_table_itself() {
        let schema = Schema::uniform(4, 2).unwrap();
        let data = UniformIndependent::new(schema).generate(1_000, 3);
        let t = table(&data, 2);
        let m = marginalize(&t, &[0, 1, 2, 3], 2).unwrap();
        // Every observed key's count must appear at its own cell.
        for (key, count) in t.iter() {
            assert_eq!(m.count_at(key as usize), count);
        }
    }

    #[test]
    fn index_of_round_trips() {
        let schema = Schema::new(vec![2, 3, 4]).unwrap();
        let data = UniformIndependent::new(schema).generate(100, 5);
        let t = table(&data, 1);
        let m = marginalize(&t, &[1, 2], 1).unwrap();
        let mut seen = std::collections::HashSet::new();
        for s1 in 0..3u16 {
            for s2 in 0..4u16 {
                assert!(seen.insert(m.index_of(&[s1, s2])));
            }
        }
        assert_eq!(seen.len(), m.num_cells());
    }

    #[test]
    fn reorder_permutes_dimensions() {
        let schema = Schema::new(vec![2, 3, 4]).unwrap();
        let data = UniformIndependent::new(schema).generate(2_000, 44);
        let t = table(&data, 2);
        let sorted = marginalize(&t, &[0, 1, 2], 1).unwrap();
        let perm = sorted.reorder(&[2, 0, 1]);
        assert_eq!(perm.vars(), &[2, 0, 1]);
        assert_eq!(perm.arities(), &[4, 2, 3]);
        for s0 in 0..2u16 {
            for s1 in 0..3u16 {
                for s2 in 0..4u16 {
                    assert_eq!(sorted.count(&[s0, s1, s2]), perm.count(&[s2, s0, s1]));
                }
            }
        }
        // Round trip back to sorted order.
        let back = perm.reorder(&[0, 1, 2]);
        assert_eq!(back, sorted);
    }

    #[test]
    #[should_panic(expected = "not in marginal")]
    fn reorder_rejects_foreign_variable() {
        let schema = Schema::uniform(3, 2).unwrap();
        let data = UniformIndependent::new(schema).generate(100, 1);
        let t = table(&data, 1);
        let m = marginalize(&t, &[0, 1], 1).unwrap();
        let _ = m.reorder(&[0, 2]);
    }

    #[test]
    fn rejects_bad_inputs() {
        let schema = Schema::uniform(4, 2).unwrap();
        let data = UniformIndependent::new(schema).generate(100, 5);
        let t = table(&data, 2);
        assert!(matches!(
            marginalize(&t, &[], 1),
            Err(CoreError::BadVariableSet { .. })
        ));
        assert!(matches!(
            marginalize(&t, &[3, 1], 1),
            Err(CoreError::BadVariableSet { .. })
        ));
        assert!(matches!(
            marginalize(&t, &[9], 1),
            Err(CoreError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            marginalize(&t, &[0], 0),
            Err(CoreError::ZeroThreads)
        ));
    }

    #[test]
    fn marginalize_many_matches_individual_calls() {
        let schema = Schema::new(vec![2, 3, 2, 4, 2]).unwrap();
        let data = UniformIndependent::new(schema).generate(5_000, 31);
        let t = table(&data, 4);
        let scopes: Vec<&[usize]> = vec![&[0], &[1, 3], &[0, 2, 4], &[1, 3]];
        let fused = marginalize_many(&t, &scopes).unwrap();
        assert_eq!(fused.len(), scopes.len());
        for (got, vars) in fused.iter().zip(&scopes) {
            let single = marginalize(&t, vars, 1).unwrap();
            assert_eq!(got, &single, "vars={vars:?}");
        }
        assert!(matches!(
            marginalize_many(&t, &[&[0][..], &[9][..]]),
            Err(CoreError::VariableOutOfRange { .. })
        ));
    }

    #[test]
    fn merge_shard_equals_marginal_of_the_union() {
        // Split the rows by key across two "shards", marginalize each shard's
        // table separately, merge — the result must equal the marginal of a
        // single build over all rows, counts and total alike.
        let schema = Schema::new(vec![2, 3, 2, 4]).unwrap();
        let data = UniformIndependent::new(schema.clone()).generate(3_000, 17);
        let rows: Vec<&[u16]> = data.rows().collect();
        let (even, odd): (Vec<&[u16]>, Vec<&[u16]>) =
            rows.into_iter().partition(|r| (r[0] + r[1]) % 2 == 0);
        let shard0 = Dataset::from_rows(schema.clone(), &even).unwrap();
        let shard1 = Dataset::from_rows(schema, &odd).unwrap();
        let t0 = table(&shard0, 2);
        let t1 = table(&shard1, 2);
        let full = table(&data, 2);
        for vars in [vec![0usize], vec![1, 3], vec![0, 2, 3]] {
            let mut merged = marginalize(&t0, &vars, 1).unwrap();
            merged
                .merge_shard(&marginalize(&t1, &vars, 1).unwrap())
                .unwrap();
            let expected = marginalize(&full, &vars, 1).unwrap();
            assert_eq!(merged, expected, "vars={vars:?}");
            assert_eq!(merged.total(), 3_000);
        }
    }

    #[test]
    fn merge_shard_rejects_mismatched_scopes() {
        let schema = Schema::uniform(3, 2).unwrap();
        let data = UniformIndependent::new(schema).generate(100, 9);
        let t = table(&data, 1);
        let mut a = marginalize(&t, &[0, 1], 1).unwrap();
        let b = marginalize(&t, &[0, 2], 1).unwrap();
        assert!(matches!(
            a.merge_shard(&b),
            Err(CoreError::BadVariableSet { .. })
        ));
    }

    #[test]
    fn threads_beyond_partitions_are_clamped() {
        let schema = Schema::uniform(4, 2).unwrap();
        let data = UniformIndependent::new(schema).generate(500, 2);
        let t = table(&data, 2);
        let a = marginalize(&t, &[0, 3], 16).unwrap();
        let b = marginalize(&t, &[0, 3], 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn works_on_rebalanced_arbitrary_placement() {
        // Marginalization must not depend on key placement (§IV-C).
        let schema = Schema::uniform(5, 2).unwrap();
        let data = UniformIndependent::new(schema).generate(2_000, 6);
        let keyed = sequential_build(&data).unwrap().table;
        let expected = marginalize(&keyed, &[1, 3], 1).unwrap();
        // Scatter entries across 3 partitions ignoring key ownership.
        let codec = keyed.codec().clone();
        let mut parts = vec![
            crate::count_table::CountTable::new(),
            crate::count_table::CountTable::new(),
            crate::count_table::CountTable::new(),
        ];
        for (i, (k, c)) in keyed.iter().enumerate() {
            parts[i % 3].increment(k, c);
        }
        let arbitrary = PotentialTable::from_parts_unpartitioned(codec, parts);
        let got = marginalize(&arbitrary, &[1, 3], 3).unwrap();
        assert_eq!(got, expected);
    }
}
