//! The wait-free table-construction primitive (paper Algorithms 1 & 2).
//!
//! # How the race is designed away
//!
//! A naïve parallel build — all threads incrementing a shared map — races on
//! the counts of popular keys; locking fixes correctness but serializes the
//! hot path. The paper's primitive instead *partitions the key space*: core
//! `p` is the unique writer of partition `p`. The build runs in two stages
//! with exactly one barrier between them:
//!
//! * **Stage 1** (Algorithm 1): each core streams its contiguous chunk of
//!   rows, encodes each row to a key, and either applies it to its own
//!   private table (if it owns the key) or pushes it onto the wait-free SPSC
//!   queue addressed to the owning core. Since a queue has exactly one
//!   producer and one consumer, no operation in this stage can block or even
//!   retry: every core makes progress on every step (*wait-freedom*).
//! * **Barrier** — the single synchronization step.
//! * **Stage 2** (Algorithm 2): each core drains the `P − 1` queues addressed
//!   to it and applies the keys to its own table. Again, single-writer
//!   everywhere.
//!
//! Total work is `O(m·n / P)` per core for encoding plus `O(m / P)` expected
//! queue traffic — the complexities stated in the paper.

use crate::batch::Combiner;
use crate::codec::KeyCodec;
use crate::count_table::CountTable;
use crate::error::CoreError;
use crate::partition::KeyPartitioner;
use crate::potential::PotentialTable;
use crate::stats::{BuildStats, ThreadStats};
use wfbn_concurrent::{channel, row_chunks, Consumer, Producer, SpinBarrier};
use wfbn_data::Dataset;
use wfbn_obs::{CoreRecorder, Counter, NoopRecorder, Recorder, Stage};

/// Result of a construction run: the table plus instrumentation.
#[derive(Debug)]
pub struct BuiltTable {
    /// The distributed potential table.
    pub table: PotentialTable,
    /// Per-thread counters.
    pub stats: BuildStats,
}

/// Cap on the per-partition capacity hint, to keep pre-allocation bounded
/// for huge inputs (the tables grow on demand past this). 2²² entries
/// (≈ 96 MiB of slot arrays at the load limit) covers the paper's 1M-sample
/// configurations without a single rehash; the old 2¹⁶ cap made the first
/// build of a large CSV pay O(log m) growth storms per core.
const MAX_PREALLOC_ENTRIES: u64 = 1 << 22;

/// Rows per encode block in the batched builders: 256 rows × 30 binary
/// variables ≈ 15 KiB of input and 2 KiB of keys per block — L1-resident,
/// while amortizing the per-block loop overhead to noise.
pub(crate) const ENC_BLOCK: usize = 256;

pub(crate) fn capacity_hint(m: usize, space: u64, p: usize) -> usize {
    let per_core_rows = (m / p.max(1)) as u64 + 1;
    let per_core_keys = space.div_ceil(p as u64);
    per_core_rows.min(per_core_keys).min(MAX_PREALLOC_ENTRIES) as usize
}

/// Builds the potential table on a single thread (the speedup baseline and
/// the reference implementation for equivalence tests).
pub fn sequential_build(data: &Dataset) -> Result<BuiltTable, CoreError> {
    sequential_build_recorded(data, &NoopRecorder)
}

/// [`sequential_build`] with telemetry: stage timing, row/update counters,
/// and the probe-length histogram flow into core 0 of `rec`.
///
/// With [`NoopRecorder`] this monomorphizes to the uninstrumented loop —
/// every recorder call is an empty inlined body and `now()` never reads the
/// clock.
pub fn sequential_build_recorded<R: Recorder>(
    data: &Dataset,
    rec: &R,
) -> Result<BuiltTable, CoreError> {
    if data.num_samples() == 0 {
        return Err(CoreError::EmptyDataset);
    }
    let codec = KeyCodec::new(data.schema());
    let mut table =
        CountTable::with_capacity(capacity_hint(data.num_samples(), codec.state_space(), 1));
    let mut stats = ThreadStats::default();
    let mut cr = rec.core(0);
    let t0 = cr.now();
    for row in data.rows() {
        let probes = table.increment_probed(codec.encode(row), 1);
        cr.probe_len(probes);
        stats.rows_encoded += 1;
        stats.local_updates += 1;
    }
    cr.stage_ns(Stage::Encode, cr.now().saturating_sub(t0));
    cr.add(Counter::RowsEncoded, stats.rows_encoded);
    cr.add(Counter::LocalUpdates, stats.local_updates);
    cr.add(Counter::TableGrows, table.grows());
    stats.probes = table.probes();
    Ok(BuiltTable {
        table: PotentialTable::from_parts(codec, KeyPartitioner::modulo(1), vec![table]),
        stats: BuildStats {
            per_thread: vec![stats],
        },
    })
}

/// Builds the potential table with `p` threads using the paper's wait-free
/// two-stage primitive and its `key % P` partitioner.
///
/// # Examples
///
/// ```
/// use wfbn_core::construct::{sequential_build, waitfree_build};
/// use wfbn_data::{Generator, Schema, UniformIndependent};
///
/// let data = UniformIndependent::new(Schema::uniform(10, 2).unwrap()).generate(5_000, 1);
/// let seq = sequential_build(&data).unwrap();
/// let par = waitfree_build(&data, 4).unwrap();
/// assert_eq!(seq.table.to_sorted_vec(), par.table.to_sorted_vec());
/// ```
pub fn waitfree_build(data: &Dataset, p: usize) -> Result<BuiltTable, CoreError> {
    waitfree_build_recorded(data, p, &NoopRecorder)
}

/// [`waitfree_build`] with telemetry flowing into `rec` (core `t` of the
/// recorder receives worker `t`'s events).
pub fn waitfree_build_recorded<R: Recorder>(
    data: &Dataset,
    p: usize,
    rec: &R,
) -> Result<BuiltTable, CoreError> {
    if p == 0 {
        return Err(CoreError::ZeroThreads);
    }
    waitfree_build_with_recorded(data, KeyPartitioner::modulo(p), rec)
}

/// Endpoints owned by one worker thread: its producers toward every other
/// thread (`None` at its own index) and the consumers of queues addressed to
/// it (`None` at its own index).
struct Endpoints {
    producers: Vec<Option<Producer<u64>>>,
    consumers: Vec<Option<Consumer<u64>>>,
}

/// Builds the queue matrix `Q` of Algorithm 1: one SPSC channel per ordered
/// pair `(from, to)`, `from ≠ to`, and deals the endpoints out per thread.
fn queue_matrix(p: usize) -> Vec<Endpoints> {
    let mut endpoints: Vec<Endpoints> = (0..p)
        .map(|_| Endpoints {
            producers: (0..p).map(|_| None).collect(),
            consumers: (0..p).map(|_| None).collect(),
        })
        .collect();
    for from in 0..p {
        for to in 0..p {
            if from == to {
                continue;
            }
            let (tx, rx) = channel::<u64>();
            endpoints[from].producers[to] = Some(tx);
            endpoints[to].consumers[from] = Some(rx);
        }
    }
    endpoints
}

/// Builds the potential table with an explicit key partitioner (the thread
/// count is the partitioner's partition count).
pub fn waitfree_build_with(
    data: &Dataset,
    partitioner: KeyPartitioner,
) -> Result<BuiltTable, CoreError> {
    waitfree_build_with_recorded(data, partitioner, &NoopRecorder)
}

/// [`waitfree_build_with`] with telemetry flowing into `rec`.
///
/// Worker `t` obtains the exclusive per-core handle `rec.core(t)` at spawn
/// and reports through it only, preserving the build's single-writer-per-word
/// discipline for the telemetry words. Per-stage wall time (encode/route,
/// barrier wait, drain), routing counters, the probe-length histogram, queue
/// backlog high-water marks, segment links, and table growth events are all
/// attributed to the core that incurred them.
pub fn waitfree_build_with_recorded<R: Recorder>(
    data: &Dataset,
    partitioner: KeyPartitioner,
    rec: &R,
) -> Result<BuiltTable, CoreError> {
    let p = partitioner.partitions();
    if p == 0 {
        return Err(CoreError::ZeroThreads);
    }
    if data.num_samples() == 0 {
        return Err(CoreError::EmptyDataset);
    }
    let codec = KeyCodec::new(data.schema());
    if p == 1 {
        // Degenerate case: no queues, no barrier.
        let mut built = sequential_build_recorded(data, rec)?;
        if Some(&partitioner) != built.table.partitioner() {
            let (c, _, parts) = built.table.into_parts();
            built.table = PotentialTable::from_parts(c, partitioner, parts);
        }
        return Ok(built);
    }

    let m = data.num_samples();
    let chunks = row_chunks(m, p);
    let barrier = SpinBarrier::new(p);
    let endpoints = queue_matrix(p);
    let hint = capacity_hint(m, codec.state_space(), p);
    let n = codec.num_vars();

    let mut results: Vec<Option<(CountTable, ThreadStats)>> = (0..p).map(|_| None).collect();
    #[cfg(feature = "ownership-audit")]
    let build_audit = wfbn_concurrent::audit::BuildAudit::new();
    std::thread::scope(|s| {
        let codec = &codec;
        let partitioner = &partitioner;
        let barrier = &barrier;
        #[cfg(feature = "ownership-audit")]
        let build_audit = &build_audit;
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(t, mut ep)| {
                let chunk = chunks[t];
                std::thread::Builder::new()
                    .name(format!("wfbn-build-{t}"))
                    .spawn_scoped(s, move || {
                        // Core `t` reports every table/queue write to the
                        // shadow map; any word two cores write in one stage
                        // aborts the build with the culprits named.
                        #[cfg(feature = "ownership-audit")]
                        let _audit = wfbn_concurrent::audit::enter(build_audit, t);
                        let mut table = CountTable::with_capacity(hint);
                        let mut stats = ThreadStats::default();
                        let mut cr = rec.core(t);
                        let t0 = cr.now();

                        // ---- Stage 1 (Algorithm 1) ----
                        for row in data.row_range(chunk.start, chunk.end).chunks_exact(n) {
                            let key = codec.encode(row);
                            stats.rows_encoded += 1;
                            let owner = partitioner.owner(key);
                            if owner == t {
                                let probes = table.increment_probed(key, 1);
                                cr.probe_len(probes);
                                stats.local_updates += 1;
                            } else {
                                ep.producers[owner]
                                    .as_mut()
                                    .expect("producer to every foreign thread")
                                    .push(key);
                                stats.forwarded += 1;
                            }
                        }
                        let segments_linked: u64 = ep
                            .producers
                            .iter()
                            .flatten()
                            .map(Producer::segments_linked)
                            .sum();
                        // Close this thread's outgoing queues. Not required
                        // for correctness (the barrier already separates the
                        // stages) but keeps the termination protocol uniform
                        // with the pipelined variant.
                        ep.producers.clear();
                        let t1 = cr.now();
                        cr.stage_ns(Stage::Encode, t1.saturating_sub(t0));

                        // ---- The single synchronization step ----
                        barrier.wait();
                        #[cfg(feature = "ownership-audit")]
                        wfbn_concurrent::audit::set_stage(2);
                        let t2 = cr.now();
                        cr.stage_ns(Stage::Barrier, t2.saturating_sub(t1));

                        // ---- Stage 2 (Algorithm 2) ----
                        for consumer in ep.consumers.iter_mut().flatten() {
                            // Backlog visible at drain start: after the
                            // barrier the producer is done, so this is the
                            // head segment's share of everything it sent.
                            if R::ENABLED {
                                cr.queue_depth(consumer.visible_backlog());
                            }
                            // wf-bound: backlog(visible) — the producer is
                            // done (post-barrier), so each pop removes one of
                            // the finitely many committed elements.
                            while let Some(key) = consumer.try_pop() {
                                debug_assert_eq!(partitioner.owner(key), t);
                                let probes = table.increment_probed(key, 1);
                                cr.probe_len(probes);
                                stats.drained += 1;
                            }
                        }
                        cr.stage_ns(Stage::Drain, cr.now().saturating_sub(t2));
                        cr.add(Counter::RowsEncoded, stats.rows_encoded);
                        cr.add(Counter::LocalUpdates, stats.local_updates);
                        cr.add(Counter::Forwarded, stats.forwarded);
                        cr.add(Counter::Drained, stats.drained);
                        cr.add(Counter::SegmentsLinked, segments_linked);
                        cr.add(Counter::TableGrows, table.grows());
                        stats.probes = table.probes();
                        (table, stats)
                    })
                    .expect("failed to spawn build thread")
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            results[t] = Some(h.join().expect("build thread panicked"));
        }
    });

    let mut partitions = Vec::with_capacity(p);
    let mut per_thread = Vec::with_capacity(p);
    for r in results {
        let (table, stats) = r.expect("every thread reports");
        partitions.push(table);
        per_thread.push(stats);
    }
    Ok(BuiltTable {
        table: PotentialTable::from_parts(codec, partitioner, partitions),
        stats: BuildStats { per_thread },
    })
}

/// Builds the potential table on a single thread through the block-granular
/// hot paths: [`KeyCodec::encode_rows`] block encoding and
/// [`CountTable::increment_keys`] pre-hashed block application, with the
/// table pre-sized from `m`.
///
/// Produces a table identical to [`sequential_build`]'s — the batched paths
/// reorder no arithmetic, they only amortize per-element overhead — and is
/// the wall-clock P=1 fast path the benchmarks compare against.
pub fn sequential_build_batched(data: &Dataset) -> Result<BuiltTable, CoreError> {
    sequential_build_batched_recorded(data, &NoopRecorder)
}

/// [`sequential_build_batched`] with telemetry flowing into core 0 of `rec`.
pub fn sequential_build_batched_recorded<R: Recorder>(
    data: &Dataset,
    rec: &R,
) -> Result<BuiltTable, CoreError> {
    if data.num_samples() == 0 {
        return Err(CoreError::EmptyDataset);
    }
    let codec = KeyCodec::new(data.schema());
    let m = data.num_samples();
    let n = codec.num_vars();
    let mut table = CountTable::with_capacity(capacity_hint(m, codec.state_space(), 1));
    let mut stats = ThreadStats::default();
    let mut cr = rec.core(0);
    let mut keys: Vec<u64> = Vec::with_capacity(ENC_BLOCK);
    let t0 = cr.now();
    for rows in data.row_range(0, m).chunks(ENC_BLOCK * n) {
        codec.encode_rows(rows, &mut keys);
        table.increment_keys_probed(&keys, |probes| cr.probe_len(probes));
        stats.rows_encoded += keys.len() as u64;
        stats.local_updates += keys.len() as u64;
    }
    cr.stage_ns(Stage::Encode, cr.now().saturating_sub(t0));
    cr.add(Counter::RowsEncoded, stats.rows_encoded);
    cr.add(Counter::LocalUpdates, stats.local_updates);
    cr.add(Counter::TableGrows, table.grows());
    stats.probes = table.probes();
    Ok(BuiltTable {
        table: PotentialTable::from_parts(codec, KeyPartitioner::modulo(1), vec![table]),
        stats: BuildStats {
            per_thread: vec![stats],
        },
    })
}

/// Endpoints of the batched queue matrix: elements are `(key, count)` pairs
/// produced by the write-combining router.
struct BatchedEndpoints {
    producers: Vec<Option<Producer<(u64, u64)>>>,
    consumers: Vec<Option<Consumer<(u64, u64)>>>,
}

/// [`queue_matrix`] for the batched builders.
fn batched_queue_matrix(p: usize) -> Vec<BatchedEndpoints> {
    let mut endpoints: Vec<BatchedEndpoints> = (0..p)
        .map(|_| BatchedEndpoints {
            producers: (0..p).map(|_| None).collect(),
            consumers: (0..p).map(|_| None).collect(),
        })
        .collect();
    for from in 0..p {
        for to in 0..p {
            if from == to {
                continue;
            }
            let (tx, rx) = channel::<(u64, u64)>();
            endpoints[from].producers[to] = Some(tx);
            endpoints[to].consumers[from] = Some(rx);
        }
    }
    endpoints
}

/// Builds the potential table with `p` threads using the block-granular
/// variant of the two-stage primitive: stage 1 encodes row blocks with
/// [`KeyCodec::encode_rows`] and routes foreign keys through a per-core
/// write-combining [`Combiner`] (flushing `(key, count)` blocks with
/// `push_block`); stage 2 drains whole blocks with `pop_block` and applies
/// them with the pre-hashed [`CountTable::increment_block`].
///
/// Exactly the same single-writer discipline, barrier placement, and result
/// as [`waitfree_build`] — equivalence tests require the resulting tables to
/// be identical — but with every hot path amortized over blocks.
pub fn waitfree_build_batched(data: &Dataset, p: usize) -> Result<BuiltTable, CoreError> {
    waitfree_build_batched_recorded(data, p, &NoopRecorder)
}

/// [`waitfree_build_batched`] with telemetry flowing into `rec`; the
/// batched counters `blocks_flushed` / `keys_coalesced` are attributed to
/// the producing core.
pub fn waitfree_build_batched_recorded<R: Recorder>(
    data: &Dataset,
    p: usize,
    rec: &R,
) -> Result<BuiltTable, CoreError> {
    if p == 0 {
        return Err(CoreError::ZeroThreads);
    }
    waitfree_build_with_batched_recorded(data, KeyPartitioner::modulo(p), rec)
}

/// [`waitfree_build_batched_recorded`] with an explicit key partitioner
/// (the batched analog of [`waitfree_build_with_recorded`]).
pub fn waitfree_build_with_batched_recorded<R: Recorder>(
    data: &Dataset,
    partitioner: KeyPartitioner,
    rec: &R,
) -> Result<BuiltTable, CoreError> {
    let p = partitioner.partitions();
    if p == 0 {
        return Err(CoreError::ZeroThreads);
    }
    if data.num_samples() == 0 {
        return Err(CoreError::EmptyDataset);
    }
    let codec = KeyCodec::new(data.schema());
    if p == 1 {
        // Degenerate case: no queues, no barrier, no router.
        let mut built = sequential_build_batched_recorded(data, rec)?;
        if Some(&partitioner) != built.table.partitioner() {
            let (c, _, parts) = built.table.into_parts();
            built.table = PotentialTable::from_parts(c, partitioner, parts);
        }
        return Ok(built);
    }

    let m = data.num_samples();
    let chunks = row_chunks(m, p);
    let barrier = SpinBarrier::new(p);
    let endpoints = batched_queue_matrix(p);
    let hint = capacity_hint(m, codec.state_space(), p);
    let n = codec.num_vars();

    let mut results: Vec<Option<(CountTable, ThreadStats)>> = (0..p).map(|_| None).collect();
    #[cfg(feature = "ownership-audit")]
    let build_audit = wfbn_concurrent::audit::BuildAudit::new();
    std::thread::scope(|s| {
        let codec = &codec;
        let partitioner = &partitioner;
        let barrier = &barrier;
        #[cfg(feature = "ownership-audit")]
        let build_audit = &build_audit;
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(t, mut ep)| {
                let chunk = chunks[t];
                std::thread::Builder::new()
                    .name(format!("wfbn-bbuild-{t}"))
                    .spawn_scoped(s, move || {
                        #[cfg(feature = "ownership-audit")]
                        let _audit = wfbn_concurrent::audit::enter(build_audit, t);
                        let mut table = CountTable::with_capacity(hint);
                        let mut stats = ThreadStats::default();
                        let mut cr = rec.core(t);
                        let mut combiner = Combiner::new(p);
                        let mut keys: Vec<u64> = Vec::with_capacity(ENC_BLOCK);
                        let t0 = cr.now();

                        // ---- Stage 1 (Algorithm 1, block-granular) ----
                        for rows in data.row_range(chunk.start, chunk.end).chunks(ENC_BLOCK * n) {
                            codec.encode_rows(rows, &mut keys);
                            stats.rows_encoded += keys.len() as u64;
                            for &key in &keys {
                                let owner = partitioner.owner(key);
                                if owner == t {
                                    let probes = table.increment_probed(key, 1);
                                    cr.probe_len(probes);
                                    stats.local_updates += 1;
                                } else {
                                    combiner.route(owner, key, &mut ep.producers);
                                    stats.forwarded += 1;
                                }
                            }
                        }
                        combiner.flush_all(&mut ep.producers);
                        stats.blocks_flushed = combiner.blocks_flushed();
                        stats.keys_coalesced = combiner.keys_coalesced();
                        let segments_linked: u64 = ep
                            .producers
                            .iter()
                            .flatten()
                            .map(Producer::segments_linked)
                            .sum();
                        // Close this thread's outgoing queues (after the
                        // final flush — nothing may follow a close).
                        ep.producers.clear();
                        let t1 = cr.now();
                        cr.stage_ns(Stage::Encode, t1.saturating_sub(t0));

                        // ---- The single synchronization step ----
                        barrier.wait();
                        #[cfg(feature = "ownership-audit")]
                        wfbn_concurrent::audit::set_stage(2);
                        let t2 = cr.now();
                        cr.stage_ns(Stage::Barrier, t2.saturating_sub(t1));

                        // ---- Stage 2 (Algorithm 2, block-granular) ----
                        let mut block: Vec<(u64, u64)> = Vec::new();
                        for consumer in ep.consumers.iter_mut().flatten() {
                            if R::ENABLED {
                                cr.queue_depth(consumer.visible_backlog());
                            }
                            // wf-bound: backlog(visible) — the producer is
                            // done (post-barrier); each round takes a
                            // committed chunk and exits on the first empty
                            // poll.
                            loop {
                                block.clear();
                                if consumer.pop_block(&mut block) == 0 {
                                    break;
                                }
                                table.increment_block_probed(&block, |probes| {
                                    cr.probe_len(probes);
                                });
                                for &(key, count) in &block {
                                    debug_assert_eq!(partitioner.owner(key), t);
                                    let _ = key;
                                    stats.drained += count;
                                }
                            }
                        }
                        cr.stage_ns(Stage::Drain, cr.now().saturating_sub(t2));
                        cr.add(Counter::RowsEncoded, stats.rows_encoded);
                        cr.add(Counter::LocalUpdates, stats.local_updates);
                        cr.add(Counter::Forwarded, stats.forwarded);
                        cr.add(Counter::Drained, stats.drained);
                        cr.add(Counter::SegmentsLinked, segments_linked);
                        cr.add(Counter::TableGrows, table.grows());
                        cr.add(Counter::BlocksFlushed, stats.blocks_flushed);
                        cr.add(Counter::KeysCoalesced, stats.keys_coalesced);
                        stats.probes = table.probes();
                        (table, stats)
                    })
                    .expect("failed to spawn build thread")
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            results[t] = Some(h.join().expect("build thread panicked"));
        }
    });

    let mut partitions = Vec::with_capacity(p);
    let mut per_thread = Vec::with_capacity(p);
    for r in results {
        let (table, stats) = r.expect("every thread reports");
        partitions.push(table);
        per_thread.push(stats);
    }
    Ok(BuiltTable {
        table: PotentialTable::from_parts(codec, partitioner, partitions),
        stats: BuildStats { per_thread },
    })
}

#[cfg(all(test, feature = "loom"))]
mod loom_tests {
    use super::*;
    use std::sync::Arc;

    /// Model-checks the stage-1 → barrier → stage-2 handoff.
    ///
    /// `waitfree_build_with` spawns scoped std threads, which the model
    /// checker cannot schedule, so this test runs a distilled two-core
    /// instance of the *same protocol* — the body of the worker closure:
    /// classify-and-forward over the real [`queue_matrix`], close the
    /// producers, cross the real [`SpinBarrier`], drain into the real
    /// [`CountTable`] — with loom-owned threads. Every schedule within the
    /// preemption bound must yield the same per-partition counts.
    #[test]
    fn two_stage_handoff_produces_exact_counts_under_every_schedule() {
        loom::model(|| {
            const P: usize = 2;
            // Per-core input keys; ownership is key % 2. Core 0 forwards one
            // key, core 1 forwards two (enough to cross a loom-sized
            // segment boundary of the forwarding queue).
            let inputs: [Vec<u64>; P] = [vec![0, 1, 2], vec![3, 4, 6]];
            let barrier = Arc::new(SpinBarrier::new(P));
            let handles: Vec<_> = queue_matrix(P)
                .into_iter()
                .zip(inputs)
                .enumerate()
                .map(|(t, (mut ep, keys))| {
                    let barrier = Arc::clone(&barrier);
                    loom::thread::spawn(move || {
                        let mut table = CountTable::with_capacity(4);
                        // ---- Stage 1 ----
                        for key in keys {
                            let owner = (key % P as u64) as usize;
                            if owner == t {
                                table.increment(key, 1);
                            } else {
                                ep.producers[owner]
                                    .as_mut()
                                    .expect("producer to every foreign thread")
                                    .push(key);
                            }
                        }
                        ep.producers.clear();
                        // ---- The single synchronization step ----
                        barrier.wait();
                        // ---- Stage 2 ----
                        for consumer in ep.consumers.iter_mut().flatten() {
                            while let Some(key) = consumer.try_pop() {
                                assert_eq!(
                                    (key % P as u64) as usize,
                                    t,
                                    "drained a key we do not own"
                                );
                                table.increment(key, 1);
                            }
                        }
                        table
                    })
                })
                .collect();
            let mut merged: Vec<(u64, u64)> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap().iter().collect::<Vec<_>>())
                .collect();
            merged.sort_unstable();
            assert_eq!(
                merged,
                vec![(0, 1), (1, 1), (2, 1), (3, 1), (4, 1), (6, 1)],
                "handoff lost, duplicated, or misrouted a key"
            );
        });
        assert!(
            loom::explored_interleavings() >= 2,
            "model explored only {} schedule(s)",
            loom::explored_interleavings()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfbn_data::{CorrelatedChain, Generator, Schema, UniformIndependent, ZipfIndependent};

    fn uniform_data(n: usize, r: u16, m: usize, seed: u64) -> Dataset {
        UniformIndependent::new(Schema::uniform(n, r).unwrap()).generate(m, seed)
    }

    #[test]
    fn sequential_counts_every_row() {
        let data = uniform_data(6, 2, 2000, 3);
        let built = sequential_build(&data).unwrap();
        assert_eq!(built.table.total_count(), 2000);
        assert_eq!(built.stats.total_rows(), 2000);
        assert_eq!(built.stats.total_forwarded(), 0);
    }

    #[test]
    fn parallel_equals_sequential_for_many_thread_counts() {
        let data = uniform_data(8, 3, 5000, 11);
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        for p in [1usize, 2, 3, 4, 7, 8] {
            let built = waitfree_build(&data, p).unwrap();
            assert_eq!(built.table.to_sorted_vec(), reference, "mismatch at p={p}");
            assert_eq!(built.table.total_count(), 5000);
        }
    }

    #[test]
    fn equivalence_holds_for_all_partitioners() {
        let data = uniform_data(10, 2, 3000, 5);
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        let space = 1u64 << 10;
        for part in [
            KeyPartitioner::modulo(4),
            KeyPartitioner::range(4, space),
            KeyPartitioner::hashed(4),
        ] {
            let built = waitfree_build_with(&data, part).unwrap();
            assert_eq!(built.table.to_sorted_vec(), reference, "{}", part.name());
        }
    }

    #[test]
    fn equivalence_on_skewed_and_correlated_data() {
        let schema = Schema::new(vec![2, 3, 4, 2, 5]).unwrap();
        for data in [
            ZipfIndependent::new(schema.clone(), 1.5)
                .unwrap()
                .generate(4000, 2),
            CorrelatedChain::new(schema, 0.9).unwrap().generate(4000, 2),
        ] {
            let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
            for p in [2usize, 5] {
                assert_eq!(
                    waitfree_build(&data, p).unwrap().table.to_sorted_vec(),
                    reference
                );
            }
        }
    }

    #[test]
    fn forward_fraction_matches_theory_for_uniform_keys() {
        // With uniform keys and modulo(P), a key is foreign w.p. (P−1)/P.
        let data = uniform_data(12, 2, 20_000, 7);
        for p in [2usize, 4, 8] {
            let built = waitfree_build(&data, p).unwrap();
            let expected = (p as f64 - 1.0) / p as f64;
            let got = built.stats.forward_fraction();
            assert!(
                (got - expected).abs() < 0.02,
                "p={p}: got {got}, expected {expected}"
            );
            assert_eq!(built.stats.total_forwarded(), built.stats.total_drained());
        }
    }

    #[test]
    fn more_threads_than_rows() {
        let data = uniform_data(4, 2, 3, 9);
        let built = waitfree_build(&data, 8).unwrap();
        assert_eq!(built.table.total_count(), 3);
        assert_eq!(built.stats.total_rows(), 3);
    }

    #[test]
    fn single_row_dataset() {
        let schema = Schema::uniform(5, 2).unwrap();
        let data = Dataset::from_rows(schema, &[&[1, 0, 1, 0, 1]]).unwrap();
        let built = waitfree_build(&data, 4).unwrap();
        assert_eq!(built.table.num_entries(), 1);
        let key = built.table.codec().encode(&[1, 0, 1, 0, 1]);
        assert_eq!(built.table.count_of(key), 1);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let schema = Schema::uniform(3, 2).unwrap();
        let data = Dataset::from_rows(schema, &[]).unwrap();
        assert_eq!(
            sequential_build(&data).unwrap_err(),
            CoreError::EmptyDataset
        );
        assert_eq!(
            waitfree_build(&data, 4).unwrap_err(),
            CoreError::EmptyDataset
        );
        assert_eq!(
            waitfree_build(&data, 0).unwrap_err(),
            CoreError::ZeroThreads
        );
    }

    #[test]
    fn every_key_lands_in_its_owning_partition() {
        let data = uniform_data(9, 2, 5000, 13);
        let built = waitfree_build(&data, 4).unwrap();
        let part = *built.table.partitioner().unwrap();
        for (p_idx, t) in built.table.partitions().iter().enumerate() {
            for (key, _) in t.iter() {
                assert_eq!(part.owner(key), p_idx);
            }
        }
    }

    #[test]
    fn duplicate_heavy_input_counts_correctly() {
        // All rows identical: one key with count m, forwarded by all
        // non-owner threads.
        let schema = Schema::uniform(6, 2).unwrap();
        let rows: Vec<&[u16]> = (0..997).map(|_| &[1u16, 0, 1, 1, 0, 1] as &[u16]).collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let built = waitfree_build(&data, 4).unwrap();
        assert_eq!(built.table.num_entries(), 1);
        assert_eq!(built.table.total_count(), 997);
    }

    #[test]
    fn batched_builds_match_scalar_builds_exactly() {
        let data = uniform_data(8, 3, 5000, 11);
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        assert_eq!(
            sequential_build_batched(&data).unwrap().table.to_sorted_vec(),
            reference
        );
        for p in [1usize, 2, 3, 4, 7, 8] {
            let built = waitfree_build_batched(&data, p).unwrap();
            assert_eq!(built.table.to_sorted_vec(), reference, "mismatch at p={p}");
            assert_eq!(built.stats.total_rows(), 5000);
            assert_eq!(built.stats.total_forwarded(), built.stats.total_drained());
        }
    }

    #[test]
    fn batched_build_on_skewed_data_coalesces_and_stays_exact() {
        let schema = Schema::new(vec![2, 3, 2]).unwrap(); // tiny state space: many runs
        let data = ZipfIndependent::new(schema, 1.5).unwrap().generate(8000, 4);
        let reference = sequential_build(&data).unwrap().table.to_sorted_vec();
        let built = waitfree_build_batched(&data, 4).unwrap();
        assert_eq!(built.table.to_sorted_vec(), reference);
        let s = &built.stats;
        assert!(
            s.total_keys_coalesced() > 0,
            "skewed keys over a 12-state space must produce duplicate runs"
        );
        assert!(s.total_keys_coalesced() <= s.total_forwarded());
        assert!(s.total_blocks_flushed() > 0);
        assert!(
            s.total_blocks_flushed() <= s.total_forwarded() - s.total_keys_coalesced(),
            "every flush must carry at least one element"
        );
    }

    #[test]
    fn scalar_build_reports_no_batch_counters() {
        let data = uniform_data(8, 2, 1000, 5);
        let s = waitfree_build(&data, 4).unwrap().stats;
        assert_eq!(s.total_blocks_flushed(), 0);
        assert_eq!(s.total_keys_coalesced(), 0);
    }

    #[test]
    fn batched_edge_cases_match_scalar() {
        // Single row, more threads than rows, duplicate-heavy input.
        let schema = Schema::uniform(6, 2).unwrap();
        let rows: Vec<&[u16]> = (0..997).map(|_| &[1u16, 0, 1, 1, 0, 1] as &[u16]).collect();
        let dup = Dataset::from_rows(schema.clone(), &rows).unwrap();
        assert_eq!(
            waitfree_build_batched(&dup, 4).unwrap().table.to_sorted_vec(),
            waitfree_build(&dup, 4).unwrap().table.to_sorted_vec()
        );
        let single = Dataset::from_rows(schema, &[&[1, 0, 1, 0, 1, 0]]).unwrap();
        let built = waitfree_build_batched(&single, 8).unwrap();
        assert_eq!(built.table.total_count(), 1);
        let tiny = uniform_data(4, 2, 3, 9);
        assert_eq!(
            waitfree_build_batched(&tiny, 8).unwrap().table.to_sorted_vec(),
            sequential_build(&tiny).unwrap().table.to_sorted_vec()
        );
    }

    #[test]
    fn batched_empty_and_zero_thread_errors_match_scalar() {
        let schema = Schema::uniform(3, 2).unwrap();
        let data = Dataset::from_rows(schema, &[]).unwrap();
        assert_eq!(
            sequential_build_batched(&data).unwrap_err(),
            CoreError::EmptyDataset
        );
        assert_eq!(
            waitfree_build_batched(&data, 4).unwrap_err(),
            CoreError::EmptyDataset
        );
        let ok = uniform_data(3, 2, 10, 1);
        assert_eq!(
            waitfree_build_batched(&ok, 0).unwrap_err(),
            CoreError::ZeroThreads
        );
    }

    #[test]
    fn deterministic_table_regardless_of_scheduling() {
        // Run the same parallel build many times: the resulting multiset of
        // (key, count) pairs must be identical every time.
        let data = uniform_data(8, 2, 2000, 21);
        let reference = waitfree_build(&data, 4).unwrap().table.to_sorted_vec();
        for _ in 0..10 {
            assert_eq!(
                waitfree_build(&data, 4).unwrap().table.to_sorted_vec(),
                reference
            );
        }
    }
}
