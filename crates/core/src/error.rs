//! Error type for the core primitives.

use core::fmt;

/// Errors surfaced by table construction and marginalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The dataset has no rows; a potential table would be empty and every
    /// probability undefined.
    EmptyDataset,
    /// Zero threads requested.
    ZeroThreads,
    /// A marginalization was requested over an empty or invalid variable set.
    BadVariableSet {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A variable index exceeds the schema width.
    VariableOutOfRange {
        /// The offending index.
        var: usize,
        /// Number of variables in the schema.
        num_vars: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyDataset => write!(f, "dataset contains no samples"),
            CoreError::ZeroThreads => write!(f, "at least one thread is required"),
            CoreError::BadVariableSet { reason } => {
                write!(f, "invalid variable set: {reason}")
            }
            CoreError::VariableOutOfRange { var, num_vars } => {
                write!(f, "variable {var} out of range (schema has {num_vars})")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(CoreError::EmptyDataset.to_string().contains("no samples"));
        assert!(CoreError::ZeroThreads.to_string().contains("thread"));
        assert!(CoreError::VariableOutOfRange {
            var: 9,
            num_vars: 4
        }
        .to_string()
        .contains("9"));
    }
}
