//! Write-combining key routing with per-destination pre-aggregation.
//!
//! The scalar stage-1 loop forwards every foreign key with its own
//! `Producer::push` — one release store and one queue-slot write per
//! occurrence. This module is the batched router the `*_batched` builders
//! use instead, borrowing two tricks from radix-partitioning hash joins and
//! combiner-style parallel counting:
//!
//! * **Software write combining** — each worker keeps one small private
//!   buffer per destination core and appends foreign keys there; only when a
//!   buffer fills (or at end of stage 1) is it shipped with a single
//!   [`Producer::push_block`] call, amortizing the queue's publication
//!   protocol over [`WC_CAP`] entries and streaming whole cache lines into
//!   the segment instead of dribbling one slot at a time.
//! * **Last-key run-length coalescing** — the buffered element is a
//!   `(key, count)` pair. If the key being routed equals the destination
//!   buffer's most recent key, its count is bumped instead of appending a
//!   new element, so runs of duplicate keys (ubiquitous under skewed/Zipf
//!   data, common even under uniform data at small state spaces) cross the
//!   queue as one element. Stage 2 applies the pair with a single weighted
//!   table increment.
//!
//! Both tricks preserve the single-writer discipline: buffers are worker
//! private, flushes go through the worker's own SPSC producers, and the
//! consumer side stays the queue's unique reader. The auditor in
//! `wfbn-concurrent` checks exactly this when the `ownership-audit` feature
//! is on.

use wfbn_concurrent::Producer;

/// Entries per write-combining buffer: the flush unit handed to
/// [`Producer::push_block`].
///
/// 64 `(u64, u64)` pairs = 1 KiB = 16 cache lines per destination — small
/// enough that every active buffer of a 32-core router stays L1-resident
/// (32 KiB total), large enough to amortize the per-flush publication cost
/// to a fraction of a cycle per key.
pub const WC_CAP: usize = 64;

/// A per-worker batched router: one write-combining buffer per destination
/// core, with last-key run-length coalescing.
///
/// `K` is the table key type (`u64` for the standard builders, `u128` for
/// the wide ones). The buffer at the worker's own index stays empty — local
/// keys never enter the router.
#[derive(Debug)]
pub struct Combiner<K> {
    bufs: Vec<Vec<(K, u64)>>,
    blocks_flushed: u64,
    keys_coalesced: u64,
}

impl<K: Copy + PartialEq> Combiner<K> {
    /// A router with one (empty, pre-sized) buffer per destination.
    pub fn new(destinations: usize) -> Self {
        Combiner {
            bufs: (0..destinations)
                .map(|_| Vec::with_capacity(WC_CAP))
                .collect(),
            blocks_flushed: 0,
            keys_coalesced: 0,
        }
    }

    /// Routes one foreign-key occurrence toward `owner`.
    ///
    /// Coalesces into the buffer's open run when `key` repeats, otherwise
    /// appends `(key, 1)`; flushes the buffer through `producers[owner]`
    /// first if it is full. Wait-free: bounded by one `push_block` of
    /// [`WC_CAP`] elements.
    #[inline]
    pub fn route(&mut self, owner: usize, key: K, producers: &mut [Option<Producer<(K, u64)>>]) {
        let buf = &mut self.bufs[owner];
        if let Some(last) = buf.last_mut() {
            if last.0 == key {
                last.1 += 1;
                self.keys_coalesced += 1;
                return;
            }
        }
        if buf.len() == WC_CAP {
            producers[owner]
                .as_mut()
                .expect("producer to every foreign destination")
                .push_block(buf);
            buf.clear();
            self.blocks_flushed += 1;
        }
        buf.push((key, 1));
    }

    /// Ships every non-empty buffer (end of stage 1). After this the router
    /// holds nothing and the producers may be closed.
    pub fn flush_all(&mut self, producers: &mut [Option<Producer<(K, u64)>>]) {
        for (owner, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                producers[owner]
                    .as_mut()
                    .expect("producer to every foreign destination")
                    .push_block(buf);
                buf.clear();
                self.blocks_flushed += 1;
            }
        }
    }

    /// Number of `push_block` flushes performed (feeds `blocks_flushed`).
    pub fn blocks_flushed(&self) -> u64 {
        self.blocks_flushed
    }

    /// Occurrences absorbed into an open run instead of shipped as their own
    /// element (feeds `keys_coalesced`).
    pub fn keys_coalesced(&self) -> u64 {
        self.keys_coalesced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfbn_concurrent::channel;

    type Endpoints = (
        Vec<Option<Producer<(u64, u64)>>>,
        wfbn_concurrent::Consumer<(u64, u64)>,
    );

    /// Two destinations (0 = self, unused; 1 = foreign) wired to real queues.
    fn rig() -> Endpoints {
        let (tx, rx) = channel();
        (vec![None, Some(tx)], rx)
    }

    fn drain(rx: &mut wfbn_concurrent::Consumer<(u64, u64)>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        rx.pop_block(&mut out);
        out
    }

    #[test]
    fn coalesces_runs_and_preserves_mass() {
        let (mut producers, mut rx) = rig();
        let mut c = Combiner::new(2);
        for key in [7u64, 7, 7, 9, 7, 7] {
            c.route(1, key, &mut producers);
        }
        c.flush_all(&mut producers);
        assert_eq!(drain(&mut rx), vec![(7, 3), (9, 1), (7, 2)]);
        assert_eq!(c.keys_coalesced(), 3); // 6 occurrences − 3 elements
        assert_eq!(c.blocks_flushed(), 1);
    }

    #[test]
    fn flushes_when_a_buffer_fills() {
        let (mut producers, mut rx) = rig();
        let mut c = Combiner::new(2);
        // Distinct keys: no coalescing, so WC_CAP + 1 routes force one flush.
        for key in 0..(WC_CAP as u64 + 1) {
            c.route(1, key * 2, &mut producers);
        }
        assert_eq!(c.blocks_flushed(), 1);
        assert_eq!(drain(&mut rx).len(), WC_CAP);
        c.flush_all(&mut producers);
        assert_eq!(c.blocks_flushed(), 2);
        assert_eq!(drain(&mut rx), vec![(WC_CAP as u64 * 2, 1)]);
        assert_eq!(c.keys_coalesced(), 0);
    }

    #[test]
    fn flush_all_skips_empty_buffers() {
        let (mut producers, _rx) = rig();
        let mut c = Combiner::<u64>::new(2);
        c.flush_all(&mut producers);
        assert_eq!(c.blocks_flushed(), 0);
    }

    #[test]
    fn conservation_forwarded_equals_sum_of_counts() {
        // The conservation rule the metrics layer checks: occurrences routed
        // = Σ counts crossing the queue.
        let (mut producers, mut rx) = rig();
        let mut c = Combiner::new(2);
        let mut x = 1u64;
        let mut routed = 0u64;
        for _ in 0..10_000 {
            x = wfbn_concurrent::mix64(x);
            c.route(1, x % 17, &mut producers);
            routed += 1;
        }
        c.flush_all(&mut producers);
        let mass: u64 = drain(&mut rx).iter().map(|&(_, n)| n).sum();
        assert_eq!(mass, routed);
        assert_eq!(routed - c.keys_coalesced(), rx.popped());
    }
}
