//! Incremental (streaming) table construction.
//!
//! Training data often arrives in batches — log shipments, sensor windows,
//! mini-epochs. Because the potential table is a pure count structure, the
//! wait-free primitive composes over batches: each `absorb` runs the
//! two-stage algorithm on the new rows against the *persistent* per-core
//! tables, and the result after any sequence of batches equals a one-shot
//! build over their concatenation (verified by tests). The key-ownership
//! invariant (core `p` is the unique writer of partition `p`) holds across
//! the whole stream, so no locking is ever needed between batches either.

use crate::batch::Combiner;
use crate::codec::KeyCodec;
use crate::construct::{capacity_hint, BuiltTable, ENC_BLOCK};
use crate::count_table::CountTable;
use crate::error::CoreError;
use crate::partition::KeyPartitioner;
use crate::potential::PotentialTable;
use crate::stats::{BuildStats, ThreadStats};
use std::sync::Arc;
use wfbn_concurrent::{channel, row_chunks, Consumer, Producer, SpinBarrier};
use wfbn_data::{Dataset, Schema};
use wfbn_obs::{CoreRecorder, Counter, NoopRecorder, Recorder, Stage};

/// Builds a potential table from a stream of dataset batches.
///
/// # Examples
///
/// ```
/// use wfbn_core::construct::waitfree_build;
/// use wfbn_core::stream::StreamingBuilder;
/// use wfbn_data::{Generator, Schema, UniformIndependent};
///
/// let schema = Schema::uniform(8, 2).unwrap();
/// let gen = UniformIndependent::new(schema.clone());
/// let (a, b) = (gen.generate(3_000, 1), gen.generate(2_000, 2));
///
/// let mut builder = StreamingBuilder::new(&schema, 4).unwrap();
/// builder.absorb(&a).unwrap();
/// builder.absorb(&b).unwrap();
/// let streamed = builder.finish().unwrap();
/// assert_eq!(streamed.table.total_count(), 5_000);
/// ```
#[derive(Debug)]
pub struct StreamingBuilder {
    schema: Schema,
    codec: KeyCodec,
    partitioner: KeyPartitioner,
    /// Persistent per-core partitions, `Arc`-shared with every published
    /// snapshot. While no snapshot holds a reference, `Arc::make_mut`
    /// mutates in place (zero copies); after a [`snapshot`](Self::snapshot)
    /// the next absorb diverges only the partitions it touches
    /// (copy-on-publish), leaving the published table immutable forever.
    tables: Vec<Arc<CountTable>>,
    stats: BuildStats,
    rows_absorbed: u64,
}

impl StreamingBuilder {
    /// Creates a builder over `threads` persistent partitions, using the
    /// paper's `key % P` partitioner.
    pub fn new(schema: &Schema, threads: usize) -> Result<Self, CoreError> {
        if threads == 0 {
            return Err(CoreError::ZeroThreads);
        }
        Ok(Self {
            schema: schema.clone(),
            codec: KeyCodec::new(schema),
            partitioner: KeyPartitioner::modulo(threads),
            tables: (0..threads).map(|_| Arc::new(CountTable::new())).collect(),
            stats: BuildStats {
                per_thread: vec![ThreadStats::default(); threads],
            },
            rows_absorbed: 0,
        })
    }

    /// [`new`](Self::new) with the per-core tables pre-sized for an expected
    /// total stream length of `expected_rows`.
    ///
    /// The default constructor starts every partition at the minimum table
    /// size, so a long stream pays O(log m) rehash storms per core as counts
    /// accumulate. Pre-sizing from the expected row count (clamped by the
    /// schema's state space, exactly like the one-shot builders) removes
    /// those entirely when the estimate is right and still grows gracefully
    /// when it is low.
    pub fn with_capacity_hint(
        schema: &Schema,
        threads: usize,
        expected_rows: usize,
    ) -> Result<Self, CoreError> {
        let mut builder = Self::new(schema, threads)?;
        let hint = capacity_hint(expected_rows, builder.codec.state_space(), threads);
        builder.tables = (0..threads)
            .map(|_| Arc::new(CountTable::with_capacity(hint)))
            .collect();
        Ok(builder)
    }

    /// Number of worker threads / partitions.
    pub fn threads(&self) -> usize {
        self.tables.len()
    }

    /// Rows absorbed so far across all batches.
    pub fn rows_absorbed(&self) -> u64 {
        self.rows_absorbed
    }

    /// Absorbs one batch with the two-stage wait-free algorithm.
    ///
    /// Empty batches are a no-op. The batch schema must equal the
    /// builder's.
    pub fn absorb(&mut self, batch: &Dataset) -> Result<(), CoreError> {
        self.absorb_recorded(batch, &NoopRecorder)
    }

    /// [`absorb`](Self::absorb) with telemetry flowing into `rec`; repeated
    /// calls accumulate into the same recorder, so a whole stream's per-stage
    /// breakdown lands in one report.
    pub fn absorb_recorded<R: Recorder>(
        &mut self,
        batch: &Dataset,
        rec: &R,
    ) -> Result<(), CoreError> {
        if batch.schema() != &self.schema {
            return Err(CoreError::BadVariableSet {
                reason: "batch schema differs from the builder's schema",
            });
        }
        let m = batch.num_samples();
        if m == 0 {
            return Ok(());
        }
        let p = self.tables.len();
        if p == 1 {
            let table = Arc::make_mut(&mut self.tables[0]);
            let st = &mut self.stats.per_thread[0];
            let mut cr = rec.core(0);
            let t0 = cr.now();
            let grows_before = table.grows();
            let mut rows = 0u64;
            for row in batch.rows() {
                let probes = table.increment_probed(self.codec.encode(row), 1);
                cr.probe_len(probes);
                st.rows_encoded += 1;
                st.local_updates += 1;
                rows += 1;
            }
            cr.stage_ns(Stage::Encode, cr.now().saturating_sub(t0));
            cr.add(Counter::RowsEncoded, rows);
            cr.add(Counter::LocalUpdates, rows);
            cr.add(Counter::TableGrows, table.grows() - grows_before);
            st.probes = table.probes();
            self.rows_absorbed += m as u64;
            return Ok(());
        }

        let chunks = row_chunks(m, p);
        let barrier = SpinBarrier::new(p);
        let codec = &self.codec;
        let partitioner = &self.partitioner;
        let n = codec.num_vars();

        // Queue matrix for this batch.
        struct Endpoints {
            producers: Vec<Option<Producer<u64>>>,
            consumers: Vec<Option<Consumer<u64>>>,
        }
        let mut endpoints: Vec<Endpoints> = (0..p)
            .map(|_| Endpoints {
                producers: (0..p).map(|_| None).collect(),
                consumers: (0..p).map(|_| None).collect(),
            })
            .collect();
        for from in 0..p {
            for to in 0..p {
                if from != to {
                    let (tx, rx) = channel::<u64>();
                    endpoints[from].producers[to] = Some(tx);
                    endpoints[to].consumers[from] = Some(rx);
                }
            }
        }

        // Move the persistent tables into the worker threads and collect
        // them back afterwards (each thread exclusively owns its table for
        // the duration — the same invariant as the one-shot build). A
        // partition still shared with a published snapshot diverges here via
        // `Arc::make_mut` — copy-on-publish, paid by the writer, never by a
        // reader.
        let tables = std::mem::take(&mut self.tables);
        let mut results: Vec<Option<(Arc<CountTable>, ThreadStats)>> =
            (0..p).map(|_| None).collect();
        std::thread::scope(|s| {
            let barrier = &barrier;
            let handles: Vec<_> = endpoints
                .into_iter()
                .zip(tables)
                .enumerate()
                .map(|(t, (mut ep, mut shared))| {
                    let chunk = chunks[t];
                    std::thread::Builder::new()
                        .name(format!("wfbn-stream-{t}"))
                        .spawn_scoped(s, move || {
                            let mut stats = ThreadStats::default();
                            let table = Arc::make_mut(&mut shared);
                            let mut cr = rec.core(t);
                            let t0 = cr.now();
                            // The persistent table's counters are cumulative
                            // across batches; record this batch's delta.
                            let grows_before = table.grows();
                            for row in batch.row_range(chunk.start, chunk.end).chunks_exact(n) {
                                let key = codec.encode(row);
                                stats.rows_encoded += 1;
                                let owner = partitioner.owner(key);
                                if owner == t {
                                    let probes = table.increment_probed(key, 1);
                                    cr.probe_len(probes);
                                    stats.local_updates += 1;
                                } else {
                                    ep.producers[owner]
                                        .as_mut()
                                        .expect("producer exists")
                                        .push(key);
                                    stats.forwarded += 1;
                                }
                            }
                            let segments_linked: u64 = ep
                                .producers
                                .iter()
                                .flatten()
                                .map(Producer::segments_linked)
                                .sum();
                            ep.producers.clear();
                            let t1 = cr.now();
                            cr.stage_ns(Stage::Encode, t1.saturating_sub(t0));
                            barrier.wait();
                            let t2 = cr.now();
                            cr.stage_ns(Stage::Barrier, t2.saturating_sub(t1));
                            for consumer in ep.consumers.iter_mut().flatten() {
                                if R::ENABLED {
                                    cr.queue_depth(consumer.visible_backlog());
                                }
                                // wf-bound: backlog(visible) — the producers
                                // are done (post-barrier), so each pop removes
                                // one of the finitely many committed elements.
                                while let Some(key) = consumer.try_pop() {
                                    let probes = table.increment_probed(key, 1);
                                    cr.probe_len(probes);
                                    stats.drained += 1;
                                }
                            }
                            cr.stage_ns(Stage::Drain, cr.now().saturating_sub(t2));
                            cr.add(Counter::RowsEncoded, stats.rows_encoded);
                            cr.add(Counter::LocalUpdates, stats.local_updates);
                            cr.add(Counter::Forwarded, stats.forwarded);
                            cr.add(Counter::Drained, stats.drained);
                            cr.add(Counter::SegmentsLinked, segments_linked);
                            cr.add(Counter::TableGrows, table.grows() - grows_before);
                            (shared, stats)
                        })
                        .expect("failed to spawn stream thread")
                })
                .collect();
            for (t, h) in handles.into_iter().enumerate() {
                results[t] = Some(h.join().expect("stream thread panicked"));
            }
        });

        self.tables = Vec::with_capacity(p);
        for (t, r) in results.into_iter().enumerate() {
            let (table, st) = r.expect("every thread reports");
            let agg = &mut self.stats.per_thread[t];
            agg.rows_encoded += st.rows_encoded;
            agg.local_updates += st.local_updates;
            agg.forwarded += st.forwarded;
            agg.drained += st.drained;
            agg.probes = table.probes();
            self.tables.push(table);
        }
        self.rows_absorbed += m as u64;
        Ok(())
    }

    /// [`absorb`](Self::absorb) on the block-granular hot paths: rows are
    /// encoded [`ENC_BLOCK`] at a time, foreign keys go through the
    /// write-combining [`Combiner`] and cross the queues as `(key, count)`
    /// blocks, and stage 2 drains with `pop_block` + one batched table
    /// application per block. Result is identical to [`absorb`](Self::absorb)
    /// — batched and scalar absorbs may be mixed freely within one stream.
    pub fn absorb_batched(&mut self, batch: &Dataset) -> Result<(), CoreError> {
        self.absorb_batched_recorded(batch, &NoopRecorder)
    }

    /// [`absorb_batched`](Self::absorb_batched) with telemetry flowing into
    /// `rec`.
    pub fn absorb_batched_recorded<R: Recorder>(
        &mut self,
        batch: &Dataset,
        rec: &R,
    ) -> Result<(), CoreError> {
        if batch.schema() != &self.schema {
            return Err(CoreError::BadVariableSet {
                reason: "batch schema differs from the builder's schema",
            });
        }
        let m = batch.num_samples();
        if m == 0 {
            return Ok(());
        }
        let p = self.tables.len();
        let n = self.codec.num_vars();
        if p == 1 {
            let table = Arc::make_mut(&mut self.tables[0]);
            let st = &mut self.stats.per_thread[0];
            let codec = &self.codec;
            let mut cr = rec.core(0);
            let t0 = cr.now();
            let grows_before = table.grows();
            let mut keys: Vec<u64> = Vec::with_capacity(ENC_BLOCK);
            let mut rows = 0u64;
            for row_block in batch.row_range(0, m).chunks(ENC_BLOCK * n) {
                codec.encode_rows(row_block, &mut keys);
                table.increment_keys_probed(&keys, |probes| {
                    cr.probe_len(probes);
                });
                rows += keys.len() as u64;
            }
            st.rows_encoded += rows;
            st.local_updates += rows;
            cr.stage_ns(Stage::Encode, cr.now().saturating_sub(t0));
            cr.add(Counter::RowsEncoded, rows);
            cr.add(Counter::LocalUpdates, rows);
            cr.add(Counter::TableGrows, table.grows() - grows_before);
            st.probes = table.probes();
            self.rows_absorbed += m as u64;
            return Ok(());
        }

        let chunks = row_chunks(m, p);
        let barrier = SpinBarrier::new(p);
        let codec = &self.codec;
        let partitioner = &self.partitioner;

        // Queue matrix for this batch, carrying combined `(key, count)` pairs.
        struct Endpoints {
            producers: Vec<Option<Producer<(u64, u64)>>>,
            consumers: Vec<Option<Consumer<(u64, u64)>>>,
        }
        let mut endpoints: Vec<Endpoints> = (0..p)
            .map(|_| Endpoints {
                producers: (0..p).map(|_| None).collect(),
                consumers: (0..p).map(|_| None).collect(),
            })
            .collect();
        for from in 0..p {
            for to in 0..p {
                if from != to {
                    let (tx, rx) = channel::<(u64, u64)>();
                    endpoints[from].producers[to] = Some(tx);
                    endpoints[to].consumers[from] = Some(rx);
                }
            }
        }

        let tables = std::mem::take(&mut self.tables);
        let mut results: Vec<Option<(Arc<CountTable>, ThreadStats)>> =
            (0..p).map(|_| None).collect();
        std::thread::scope(|s| {
            let barrier = &barrier;
            let handles: Vec<_> = endpoints
                .into_iter()
                .zip(tables)
                .enumerate()
                .map(|(t, (mut ep, mut shared))| {
                    let chunk = chunks[t];
                    std::thread::Builder::new()
                        .name(format!("wfbn-bstream-{t}"))
                        .spawn_scoped(s, move || {
                            let mut stats = ThreadStats::default();
                            let table = Arc::make_mut(&mut shared);
                            let mut combiner = Combiner::new(p);
                            let mut keys: Vec<u64> = Vec::with_capacity(ENC_BLOCK);
                            let mut cr = rec.core(t);
                            let t0 = cr.now();
                            let grows_before = table.grows();
                            for row_block in
                                batch.row_range(chunk.start, chunk.end).chunks(ENC_BLOCK * n)
                            {
                                codec.encode_rows(row_block, &mut keys);
                                stats.rows_encoded += keys.len() as u64;
                                for &key in &keys {
                                    let owner = partitioner.owner(key);
                                    if owner == t {
                                        let probes = table.increment_probed(key, 1);
                                        cr.probe_len(probes);
                                        stats.local_updates += 1;
                                    } else {
                                        combiner.route(owner, key, &mut ep.producers);
                                        stats.forwarded += 1;
                                    }
                                }
                            }
                            combiner.flush_all(&mut ep.producers);
                            stats.blocks_flushed = combiner.blocks_flushed();
                            stats.keys_coalesced = combiner.keys_coalesced();
                            let segments_linked: u64 = ep
                                .producers
                                .iter()
                                .flatten()
                                .map(Producer::segments_linked)
                                .sum();
                            ep.producers.clear();
                            let t1 = cr.now();
                            cr.stage_ns(Stage::Encode, t1.saturating_sub(t0));
                            barrier.wait();
                            let t2 = cr.now();
                            cr.stage_ns(Stage::Barrier, t2.saturating_sub(t1));
                            let mut block: Vec<(u64, u64)> = Vec::new();
                            for consumer in ep.consumers.iter_mut().flatten() {
                                if R::ENABLED {
                                    cr.queue_depth(consumer.visible_backlog());
                                }
                                // wf-bound: backlog(visible) — the producers
                                // are done (post-barrier); each round takes a
                                // committed chunk, exiting on the first empty
                                // poll.
                                loop {
                                    block.clear();
                                    if consumer.pop_block(&mut block) == 0 {
                                        break;
                                    }
                                    table.increment_block_probed(&block, |probes| {
                                        cr.probe_len(probes);
                                    });
                                    for &(key, count) in &block {
                                        debug_assert_eq!(partitioner.owner(key), t);
                                        let _ = key;
                                        stats.drained += count;
                                    }
                                }
                            }
                            cr.stage_ns(Stage::Drain, cr.now().saturating_sub(t2));
                            cr.add(Counter::RowsEncoded, stats.rows_encoded);
                            cr.add(Counter::LocalUpdates, stats.local_updates);
                            cr.add(Counter::Forwarded, stats.forwarded);
                            cr.add(Counter::Drained, stats.drained);
                            cr.add(Counter::SegmentsLinked, segments_linked);
                            cr.add(Counter::TableGrows, table.grows() - grows_before);
                            cr.add(Counter::BlocksFlushed, stats.blocks_flushed);
                            cr.add(Counter::KeysCoalesced, stats.keys_coalesced);
                            (shared, stats)
                        })
                        .expect("failed to spawn stream thread")
                })
                .collect();
            for (t, h) in handles.into_iter().enumerate() {
                results[t] = Some(h.join().expect("stream thread panicked"));
            }
        });

        self.tables = Vec::with_capacity(p);
        for (t, r) in results.into_iter().enumerate() {
            let (table, st) = r.expect("every thread reports");
            let agg = &mut self.stats.per_thread[t];
            agg.rows_encoded += st.rows_encoded;
            agg.local_updates += st.local_updates;
            agg.forwarded += st.forwarded;
            agg.drained += st.drained;
            agg.blocks_flushed += st.blocks_flushed;
            agg.keys_coalesced += st.keys_coalesced;
            agg.probes = table.probes();
            self.tables.push(table);
        }
        self.rows_absorbed += m as u64;
        Ok(())
    }

    /// A snapshot of the current table — O(P) `Arc` clones, no partition is
    /// copied (copy-on-publish: the *next* absorb diverges any partition the
    /// snapshot still shares). The builder keeps absorbing.
    pub fn snapshot(&self) -> Result<PotentialTable, CoreError> {
        if self.rows_absorbed == 0 {
            return Err(CoreError::EmptyDataset);
        }
        Ok(PotentialTable::from_shared_parts(
            self.codec.clone(),
            self.partitioner,
            self.tables.clone(),
        ))
    }

    /// [`snapshot`](Self::snapshot) without the non-empty guard: a stream
    /// that has absorbed nothing yields the schema's *empty* table (zero
    /// keys, zero total) instead of [`CoreError::EmptyDataset`].
    ///
    /// The serving layer publishes one epoch per admitted batch through
    /// this: under the sharded tier a shard's slice of an ingest prefix may
    /// legitimately be empty (every key of the batch belongs to other
    /// shards), yet its local epoch must still advance for cluster epochs
    /// to stay batch-aligned. Offline builds keep the strict
    /// [`finish`](Self::finish) contract — an empty *stream* is still an
    /// error there.
    pub fn snapshot_or_empty(&self) -> PotentialTable {
        PotentialTable::from_shared_parts(
            self.codec.clone(),
            self.partitioner,
            self.tables.clone(),
        )
    }

    /// Finalizes the stream into a table + accumulated statistics.
    pub fn finish(self) -> Result<BuiltTable, CoreError> {
        if self.rows_absorbed == 0 {
            return Err(CoreError::EmptyDataset);
        }
        Ok(BuiltTable {
            table: PotentialTable::from_shared_parts(self.codec, self.partitioner, self.tables),
            stats: self.stats,
        })
    }

    /// [`finish`](Self::finish) without the non-empty guard — the terminal
    /// counterpart of [`snapshot_or_empty`](Self::snapshot_or_empty). A
    /// shard engine that owned no key of the ingested stream finalizes into
    /// the empty table; offline builds keep using the strict `finish`.
    pub fn finish_or_empty(self) -> BuiltTable {
        BuiltTable {
            table: PotentialTable::from_shared_parts(self.codec, self.partitioner, self.tables),
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::sequential_build;
    use wfbn_data::{Generator, UniformIndependent, ZipfIndependent};

    fn concat(parts: &[&Dataset]) -> Dataset {
        let schema = parts[0].schema().clone();
        let mut flat = Vec::new();
        for p in parts {
            flat.extend_from_slice(p.flat());
        }
        Dataset::from_flat_unchecked(schema, flat)
    }

    #[test]
    fn stream_equals_one_shot_build() {
        let schema = Schema::uniform(10, 2).unwrap();
        let gen = UniformIndependent::new(schema.clone());
        let batches: Vec<Dataset> = (0..5).map(|i| gen.generate(777 + i, i as u64)).collect();
        let refs: Vec<&Dataset> = batches.iter().collect();
        let reference = sequential_build(&concat(&refs))
            .unwrap()
            .table
            .to_sorted_vec();
        for threads in [1usize, 3, 4] {
            let mut b = StreamingBuilder::new(&schema, threads).unwrap();
            for batch in &batches {
                b.absorb(batch).unwrap();
            }
            let built = b.finish().unwrap();
            assert_eq!(built.table.to_sorted_vec(), reference, "threads={threads}");
            assert_eq!(
                built.stats.total_rows(),
                reference.iter().map(|&(_, c)| c).sum()
            );
        }
    }

    #[test]
    fn snapshots_reflect_each_prefix() {
        let schema = Schema::uniform(6, 2).unwrap();
        let gen = UniformIndependent::new(schema.clone());
        let a = gen.generate(400, 1);
        let b = gen.generate(600, 2);
        let mut builder = StreamingBuilder::new(&schema, 2).unwrap();
        builder.absorb(&a).unwrap();
        let snap1 = builder.snapshot().unwrap();
        assert_eq!(snap1.total_count(), 400);
        assert_eq!(
            snap1.to_sorted_vec(),
            sequential_build(&a).unwrap().table.to_sorted_vec()
        );
        builder.absorb(&b).unwrap();
        let snap2 = builder.snapshot().unwrap();
        assert_eq!(snap2.total_count(), 1000);
        assert_eq!(builder.rows_absorbed(), 1000);
    }

    #[test]
    fn empty_batches_are_noops_and_empty_streams_error() {
        let schema = Schema::uniform(4, 2).unwrap();
        let empty = Dataset::from_rows(schema.clone(), &[]).unwrap();
        let mut b = StreamingBuilder::new(&schema, 2).unwrap();
        b.absorb(&empty).unwrap();
        assert!(matches!(b.snapshot(), Err(CoreError::EmptyDataset)));
        // The serving tier's non-strict variants yield the empty table
        // instead — a shard that owns no key of a stream is not an error.
        let snap = b.snapshot_or_empty();
        assert_eq!(snap.total_count(), 0);
        assert!(snap.to_sorted_vec().is_empty());
        let built = b.finish_or_empty();
        assert_eq!(built.table.total_count(), 0);
        let mut strict = StreamingBuilder::new(&schema, 2).unwrap();
        strict.absorb(&empty).unwrap();
        assert!(matches!(strict.finish(), Err(CoreError::EmptyDataset)));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let schema = Schema::uniform(4, 2).unwrap();
        let other = Schema::uniform(4, 3).unwrap();
        let batch = UniformIndependent::new(other).generate(10, 1);
        let mut b = StreamingBuilder::new(&schema, 2).unwrap();
        assert!(matches!(
            b.absorb(&batch),
            Err(CoreError::BadVariableSet { .. })
        ));
        assert!(StreamingBuilder::new(&schema, 0).is_err());
    }

    #[test]
    fn batched_absorbs_match_scalar_absorbs_exactly() {
        let schema = Schema::uniform(10, 2).unwrap();
        let gen = UniformIndependent::new(schema.clone());
        let batches: Vec<Dataset> = (0..5).map(|i| gen.generate(777 + i, i as u64)).collect();
        let refs: Vec<&Dataset> = batches.iter().collect();
        let reference = sequential_build(&concat(&refs))
            .unwrap()
            .table
            .to_sorted_vec();
        for threads in [1usize, 2, 4, 8] {
            let mut b = StreamingBuilder::new(&schema, threads).unwrap();
            for batch in &batches {
                b.absorb_batched(batch).unwrap();
            }
            let built = b.finish().unwrap();
            assert_eq!(built.table.to_sorted_vec(), reference, "threads={threads}");
            assert_eq!(built.stats.total_forwarded(), built.stats.total_drained());
            assert!(built.stats.total_keys_coalesced() <= built.stats.total_forwarded());
        }
    }

    #[test]
    fn mixed_scalar_and_batched_absorbs_compose() {
        let schema = Schema::uniform(8, 2).unwrap();
        let gen = UniformIndependent::new(schema.clone());
        let (a, b, c) = (
            gen.generate(1_500, 1),
            gen.generate(2_500, 2),
            gen.generate(500, 3),
        );
        let reference = sequential_build(&concat(&[&a, &b, &c]))
            .unwrap()
            .table
            .to_sorted_vec();
        let mut builder = StreamingBuilder::new(&schema, 4).unwrap();
        builder.absorb(&a).unwrap();
        builder.absorb_batched(&b).unwrap();
        builder.absorb(&c).unwrap();
        let built = builder.finish().unwrap();
        assert_eq!(built.table.to_sorted_vec(), reference);
        assert_eq!(built.stats.total_rows(), 4_500);
    }

    #[test]
    fn capacity_hint_constructor_eliminates_growth() {
        let schema = Schema::uniform(12, 2).unwrap();
        let gen = UniformIndependent::new(schema.clone());
        let batch = gen.generate(4_096, 7);
        let mut hinted = StreamingBuilder::with_capacity_hint(&schema, 2, 4_096).unwrap();
        hinted.absorb_batched(&batch).unwrap();
        let snap = hinted.snapshot().unwrap();
        assert_eq!(snap.total_count(), 4_096);
        assert_eq!(
            snap.to_sorted_vec(),
            sequential_build(&batch).unwrap().table.to_sorted_vec()
        );
        // Pre-sized partitions never rehash on a stream no longer than the
        // estimate.
        assert!(!hinted.finish().unwrap().table.to_sorted_vec().is_empty());
    }

    #[test]
    fn batched_empty_batches_and_schema_mismatch_behave_like_scalar() {
        let schema = Schema::uniform(4, 2).unwrap();
        let other = Schema::uniform(4, 3).unwrap();
        let empty = Dataset::from_rows(schema.clone(), &[]).unwrap();
        let bad = UniformIndependent::new(other).generate(10, 1);
        let mut b = StreamingBuilder::new(&schema, 2).unwrap();
        b.absorb_batched(&empty).unwrap();
        assert!(matches!(b.snapshot(), Err(CoreError::EmptyDataset)));
        assert!(matches!(
            b.absorb_batched(&bad),
            Err(CoreError::BadVariableSet { .. })
        ));
    }

    #[test]
    fn skewed_batches_accumulate_correctly() {
        let schema = Schema::uniform(8, 2).unwrap();
        let zipf = ZipfIndependent::new(schema.clone(), 2.0).unwrap();
        let uni = UniformIndependent::new(schema.clone());
        let batches = [zipf.generate(2_000, 1), uni.generate(2_000, 2)];
        let refs: Vec<&Dataset> = batches.iter().collect();
        let reference = sequential_build(&concat(&refs))
            .unwrap()
            .table
            .to_sorted_vec();
        let mut b = StreamingBuilder::new(&schema, 4).unwrap();
        for batch in &batches {
            b.absorb(batch).unwrap();
        }
        assert_eq!(b.finish().unwrap().table.to_sorted_vec(), reference);
    }
}
